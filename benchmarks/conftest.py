"""Shared fixtures for the paper-reproduction benchmarks.

The expensive artifacts — the 12 baseline designs and the per-design
defense results — are built once per session and shared by every
benchmark.  Environment knobs:

* ``REPRO_BENCH_DESIGNS``  — comma-separated subset of design names
  (default: the full 12-design suite).
* ``REPRO_BENCH_POP`` / ``REPRO_BENCH_GENS`` — GA budget for the
  GDSII-Guard runs (default 8 / 2; the paper's fronts converge within a
  few generations).
* ``REPRO_BENCH_PROCS`` — worker processes for GA evaluation (default 0:
  inline).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

import pytest

# Import-path note: the repository-root ``conftest.py`` pins ``src/``
# onto ``sys.path`` for every suite; do not re-pin it here.
from repro.bench.designs import DESIGN_NAMES, BuiltDesign, build_design
from repro.bench.suite import baseline_security
from repro.core.flow import FlowResult, GDSIIGuard
from repro.defenses import ba_defense, bisa_defense, icas_defense
from repro.defenses.base import DefenseResult
from repro.optimize.explorer import ExplorationResult, ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.security.metrics import SecurityMetrics


def bench_designs() -> List[str]:
    raw = os.environ.get("REPRO_BENCH_DESIGNS", "")
    if raw.strip():
        return [d.strip() for d in raw.split(",") if d.strip()]
    return list(DESIGN_NAMES)


def ga_budget() -> NSGA2Config:
    return NSGA2Config(
        population_size=int(os.environ.get("REPRO_BENCH_POP", "8")),
        generations=int(os.environ.get("REPRO_BENCH_GENS", "2")),
        seed=11,
    )


def ga_processes() -> int:
    return int(os.environ.get("REPRO_BENCH_PROCS", "0"))


@dataclass
class DesignOutcome:
    """All per-design experiment artifacts shared across benchmarks."""

    design: BuiltDesign
    baseline: SecurityMetrics
    icas: DefenseResult
    bisa: DefenseResult
    ba: DefenseResult
    guard: GDSIIGuard
    exploration: ExplorationResult
    guard_pick: FlowResult


def run_design(name: str) -> DesignOutcome:
    """Build one design and run every defense on it."""
    design = build_design(name)
    base = baseline_security(design)
    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )
    explorer = ParetoExplorer(
        guard, config=ga_budget(), processes=ga_processes()
    )
    exploration = explorer.explore()
    # Fig. 4 / Table II showcase a security-leaning Pareto pick (the
    # paper's headline is the risk reduction; the front still carries the
    # timing-leaning alternatives).
    pick = exploration.best_security() or exploration.knee_point()
    assert pick is not None, f"no feasible GDSII-Guard point on {name}"
    guard_pick = explorer.rerun(pick.genome)
    return DesignOutcome(
        design=design,
        baseline=base,
        icas=icas_defense(design),
        bisa=bisa_defense(design),
        ba=ba_defense(design),
        guard=guard,
        exploration=exploration,
        guard_pick=guard_pick,
    )


_MATRIX: Optional[Dict[str, DesignOutcome]] = None


@pytest.fixture(scope="session")
def defense_matrix() -> Dict[str, DesignOutcome]:
    """Design name → all defense outcomes (built once per session)."""
    global _MATRIX
    if _MATRIX is None:
        matrix = {}
        for name in bench_designs():
            print(f"\n[bench setup] running all defenses on {name}...")
            matrix[name] = run_design(name)
        _MATRIX = matrix
    return _MATRIX
