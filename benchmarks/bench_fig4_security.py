"""Figure 4 — comparison of security metrics across the suite.

Regenerates both panels of the paper's Fig. 4: normalized total free
sites and normalized total free tracks per design for ICAS, BISA,
Ba et al., and GDSII-Guard, plus the paper's headline average-risk-
reduction number.

Paper shape being reproduced (averages over the 12 designs):

===========  =========  ==========
defense      sites (%)  tracks (%)
===========  =========  ==========
ICAS         10.7       10.6
BISA         1.6        1.4
Ba et al.    6.0        5.8
GDSII-Guard  1.3        1.1
===========  =========  ==========

i.e. GDSII-Guard <= BISA << Ba < ICAS, with GDSII-Guard lowering the
overall risk by ~98.8 %.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ParameterSpace
from repro.reporting.tables import format_table

DEFENSES = ("icas", "bisa", "ba", "guard_pick")
LABELS = {"icas": "ICAS", "bisa": "BISA", "ba": "Ba", "guard_pick": "GDSII-Guard"}


def _norm(outcome, kind: str):
    base = outcome.baseline
    result = getattr(outcome, kind)
    sec = result.security
    sites = sec.er_sites / max(base.er_sites, 1)
    tracks = sec.er_tracks / max(base.er_tracks, 1e-9)
    return sites, tracks


def test_fig4_security_comparison(defense_matrix, benchmark):
    designs = sorted(defense_matrix)
    rows_sites = []
    rows_tracks = []
    means = {}
    for kind in DEFENSES:
        sites = []
        tracks = []
        for name in designs:
            s, t = _norm(defense_matrix[name], kind)
            sites.append(s)
            tracks.append(t)
        rows_sites.append([LABELS[kind], *[f"{x:.3f}" for x in sites],
                           f"{np.mean(sites):.3f}"])
        rows_tracks.append([LABELS[kind], *[f"{x:.3f}" for x in tracks],
                            f"{np.mean(tracks):.3f}"])
        means[kind] = (float(np.mean(sites)), float(np.mean(tracks)))

    print()
    print(format_table(["defense", *designs, "MEAN"], rows_sites,
                       title="Fig. 4a — normalized total free sites"))
    print()
    print(format_table(["defense", *designs, "MEAN"], rows_tracks,
                       title="Fig. 4b — normalized total free tracks"))

    gg_sites, gg_tracks = means["guard_pick"]
    risk_reduction = 100.0 * (1.0 - 0.5 * (gg_sites + gg_tracks))
    print(f"\nGDSII-Guard average risk reduction: {risk_reduction:.1f} % "
          "(paper: 98.8 %)")

    # --- paper-shape assertions ------------------------------------- #
    # GDSII-Guard and BISA are the strongest; Ba partial; ICAS weakest.
    assert means["guard_pick"][0] <= means["bisa"][0] + 0.05
    assert means["bisa"][0] < means["ba"][0] + 0.03
    assert means["ba"][0] < means["icas"][0] + 0.05
    assert means["guard_pick"][0] < 0.10  # ~1-2 % in the paper
    assert risk_reduction > 90.0

    # Timed kernel: one GDSII-Guard flow evaluation on the first design.
    first = defense_matrix[designs[0]]
    space = ParameterSpace(10)
    benchmark.pedantic(
        lambda: first.guard.run(space.default()), rounds=1, iterations=1
    )


def test_fig4_rws_reduces_tracks_below_sites(defense_matrix, benchmark):
    """§IV-C: 'normalized free routing tracks are ~15 % less than the
    site counterpart' — RWS reduces tracks on top of ECO placement."""
    site_means = []
    track_means = []
    for outcome in defense_matrix.values():
        s, t = _norm(outcome, "guard_pick")
        site_means.append(s)
        track_means.append(t)
    assert float(np.mean(track_means)) <= float(np.mean(site_means)) + 0.02

    # Timed kernel: one security measurement (the metric RWS moves).
    from repro.security.metrics import measure_security

    sample = next(iter(defense_matrix.values()))
    d = sample.design
    benchmark.pedantic(
        lambda: measure_security(d.layout, d.sta, d.assets, routing=d.routing),
        rounds=1, iterations=1,
    )
