"""Table II — TNS, power, and #DRC for every design × defense.

Regenerates the paper's three sub-tables.  Absolute values differ from
the paper (our substrate is a scale-model simulator, and we report TNS in
ns on the self-calibrated clocks), but the shapes must hold:

* the original designs with negative TNS are exactly the paper's tight
  six (AES_1/2/3, CAST, openMSP430_2, SEED); baseline #DRC is zero across
  the suite (the paper's lone nonzero entry, 12 on AES_2, is cleared by
  our detailed-route repair model — see repro/drc/checker.py);
* BISA has the worst TNS, power, and #DRC overheads;
* Ba et al. sits between BISA and GDSII-Guard;
* GDSII-Guard shows the smallest overall degradation and meets its own
  hard constraints (#DRC <= 20, power <= 1.2x baseline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.power.power import analyze_power
from repro.reporting.tables import format_table

ROWS = ("original", "icas", "bisa", "ba", "guard_pick")
LABELS = {
    "original": "Original",
    "icas": "ICAS",
    "bisa": "BISA",
    "ba": "Ba et al.",
    "guard_pick": "GDSII-Guard",
}


def _metrics(outcome, kind: str):
    if kind == "original":
        d = outcome.design
        power = analyze_power(d.layout, d.constraints, d.routing).total
        from repro.drc.checker import check_drc

        drc = check_drc(d.layout, d.routing).count
        return d.sta.tns, power, drc
    r = getattr(outcome, kind)
    if kind == "guard_pick":
        return r.tns, r.power, r.drc_count
    return r.tns, r.power, r.drc_count


def test_table2_ppa_comparison(defense_matrix, benchmark):
    designs = sorted(defense_matrix)
    data = {
        kind: {name: _metrics(defense_matrix[name], kind) for name in designs}
        for kind in ROWS
    }

    for title, idx, fmt in (
        ("Table II (a) — TNS (ns)", 0, "{:.3f}"),
        ("Table II (b) — total power (mW)", 1, "{:.3f}"),
        ("Table II (c) — #DRC violations", 2, "{:.0f}"),
    ):
        rows = [
            [LABELS[kind], *[fmt.format(data[kind][n][idx]) for n in designs]]
            for kind in ROWS
        ]
        print()
        print(format_table(["defense", *designs], rows, title=title))

    # --- shape assertions --------------------------------------------- #
    tight = {"AES_1", "AES_2", "AES_3", "CAST", "openMSP430_2", "SEED"}
    for name in designs:
        tns = data["original"][name][0]
        if name in tight:
            assert tns < 0, f"{name} should be timing-tight at baseline"
        else:
            assert tns == pytest.approx(0.0, abs=1e-9), f"{name} should meet timing"

    def mean_over(kind, idx):
        return float(np.mean([data[kind][n][idx] for n in designs]))

    # BISA worst on all three axes (averaged).
    assert mean_over("bisa", 0) < mean_over("guard_pick", 0)  # most negative TNS
    assert mean_over("bisa", 1) > mean_over("ba", 1) > 0
    assert mean_over("bisa", 1) > mean_over("guard_pick", 1)
    assert mean_over("bisa", 2) >= mean_over("ba", 2)
    assert mean_over("bisa", 2) > mean_over("guard_pick", 2)

    # GDSII-Guard honours its own hard constraints everywhere.
    for name in designs:
        outcome = defense_matrix[name]
        assert outcome.guard_pick.drc_count <= outcome.guard.n_drc
        assert (
            outcome.guard_pick.power
            <= outcome.guard.beta_power * outcome.guard.baseline_power + 1e-9
        )

    # Power overhead of GDSII-Guard stays modest (paper: a few percent).
    overheads = []
    for name in designs:
        base = data["original"][name][1]
        overheads.append(data["guard_pick"][name][1] / base - 1.0)
    assert float(np.mean(overheads)) < 0.15

    # Timed kernel: one full PPA extraction (STA + power + DRC).
    from repro.drc.checker import check_drc
    from repro.timing.sta import run_sta

    d0 = defense_matrix[designs[0]].design

    def ppa():
        run_sta(d0.layout, d0.constraints, routing=d0.routing)
        analyze_power(d0.layout, d0.constraints, d0.routing)
        check_drc(d0.layout, d0.routing)

    benchmark.pedantic(ppa, rounds=1, iterations=1)
