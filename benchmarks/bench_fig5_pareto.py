"""Figure 5 — explored Pareto fronts on AES_1, AES_3, MISTY, openMSP430_2.

Regenerates the paper's four scatter plots as text: every evaluated
(security, −TNS) point per generation plus the final Pareto front.  The
shapes asserted:

* the model converges within a few generations (the paper: "converged
  within a few iterations"),
* the final front is feasible and mutually non-dominating,
* the best explored security improves on the baseline by a wide margin.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.designs import build_design
from repro.core.flow import GDSIIGuard
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config, dominates
from repro.reporting.tables import format_table

FIG5_DESIGNS = ("AES_1", "AES_3", "MISTY", "openMSP430_2")


def _budget() -> NSGA2Config:
    return NSGA2Config(
        population_size=int(os.environ.get("REPRO_BENCH_POP", "8")),
        generations=int(os.environ.get("REPRO_BENCH_GENS", "2")),
        seed=5,
    )


@pytest.mark.parametrize("design_name", FIG5_DESIGNS)
def test_fig5_pareto_front(design_name, benchmark):
    design = build_design(design_name)
    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )
    explorer = ParetoExplorer(guard, config=_budget())
    result = benchmark.pedantic(explorer.explore, rounds=1, iterations=1)

    print(f"\nFig. 5 — {design_name}: {result.evaluations} evaluations")
    for g, gen in enumerate(result.history):
        pts = ", ".join(
            f"({o[0]:.3f}, {o[1]:.3f})" for o, _ in gen[:6]
        )
        print(f"  gen {g}: {len(gen)} points  {pts}{'...' if len(gen) > 6 else ''}")

    from repro.reporting.scatter import ascii_scatter

    explored = [o for gen in result.history for o, _ in gen]
    front_pts = [i.objectives for i in result.pareto_front]
    print()
    print(
        ascii_scatter(
            [("explored", ".", explored), ("pareto front", "o", front_pts)],
            x_label="Security (normalized)",
            y_label="-TNS (ns)",
        )
    )

    rows = [
        [
            f"{ind.objectives[0]:.4f}",
            f"{ind.objectives[1]:.4f}",
            ind.genome.op_select,
            ind.genome.lda_n,
            ind.genome.lda_n_iter,
            "".join(f"{s:g}/" for s in ind.genome.rws_scales)[:-1],
        ]
        for ind in sorted(result.pareto_front, key=lambda i: i.objectives[0])
    ]
    print(
        format_table(
            ["security", "-TNS", "op", "LDA::N", "LDA::iter", "RWS scales"],
            rows,
            title=f"Pareto front of {design_name}",
        )
    )

    # --- shape assertions -------------------------------------------- #
    assert result.pareto_front, "front must be non-empty and feasible"
    for a in result.pareto_front:
        assert a.feasible
        for b in result.pareto_front:
            if a is not b:
                assert not dominates(a, b)

    best_sec = min(i.objectives[0] for i in result.pareto_front)
    assert best_sec < 0.5, "exploration must at least halve the risk"

    # Convergence: the best security over all generations is no worse
    # than the first generation's best (the front only improves).
    def gen_best(gen):
        feas = [o[0] for o, v in gen if v <= 0]
        return min(feas) if feas else float("inf")

    first_best = gen_best(result.history[0])
    overall_best = min(gen_best(g) for g in result.history)
    assert overall_best <= first_best + 1e-9


def test_fig5_search_space_size(benchmark):
    """The explored space is the paper's 945k-configuration Table-I space."""
    from repro.core.params import ParameterSpace

    assert ParameterSpace(10).size() == 944_784
    benchmark.pedantic(ParameterSpace(10).size, rounds=3, iterations=1)
