"""Threat-model validation — the attacker vs every defense.

Not a paper figure, but the paper's premise made executable: an A2-class
additive Trojan must insert successfully into every unprotected baseline
and be denied by the GDSII-Guard-hardened layouts.
"""

from __future__ import annotations

import pytest

from repro.reporting.tables import format_table
from repro.security.trojan import attempt_insertion
from repro.timing.sta import run_sta


def test_attack_baseline_vs_hardened(defense_matrix, benchmark):
    rows = []
    baseline_successes = 0
    hardened_successes = 0
    for name in sorted(defense_matrix):
        outcome = defense_matrix[name]
        d = outcome.design
        base_attack = attempt_insertion(
            d.layout, d.sta, d.assets, routing=d.routing
        )
        hardened = outcome.guard_pick
        hardened_sta = run_sta(
            hardened.layout, d.constraints, routing=hardened.routing
        )
        hard_attack = attempt_insertion(
            hardened.layout, hardened_sta, d.assets, routing=hardened.routing
        )
        baseline_successes += base_attack.success
        hardened_successes += hard_attack.success
        rows.append(
            [
                name,
                "BREACHED" if base_attack.success else "held",
                base_attack.region_sites,
                "BREACHED" if hard_attack.success else "held",
                hard_attack.reason[:46],
            ]
        )
    print()
    print(
        format_table(
            ["design", "baseline", "region sites", "hardened", "why"],
            rows,
            title="A2-class Trojan insertion attempts",
        )
    )
    print(
        f"\nbaseline breached {baseline_successes}/{len(rows)}; "
        f"hardened breached {hardened_successes}/{len(rows)}"
    )

    # Essentially every baseline must be attackable (a timing-tight design
    # whose baseline regions are too fragmentary for the gate set may
    # hold), and hardened layouts essentially never.
    assert baseline_successes >= len(rows) - 1
    assert hardened_successes <= max(1, len(rows) // 6)

    # Timed kernel: one insertion attempt.
    sample = defense_matrix[sorted(defense_matrix)[0]].design
    benchmark.pedantic(
        lambda: attempt_insertion(
            sample.layout, sample.sta, sample.assets, routing=sample.routing
        ),
        rounds=1,
        iterations=1,
    )
