"""§IV-D — runtime comparison on the largest design (AES_2).

The paper reports Innovus wall-clock hours: ICAS 9.4, BISA 6.5, Ba 7.0,
GDSII-Guard 4.8.  Absolute hours are a property of the commercial tool, so
this benchmark reports two things:

1. **modeled hours** from the flow-step cost model, driven by the *actual*
   step counts of our implementations (ICAS's sweep width, the GA's real
   evaluation count and cache rate) — these should land near the paper's
   numbers and must reproduce the ordering;
2. **measured seconds** of the Python implementations as a sanity signal.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.designs import build_design
from repro.core.flow import GDSIIGuard
from repro.defenses import ba_defense, bisa_defense, icas_defense
from repro.defenses.icas import DEFAULT_PACKING_SWEEP
from repro.obs import Metrics
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.reporting.profile_report import write_metrics_json
from repro.reporting.runtime_model import (
    ba_runtime,
    bisa_runtime,
    gdsii_guard_runtime,
    icas_runtime,
)
from repro.reporting.tables import format_table

PAPER_HOURS = {"ICAS": 9.4, "BISA": 6.5, "Ba": 7.0, "GDSII-Guard": 4.8}

#: Where the machine-readable perf snapshot lands (CI archives it as a
#: workflow artifact so runtime trajectories can be diffed across PRs).
METRICS_OUT = os.environ.get(
    "REPRO_BENCH_METRICS_OUT", "bench_runtime_metrics.json"
)


def test_perf_suite_smoke(monkeypatch):
    """The ``repro bench`` engine end to end on a shrunken workload.

    Exercises the child-process measurement protocol, the aggregation
    schema consumed by ``tools/bench_compare.py``, and the compare gate
    itself (a synthetic 20% slowdown must fail, and the same file against
    itself must pass).
    """
    import sys
    from pathlib import Path

    from repro.bench import perf
    from repro.bench.perf import SuiteOptions, run_suite

    # Shrink the pinned exploration budget for the smoke run only; the
    # child processes pick the override up from the environment.
    monkeypatch.setenv("REPRO_PERF_POP", "4")
    monkeypatch.setenv("REPRO_PERF_GENS", "1")
    monkeypatch.setattr(perf, "PERF_POP", 4)
    monkeypatch.setattr(perf, "PERF_GENS", 1)

    record = run_suite(
        SuiteOptions(
            quick=True, cases=["explore_present_full"], with_scalar=False
        ),
        rev="smoke",
    )
    assert record["schema"] == perf.SCHEMA
    case = record["cases"]["explore_present_full"]
    assert case["kernels"] == "vector"
    assert case["wall_s"]["median"] > 0
    assert case["evaluations"] > 0
    assert case["evals_per_sec"] > 0

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    try:
        import bench_compare
    finally:
        sys.path.pop(0)
    lines, regressed = bench_compare.compare(record, record, 0.15)
    assert not regressed, lines
    slowed = {
        "cases": {
            "explore_present_full": {
                "wall_s": {
                    "median": case["wall_s"]["median"] * 1.2,
                },
            },
        },
    }
    lines, regressed = bench_compare.compare(record, slowed, 0.15)
    assert regressed == ["explore_present_full"], lines


def test_runtime_comparison_aes2(benchmark):
    design = build_design("AES_2")

    measured = {}
    t0 = time.perf_counter()
    icas_defense(design)
    measured["ICAS"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    bisa_defense(design)
    measured["BISA"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    ba_defense(design)
    measured["Ba"] = time.perf_counter() - t0

    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )
    explorer = ParetoExplorer(
        guard, config=NSGA2Config(population_size=8, generations=2, seed=2)
    )
    t0 = time.perf_counter()
    result = explorer.explore()
    measured["GDSII-Guard"] = time.perf_counter() - t0

    total_requested = sum(len(g) for g in result.history)
    cache_rate = 1.0 - result.evaluations / max(total_requested, 1)
    cache_rate = min(max(cache_rate, 0.2), 0.5)
    # The modeled hours charge the *production-scale* exploration budget
    # (population 16, ~4 generations to convergence — the paper converges
    # "within a few iterations"), with the duplicate-pruning rate measured
    # from our own GA run; the quick bench GA above only supplies that
    # measured rate and the wall-clock sanity column.
    production_evals = 16 * 4
    modeled = {
        "ICAS": icas_runtime(len(DEFAULT_PACKING_SWEEP)).total_hours(),
        "BISA": bisa_runtime().total_hours(),
        "Ba": ba_runtime().total_hours(),
        "GDSII-Guard": gdsii_guard_runtime(
            production_evals, processes=4, cache_rate=cache_rate
        ).total_hours(),
    }

    # Emit everything through the obs metrics registry so CI archives a
    # machine-readable snapshot per run (diffable across PRs).
    registry = Metrics()
    for name in PAPER_HOURS:
        registry.gauge(f"runtime.measured_s.{name}").set(measured[name])
        registry.gauge(f"runtime.modeled_h.{name}").set(modeled[name])
        registry.gauge(f"runtime.paper_h.{name}").set(PAPER_HOURS[name])
    registry.gauge("runtime.ga.cache_rate").set(cache_rate)
    registry.counter("runtime.ga.evaluations").inc(result.evaluations)
    registry.counter("runtime.ga.cache_requests").inc(result.cache_requests)
    registry.counter("runtime.ga.cache_hits").inc(result.cache_hits)
    if METRICS_OUT:
        write_metrics_json(
            registry.snapshot(),
            METRICS_OUT,
            extra={"design": "AES_2", "bench": "bench_runtime"},
        )

    rows = [
        [
            name,
            f"{modeled[name]:.1f}",
            f"{PAPER_HOURS[name]:.1f}",
            f"{measured[name]:.1f}",
        ]
        for name in ("ICAS", "BISA", "Ba", "GDSII-Guard")
    ]
    print()
    print(
        format_table(
            ["defense", "modeled h", "paper h", "measured s (ours)"],
            rows,
            title="Runtime on AES_2 (modeled commercial-flow hours)",
        )
    )

    # --- shape assertions -------------------------------------------- #
    assert modeled["GDSII-Guard"] < min(
        modeled["ICAS"], modeled["BISA"], modeled["Ba"]
    )
    assert modeled["ICAS"] > max(modeled["BISA"], modeled["Ba"])
    for name, hours in modeled.items():
        assert hours == pytest.approx(PAPER_HOURS[name], rel=0.35)

    benchmark.pedantic(
        lambda: gdsii_guard_runtime(64).total_hours(), rounds=5, iterations=1
    )
