"""Ablations of the design choices DESIGN.md calls out.

1. **op_select matters** — CS vs LDA per design class: CS reaches deeper
   security but costs DRC/TNS on tight designs, which is why the GA keeps
   both operators alive.
2. **RWS on/off** — width scaling removes extra routing tracks on top of
   the placement operator.
3. **respace vs literal-greedy CS** — the constructive re-spacing strategy
   against the paper's per-vertex greedy.
4. **NSGA-II vs scalarized GA** — the multi-objective search yields a
   front; the scalar GA one compromise point that is dominated-or-equal.
"""

from __future__ import annotations

import pytest

from repro.bench.designs import build_design
from repro.core.cell_shift import cell_shift
from repro.core.flow import GDSIIGuard
from repro.core.local_density import local_density_adjustment
from repro.core.params import FlowConfig
from repro.optimize.ga import SingleObjectiveGA
from repro.optimize.nsga2 import NSGA2Config
from repro.reporting.tables import format_table
from repro.route.router import global_route
from repro.security.metrics import measure_security, security_score
from repro.timing.sta import run_sta

TIGHT = "AES_1"
LOOSE = "MISTY"


@pytest.fixture(scope="module")
def guards():
    out = {}
    for name in (TIGHT, LOOSE):
        d = build_design(name)
        out[name] = (
            d,
            GDSIIGuard(
                d.layout, d.constraints, d.assets, baseline_routing=d.routing
            ),
        )
    return out


def test_ablation_operator_choice(guards, benchmark):
    rows = []
    results = {}
    for name, (design, guard) in guards.items():
        cs = guard.run(FlowConfig("CS", 2, 1, tuple([1.0] * 10)))
        lda = guard.run(FlowConfig("LDA", 16, 2, tuple([1.0] * 10)))
        results[name] = (cs, lda)
        for label, r in (("CS", cs), ("LDA", lda)):
            rows.append(
                [name, label, f"{r.score:.3f}", f"{r.tns:.3f}",
                 r.drc_count, "yes" if r.feasible else "no"]
            )
    print()
    print(format_table(
        ["design", "operator", "security", "TNS", "#DRC", "feasible"],
        rows, title="Ablation 1 — ECO placement operator",
    ))
    # CS is the stronger security lever...
    for name in guards:
        cs, lda = results[name]
        assert cs.score <= lda.score + 0.02
    # ...but on the tight design its congestion cost shows up in DRC.
    cs_tight, lda_tight = results[TIGHT]
    assert cs_tight.drc_count >= lda_tight.drc_count

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_rws_on_off(guards, benchmark):
    rows = []
    for name, (design, guard) in guards.items():
        off = guard.run(FlowConfig("CS", 2, 1, tuple([1.0] * 10)))
        on = guard.run(FlowConfig("CS", 2, 1, tuple([1.5] * 10)))
        free_off = off.routing.grid.free_tracks_total()
        free_on = on.routing.grid.free_tracks_total()
        rows.append([name, f"{free_off:.0f}", f"{free_on:.0f}",
                     f"{on.tns:.3f}", f"{off.tns:.3f}"])
        assert free_on < free_off  # fewer leftover tracks for the attacker
    print()
    print(format_table(
        ["design", "free tracks (RWS off)", "free tracks (RWS 1.5x)",
         "TNS on", "TNS off"],
        rows, title="Ablation 2 — routing width scaling",
    ))


def test_ablation_cs_strategy(guards, benchmark):
    rows = []
    for name, (design, guard) in guards.items():
        for strategy in ("respace", "greedy"):
            layout = design.layout.clone()
            cell_shift(layout, thresh_er=20, strategy=strategy)
            leftover = sum(
                c.weight
                for c in layout.gap_graph().exploitable_components(20)
            )
            rows.append([name, strategy, leftover])
        respace = rows[-2][2]
        greedy = rows[-1][2]
        assert respace <= greedy
    print()
    print(format_table(
        ["design", "strategy", "exploitable sites left"],
        rows, title="Ablation 3 — CS strategy (respace vs literal greedy)",
    ))


def test_ablation_nsga2_vs_scalar_ga(guards, benchmark):
    from repro.optimize.explorer import ParetoExplorer

    design, guard = guards[LOOSE]
    config = NSGA2Config(population_size=6, generations=2, seed=9)
    front = ParetoExplorer(guard, config=config).explore()
    scalar = SingleObjectiveGA(guard, config=config).run()

    print(f"\nNSGA-II front size: {len(front.pareto_front)}; "
          f"scalar GA single point: {scalar.best_objectives}")
    assert front.pareto_front
    # The scalar point must not dominate the whole front: some front point
    # is at least as good on security.
    best_front_sec = min(i.objectives[0] for i in front.pareto_front)
    assert best_front_sec <= scalar.best_objectives[0] + 1e-9

    from repro.optimize.nsga2 import fast_non_dominated_sort

    benchmark.pedantic(
        lambda: fast_non_dominated_sort(list(front.population)),
        rounds=3, iterations=1,
    )
