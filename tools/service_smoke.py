#!/usr/bin/env python
"""Concurrent smoke load against an in-process service daemon.

Boots a ``ServiceThread`` daemon over the deterministic fake guard and
hammers it with concurrent mixed-priority explore jobs for a fixed wall
budget, honoring 429 backpressure the way a well-behaved client would.
At the end it drains, sanity-checks the outcome (every accepted job
terminal, none failed), and writes the full ``GET /metrics`` dump —
service gauges, job counts, shared-cache stats, and the obs registry —
as JSON for CI to archive.

Usage::

    python tools/service_smoke.py --duration 30 --out smoke_metrics.json

Exit codes: 0 on a clean run, 1 when any job failed or went missing.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import JobQueueFull  # noqa: E402
from repro.resilience.supervisor import SupervisionConfig  # noqa: E402
from repro.service.app import ServiceApp, ServiceThread  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import JobState  # noqa: E402
from repro.service.scheduler import SchedulerConfig  # noqa: E402
from repro.service.testing import FakeGuardFactory  # noqa: E402


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--duration", type=float, default=30.0,
                        help="submission window in seconds (default 30)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon job slots (default 2)")
    parser.add_argument("--queue-limit", type=int, default=8,
                        help="bounded queue size (default 8, so the "
                             "run exercises 429 backpressure)")
    parser.add_argument("--population", type=int, default=8)
    parser.add_argument("--generations", type=int, default=10)
    parser.add_argument("--designs", type=int, default=3,
                        help="distinct fake designs to spread jobs over")
    parser.add_argument("--state-dir", default=None,
                        help="daemon state dir (default: a temp dir)")
    parser.add_argument("--out", default="smoke_metrics.json",
                        help="metrics dump path (default "
                             "smoke_metrics.json)")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        app = ServiceApp(
            args.state_dir or Path(tmp) / "state",
            guard_factory=FakeGuardFactory(),
            config=SchedulerConfig(
                workers=args.workers,
                queue_limit=args.queue_limit,
                supervision=SupervisionConfig(backoff_s=0.0, poll_s=0.01),
            ),
        )
        with ServiceThread(app) as url:
            client = ServiceClient(url, timeout_s=60.0)
            deadline = time.monotonic() + args.duration
            submitted = []
            rejected = 0
            seed = 0
            while time.monotonic() < deadline:
                try:
                    job = client.submit({
                        "kind": "explore",
                        "design": f"smoke-{seed % args.designs}",
                        "seed": seed,
                        "priority": seed % 3,
                        "population": args.population,
                        "generations": args.generations,
                    })
                    submitted.append(job["id"])
                    seed += 1
                except JobQueueFull as exc:
                    rejected += 1
                    time.sleep(min(exc.retry_after_s, 0.2))
            print(f"submission window over: {len(submitted)} accepted, "
                  f"{rejected} backpressured", flush=True)

            records = [
                client.wait(job_id, timeout_s=600.0)
                for job_id in submitted
            ]
            metrics = client.metrics()

        states = {}
        for record in records:
            states[record["state"]] = states.get(record["state"], 0) + 1
        dump = {
            "load": {
                "duration_s": args.duration,
                "workers": args.workers,
                "queue_limit": args.queue_limit,
                "submitted": len(submitted),
                "rejected_429": rejected,
                "final_states": states,
            },
            "metrics": metrics,
        }
        Path(args.out).write_text(
            json.dumps(dump, indent=2, sort_keys=True) + "\n"
        )
        print(f"metrics dump -> {args.out}", flush=True)
        print(json.dumps(dump["load"], indent=2, sort_keys=True))

        failed = states.get(JobState.FAILED, 0)
        done = states.get(JobState.DONE, 0)
        if failed or done != len(submitted):
            print(f"SMOKE FAILURE: {failed} failed, {done}/"
                  f"{len(submitted)} done", file=sys.stderr)
            return 1
        if not submitted:
            print("SMOKE FAILURE: no job was ever accepted",
                  file=sys.stderr)
            return 1
        return 0


if __name__ == "__main__":
    sys.exit(main())
