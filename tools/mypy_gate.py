#!/usr/bin/env python3
"""Ratcheted mypy gate for the repro sources.

Runs ``mypy src/repro`` with the project config (strict on the geometry
/ layout / incremental / checkpoint core, lenient elsewhere) and
compares the error count against the budget in
``tools/mypy_ratchet.txt``.  The gate fails when the count *rises* above
the budget; when it drops, it prints the new count so the budget can be
ratcheted down (``--update`` rewrites the file).

Exit codes: 0 pass, 1 over budget, 2 mypy unavailable (pass ``--require``
to make that a failure — CI does).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RATCHET_FILE = REPO_ROOT / "tools" / "mypy_ratchet.txt"

_ERROR_RE = re.compile(r": error:")


def read_budget() -> int:
    for line in RATCHET_FILE.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            return int(line)
    raise SystemExit(f"no budget found in {RATCHET_FILE}")


def write_budget(count: int) -> None:
    RATCHET_FILE.write_text(
        "# mypy error budget — the ratchet only goes down.\n"
        "# Lower this number whenever tools/mypy_gate.py reports a\n"
        "# smaller current count; never raise it to land a change.\n"
        f"{count}\n"
    )


def run_mypy() -> "tuple[int, str]":
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml",
         "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    out = proc.stdout + proc.stderr
    return len(_ERROR_RE.findall(out)), out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="ratcheted mypy gate")
    parser.add_argument(
        "--require", action="store_true",
        help="fail (not skip) when mypy is not installed",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the ratchet file with the current error count",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print full mypy output"
    )
    args = parser.parse_args(argv)

    try:
        import mypy  # noqa: F401
    except ImportError:
        print("mypy gate: mypy is not installed — SKIPPED", file=sys.stderr)
        return 2 if args.require else 0

    budget = read_budget()
    count, out = run_mypy()
    if args.verbose or count > budget:
        print(out, end="")
    if args.update:
        write_budget(count)
        print(f"mypy gate: ratchet updated to {count}")
        return 0
    if count > budget:
        print(
            f"mypy gate: FAIL — {count} error(s), budget is {budget} "
            f"(see {RATCHET_FILE.relative_to(REPO_ROOT)})"
        )
        return 1
    slack = budget - count
    print(
        f"mypy gate: OK — {count} error(s) within budget {budget}"
        + (f" (ratchet can drop by {slack})" if slack else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
