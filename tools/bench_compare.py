#!/usr/bin/env python3
"""Diff two ``repro bench`` result files and gate on wall-clock regressions.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.15] [--warn-only]

For every case present in both files the median wall-clock is compared;
a case regresses when ``current > baseline * (1 + threshold)``.  The exit
code is 1 when any case regresses (0 with ``--warn-only``, which still
prints the findings — used on fork PRs where the baseline artifact may
come from different hardware).

Cases present in only one file are reported but never fail the gate, so
adding or retiring a bench case does not require lock-step baselines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_THRESHOLD = 0.15


def load_bench(path: Path) -> dict:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")
    if not isinstance(record, dict) or "cases" not in record:
        raise SystemExit(f"bench_compare: {path} is not a bench result file")
    return record


def case_medians(record: dict) -> Dict[str, float]:
    medians: Dict[str, float] = {}
    for name, case in record.get("cases", {}).items():
        try:
            medians[name] = float(case["wall_s"]["median"])
        except (KeyError, TypeError, ValueError):
            continue
    return medians


def compare(
    baseline: dict, current: dict, threshold: float
) -> Tuple[List[str], List[str]]:
    """Return (report lines, regressed case names)."""
    base = case_medians(baseline)
    cur = case_medians(current)
    lines: List[str] = []
    regressed: List[str] = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            lines.append(f"  NEW      {name}: {cur[name]:.2f}s (no baseline)")
            continue
        if name not in cur:
            lines.append(f"  DROPPED  {name}: was {base[name]:.2f}s")
            continue
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        status = "ok"
        if delta > threshold:
            status = "REGRESSED"
            regressed.append(name)
        elif delta < -threshold:
            status = "improved"
        lines.append(
            f"  {status:10s}{name}: {b:.2f}s -> {c:.2f}s ({delta:+.1%})"
        )
    for record, label in ((baseline, "baseline"), (current, "current")):
        speedup = (record.get("derived") or {}).get(
            "vector_speedup_full_eval"
        )
        if speedup is not None:
            lines.append(f"  {label} vector speedup: {float(speedup):.2f}x")
    return lines, regressed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="bench_compare")
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed median growth fraction (default 0.15)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args(argv)

    baseline = load_bench(args.baseline)
    current = load_bench(args.current)
    lines, regressed = compare(baseline, current, args.threshold)
    print(
        f"bench_compare: {args.baseline.name} (rev {baseline.get('rev')}) "
        f"vs {args.current.name} (rev {current.get('rev')}), "
        f"threshold {args.threshold:.0%}"
    )
    for line in lines:
        print(line)
    if regressed:
        print(
            f"bench_compare: {len(regressed)} case(s) regressed "
            f">{args.threshold:.0%}: {', '.join(regressed)}"
        )
        return 0 if args.warn_only else 1
    print("bench_compare: no median regression above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
