#!/usr/bin/env python3
"""Codebase determinism lint for the repro sources (stdlib-only).

This is the *code* half of the project's static-verification story: the
design-database analyzer lives in ``repro.lint``; this tool walks the
repository's own Python sources with :mod:`ast` and enforces the rules
that keep the flow reproducible:

========  ==============================================================
DET101    Nondeterministic RNG: ``import random``, ``np.random.seed``,
          seedless ``np.random.default_rng()``, or the legacy global
          ``np.random.rand/randint/shuffle/choice/permutation/random``.
          All randomness must flow through a seeded ``default_rng``.
DET103    RNG construction inside ``src/repro/kernels/``.  Kernels must
          not own randomness: any reference to ``np.random`` /
          ``numpy.random`` (even a seeded ``default_rng``) is banned
          there — a kernel needing randomness takes a
          ``numpy.random.Generator`` argument from its caller, so the
          scalar oracle and the vectorized path consume the *same*
          stream and stay bitwise comparable.
DET102    Wall-clock reads (``time.time``/``time_ns``,
          ``datetime.now/utcnow/today``, ``date.today``) in core
          library code.  Durations (``perf_counter``/``monotonic``)
          are fine; absolute timestamps make outputs run-dependent.
          ``cli.py`` and ``obs/`` are exempt (reporting surfaces).
DET104    Wall-clock reads in the replayable daemon/campaign trees
          (``service/``, ``redteam/``, ``analysis/``).  Same calls as
          DET102 plus the formatting family (``localtime``/``gmtime``/
          ``ctime``/``strftime``, ``fromtimestamp``): a timestamp that
          leaks into a job journal or campaign artifact breaks the
          bitwise resume/replay contracts, so clocks must be injected
          at the obs/CLI boundary.  Takes precedence over DET102
          inside those trees.
DET201    Blanket exception handler: bare ``except:`` or
          ``except Exception/BaseException`` whose body never
          re-raises.  Swallowing unknown errors hides bugs and eats
          ``KeyboardInterrupt``-adjacent state corruption.
DET202    ``print()`` outside ``cli.py`` and ``reporting/``.  Library
          imports and API calls must be silent; user-facing output
          belongs to the CLI and the reporting layer.
DET301    Unsorted set iteration in a serialization module.  Set order
          varies across processes (string hash randomization), so any
          ``for``/comprehension over a set expression in a module that
          writes artifacts must go through ``sorted()``.
========  ==============================================================

Opt out per line with ``# repro-lint: disable=DET201`` (comma-separate
multiple rule ids).  Run standalone (``python tools/repro_lint.py``),
or via the test suite (``tests/static/``), or in the CI ``static`` job.
"""

from __future__ import annotations

import argparse
import ast
import sys
import tokenize
from pathlib import Path
from typing import Dict, List, NamedTuple, Sequence, Set

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Module prefixes (posix relpaths) the determinism rules apply to.
CORE_PREFIX = "src/repro/"

#: Modules that must not construct RNGs at all (DET103): kernels take a
#: ``numpy.random.Generator`` argument instead of owning randomness.
KERNELS_PREFIX = "src/repro/kernels/"

#: Files allowed to read wall-clock time (reporting surfaces).
WALLCLOCK_EXEMPT = ("src/repro/cli.py", "src/repro/obs/")

#: Trees whose journals / artifacts must replay bitwise: wall-clock
#: reads there are DET104 (stricter call set) instead of DET102.
REPLAYABLE_PREFIXES = (
    "src/repro/service/",
    "src/repro/redteam/",
    "src/repro/analysis/",
)

#: Wall-clock calls banned in core library code (DET102).
WALLCLOCK_CALLS = (
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
)

#: Additional wall-clock family banned in the replayable trees
#: (DET104): formatting and epoch-conversion helpers that smuggle the
#: current time into strings and artifacts.
WALLCLOCK_EXTRA = (
    "time.localtime", "time.gmtime", "time.ctime", "time.strftime",
    "datetime.fromtimestamp", "datetime.datetime.fromtimestamp",
    "datetime.utcfromtimestamp",
    "datetime.datetime.utcfromtimestamp",
)

#: Files allowed to call ``print`` (user-facing output layers).
PRINT_ALLOWED = ("src/repro/cli.py", "src/repro/reporting/")

#: Serialization/checkpoint modules where set-iteration order leaks
#: into on-disk artifacts.
SERIALIZATION_MODULES = (
    "src/repro/layout/def_io.py",
    "src/repro/layout/gdsii.py",
    "src/repro/netlist/verilog.py",
    "src/repro/resilience/checkpoint.py",
    "src/repro/obs/trace.py",
)

#: Attributes known (project-wide) to be sets even though the AST can't
#: prove it — ``Layout.fixed`` is the load-bearing one.
KNOWN_SET_ATTRS = frozenset({"fixed"})

#: Legacy ``np.random.*`` functions that use the global (unseeded) state.
LEGACY_NP_RANDOM = frozenset(
    {"rand", "randn", "randint", "random", "shuffle", "choice",
     "permutation", "uniform", "normal", "seed"}
)

PRAGMA = "repro-lint:"


class Finding(NamedTuple):
    """One lint finding: where, which rule, and why."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _pragmas(code: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids disabled on that line via comments."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(code.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT or PRAGMA not in tok.string:
                continue
            directive = tok.string.split(PRAGMA, 1)[1].strip()
            if directive.startswith("disable="):
                # Rule list ends at the first whitespace; anything after
                # is free-form justification text.
                rule_list = directive[len("disable="):].split(None, 1)[0]
                rules = {r.strip() for r in rule_list.split(",") if r.strip()}
                out.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return out


def _is_set_expr(node: ast.expr) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Attribute) and node.attr in KNOWN_SET_ATTRS:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for an attribute chain, else ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Checker(ast.NodeVisitor):
    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.findings: List[Finding] = []
        self.in_core = relpath.startswith(CORE_PREFIX)
        self.in_kernels = relpath.startswith(KERNELS_PREFIX)
        self.wallclock_ok = any(
            relpath == p or relpath.startswith(p) for p in WALLCLOCK_EXEMPT
        )
        self.in_replayable = relpath.startswith(REPLAYABLE_PREFIXES)
        self.print_ok = any(
            relpath == p or relpath.startswith(p) for p in PRINT_ALLOWED
        )
        self.serialization = relpath in SERIALIZATION_MODULES

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.relpath, getattr(node, "lineno", 0), message)
        )

    # -- DET101 ------------------------------------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        if self.in_core:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    self._emit(
                        "DET101", node,
                        "stdlib 'random' is banned; use a seeded "
                        "np.random.default_rng(seed)",
                    )
        if self.in_kernels:
            for alias in node.names:
                if alias.name.startswith("numpy.random"):
                    self._emit(
                        "DET103", node,
                        "kernels must not own randomness; take a "
                        "numpy.random.Generator argument from the caller",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_core and node.module == "random":
            self._emit(
                "DET101", node,
                "stdlib 'random' is banned; use a seeded "
                "np.random.default_rng(seed)",
            )
        if self.in_kernels and node.module:
            from_numpy_random = node.module.startswith("numpy.random")
            from_numpy = node.module == "numpy" and any(
                alias.name == "random" for alias in node.names
            )
            if from_numpy_random or from_numpy:
                self._emit(
                    "DET103", node,
                    "kernels must not own randomness; take a "
                    "numpy.random.Generator argument from the caller",
                )
        self.generic_visit(node)

    # -- DET103 -------------------------------------------------------- #

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Any np.random / numpy.random reference in a kernel module —
        # flagged at the innermost `<np>.random` attribute node so each
        # use yields exactly one finding regardless of chain depth.
        if self.in_kernels and _dotted(node) in ("np.random", "numpy.random"):
            self._emit(
                "DET103", node,
                "kernels must not own randomness; take a "
                "numpy.random.Generator argument from the caller",
            )
        self.generic_visit(node)

    # -- calls: DET101 / DET102 / DET202 ------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if self.in_core:
            # Kernels fall under the stricter DET103 (any np.random
            # reference, flagged in visit_Attribute), so the DET101
            # call checks would only duplicate those findings.
            if not self.in_kernels:
                self._check_rng_call(node, dotted)
            if not self.wallclock_ok:
                if self.in_replayable and dotted in (
                    WALLCLOCK_CALLS + WALLCLOCK_EXTRA
                ):
                    self._emit(
                        "DET104", node,
                        f"wall-clock read '{dotted}' in replayable "
                        "daemon/campaign code; a timestamp leaking into "
                        "a journal or campaign artifact breaks bitwise "
                        "resume/replay — inject clocks at the obs/CLI "
                        "boundary",
                    )
                elif dotted in WALLCLOCK_CALLS:
                    self._emit(
                        "DET102", node,
                        f"wall-clock read '{dotted}' makes output "
                        "run-dependent; measure durations with "
                        "perf_counter or stamp in the CLI/obs layer",
                    )
            if (
                not self.print_ok
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                self._emit(
                    "DET202", node,
                    "'print' in library code; route output through the "
                    "CLI or reporting layer",
                )
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, dotted: str) -> None:
        tail = dotted.rsplit(".", 1)[-1] if "." in dotted else ""
        if dotted.endswith(".random.default_rng") or dotted == "default_rng":
            if not node.args and not node.keywords:
                self._emit(
                    "DET101", node,
                    "default_rng() without a seed is entropy-seeded; "
                    "pass an explicit seed",
                )
        elif ".random." in dotted + "." and tail in LEGACY_NP_RANDOM:
            # np.random.<fn> / numpy.random.<fn> global-state API.
            head = dotted.rsplit(".", 2)[0]
            if head in ("np", "numpy"):
                self._emit(
                    "DET101", node,
                    f"legacy global-state '{dotted}' is banned; use a "
                    "seeded Generator",
                )

    # -- DET201 -------------------------------------------------------- #

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.in_core and self._is_blanket(node.type):
            if not self._reraises(node.body):
                what = (
                    "bare 'except:'" if node.type is None
                    else f"'except {ast.unparse(node.type)}'"
                )
                self._emit(
                    "DET201", node,
                    f"{what} without re-raise swallows unknown errors; "
                    "catch specific types or re-raise",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_blanket(exc: ast.expr) -> bool:
        if exc is None:
            return True
        names = exc.elts if isinstance(exc, ast.Tuple) else [exc]
        for n in names:
            if isinstance(n, ast.Name) and n.id in ("Exception", "BaseException"):
                return True
        return False

    @staticmethod
    def _reraises(body: Sequence[ast.stmt]) -> bool:
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(stmt, ast.Raise) and stmt.exc is None:
                return True
        return False

    # -- DET301 -------------------------------------------------------- #

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iter(self, gens: Sequence[ast.comprehension]) -> None:
        for gen in gens:
            self._check_set_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iter(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_iter(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iter(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iter(node.generators)
        self.generic_visit(node)

    def _check_set_iter(self, iter_node: ast.expr) -> None:
        if self.serialization and _is_set_expr(iter_node):
            self._emit(
                "DET301", iter_node,
                "iterating a set in a serialization module; wrap in "
                "sorted() so artifact order is stable",
            )


def check_source(code: str, relpath: str) -> List[Finding]:
    """Lint one source string as if it lived at ``relpath``.

    ``relpath`` is posix-style, relative to the repo root (e.g.
    ``src/repro/layout/def_io.py``) — it determines which rules apply.
    """
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        return [Finding("DET000", relpath, exc.lineno or 0,
                        f"syntax error: {exc.msg}")]
    checker = _Checker(relpath)
    checker.visit(tree)
    disabled = _pragmas(code)
    return [
        f for f in checker.findings
        if f.rule not in disabled.get(f.line, ())
    ]


def check_tree(root: Path = REPO_ROOT) -> List[Finding]:
    """Lint every Python file under ``src/repro``; findings sorted."""
    findings: List[Finding] = []
    src = root / "src" / "repro"
    for path in sorted(src.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        findings.extend(check_source(path.read_text(), relpath))
    return sorted(findings)


def _relpath_for(path: Path) -> str:
    """Repo-relative posix path used for rule scoping.

    Out-of-tree files are anchored at their last ``src`` component so
    the path-scoped rules still apply when linting a staging copy.
    """
    try:
        return path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        parts = path.parts
        if "src" in parts:
            last = len(parts) - 1 - parts[::-1].index("src")
            return Path(*parts[last:]).as_posix()
        return path.name


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="repro determinism lint (DET rules)"
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or tree roots to check (default: all of src/repro)",
    )
    args = parser.parse_args(argv)
    if args.paths:
        findings = []
        for p in args.paths:
            path = Path(p).resolve()
            if path.is_dir():
                findings.extend(check_tree(path))
            else:
                findings.extend(
                    check_source(path.read_text(), _relpath_for(path))
                )
        findings.sort()
    else:
        findings = check_tree()
    for f in findings:
        print(f.format())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
