#!/usr/bin/env python3
"""Explore the security/timing Pareto front of a design (paper Fig. 5).

Runs the NSGA-II flow-parameter exploration on AES_1 and prints the
evaluated points generation by generation plus the final Pareto front —
the data behind the paper's Fig. 5 scatter plots.

Run:  python examples/pareto_exploration.py [design] [population] [generations]
"""

import sys

from repro import GDSIIGuard, NSGA2Config, ParetoExplorer, build_design


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "AES_1"
    pop = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    gens = int(sys.argv[3]) if len(sys.argv) > 3 else 3

    print(f"Building {design_name}...")
    design = build_design(design_name)
    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )
    explorer = ParetoExplorer(
        guard,
        config=NSGA2Config(population_size=pop, generations=gens, seed=7),
    )
    print(
        f"Exploring a {explorer.space.size():,}-point parameter space "
        f"(pop={pop}, generations<={gens})..."
    )
    result = explorer.explore()

    print(f"\n{result.evaluations} flow evaluations run (duplicates memoized).")
    for g, gen in enumerate(result.history):
        sec = [obj[0] for obj, _ in gen]
        print(
            f"  generation {g}: {len(gen)} points, "
            f"best security {min(sec):.3f}, worst {max(sec):.3f}"
        )

    print("\n=== Pareto front (security vs -TNS, both minimized) ===")
    for ind in sorted(result.pareto_front, key=lambda i: i.objectives[0]):
        cfg = ind.genome
        rws = "x".join(f"{s:g}" for s in cfg.rws_scales[:4])
        print(
            f"  security={ind.objectives[0]:.4f}  -TNS={ind.objectives[1]:.4f}"
            f"  op={cfg.op_select:<4} LDA(N={cfg.lda_n},it={cfg.lda_n_iter})"
            f"  RWS[1..4]={rws}..."
        )

    knee = result.knee_point()
    if knee is not None:
        print(
            f"\nknee point: security={knee.objectives[0]:.4f}, "
            f"-TNS={knee.objectives[1]:.4f}, config={knee.genome.op_select}"
        )


if __name__ == "__main__":
    main()
