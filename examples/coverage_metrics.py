#!/usr/bin/env python3
"""Survey extended Trojan-coverage metrics across defenses.

The paper's conclusion calls for richer coverage metrics; this example
evaluates ICAS's three (trigger space, net blockage, route distance)
alongside the ERsites/ERtracks pair, before and after GDSII-Guard.

Run:  python examples/coverage_metrics.py [design]
"""

import sys

from repro import FlowConfig, GDSIIGuard, build_design, run_sta
from repro.reporting.tables import format_table
from repro.security.exploitable import find_exploitable_regions
from repro.security.icas_metrics import (
    net_blockage,
    route_distance,
    trigger_space,
)


def survey(label, layout, sta, assets, routing):
    report = find_exploitable_regions(layout, sta, assets, routing=routing)
    hist = trigger_space(layout)
    blockage = net_blockage(layout, assets, routing)
    dist = route_distance(layout, assets, report)
    finite = [v for v in dist.values() if v is not None]
    return [
        label,
        report.er_sites,
        f"{report.er_tracks:.0f}",
        hist.buckets.get(">=50", 0),
        hist.buckets.get("20-49", 0),
        f"{sum(blockage.values()) / max(len(blockage), 1):.2f}",
        f"{min(finite):.1f}" if finite else "inf",
    ]


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "Camellia"
    design = build_design(design_name)
    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )

    rows = [
        survey("baseline", design.layout, design.sta, design.assets,
               design.routing)
    ]
    result = guard.run(FlowConfig("CS", 2, 1, tuple([1.2] * 10)))
    hardened_sta = run_sta(
        result.layout, design.constraints, routing=result.routing
    )
    rows.append(
        survey("GDSII-Guard", result.layout, hardened_sta, design.assets,
               result.routing)
    )

    print(
        format_table(
            [
                "layout",
                "ER sites",
                "ER tracks",
                "runs>=50",
                "runs 20-49",
                "net blockage",
                "min route dist (um)",
            ],
            rows,
            title=f"Coverage metrics on {design_name}",
        )
    )
    print(
        "\nHigher net blockage and route distance, fewer large free runs "
        "= harder Trojan insertion."
    )


if __name__ == "__main__":
    main()
