#!/usr/bin/env python3
"""Use the library as a toolkit on your own design.

Shows the full API surface without the prebuilt benchmark suite:
generate (or import) a netlist, annotate the assets, place, route, time,
harden, and export the hardened layout as DEF-like text plus structural
Verilog.

Run:  python examples/harden_custom_design.py
"""

from pathlib import Path

from repro import (
    FlowConfig,
    GDSIIGuard,
    GlobalPlacementSpec,
    TimingConstraints,
    annotate_key_assets,
    global_place,
    global_route,
    nangate45_library,
    nangate45_like,
    run_sta,
)
from repro.bench.generators import GeneratorParams, generate_design
from repro.layout.def_io import layout_to_def
from repro.netlist.verilog import write_structural_verilog


def main() -> None:
    library = nangate45_library()
    technology = nangate45_like(num_layers=10)

    # 1. Your design: here a generated crypto-style core; swap in
    #    read_structural_verilog(...) for a netlist of your own.
    params = GeneratorParams(
        n_state=48, n_key=24, cone_inputs=4, cone_depth=6,
        n_inputs=12, n_outputs=12, seed=42,
    )
    netlist = generate_design("my_core", library, params)
    print(f"netlist: {netlist.num_instances} cells, {netlist.num_nets} nets")

    # 2. Annotate what must be protected (key bank + key control here).
    assets = annotate_key_assets(netlist)
    print(f"assets : {len(assets)} security-critical cells")

    # 3. Physical implementation: place (bank clustered), route, time.
    layout = global_place(
        netlist,
        technology,
        GlobalPlacementSpec(
            target_utilization=0.62, seed=42, clustered=tuple(assets)
        ),
    )
    routing = global_route(layout)
    constraints = TimingConstraints(clock_period=2.2)
    sta = run_sta(layout, constraints, routing=routing)
    print(
        f"layout : {layout.num_rows} rows x {layout.sites_per_row} sites, "
        f"TNS {sta.tns:.3f} ns"
    )

    # 4. Harden.
    guard = GDSIIGuard(layout, constraints, assets, baseline_routing=routing)
    result = guard.run(
        FlowConfig("CS", 2, 1, tuple([1.2, 1.2] + [1.0] * 8))
    )
    print(
        f"hardened: security {result.score:.4f}, TNS {result.tns:.3f} ns, "
        f"power {result.power:.3f} mW, #DRC {result.drc_count}"
    )

    # 5. Export.
    out = Path("my_core_hardened")
    out.mkdir(exist_ok=True)
    (out / "my_core.v").write_text(write_structural_verilog(netlist))
    (out / "my_core_hardened.def").write_text(layout_to_def(result.layout))
    print(f"wrote {out}/my_core.v and {out}/my_core_hardened.def")


if __name__ == "__main__":
    main()
