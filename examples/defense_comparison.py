#!/usr/bin/env python3
"""Compare GDSII-Guard against ICAS, BISA, and Ba et al. on one design.

Prints the Fig.-4 / Table-II row for a single design: normalized free
sites/tracks plus TNS, power, and #DRC for every defense.

Run:  python examples/defense_comparison.py [design]
"""

import sys

from repro import (
    FlowConfig,
    GDSIIGuard,
    ba_defense,
    bisa_defense,
    build_design,
    icas_defense,
)
from repro.bench.suite import baseline_security
from repro.reporting.tables import format_table


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "TDEA"
    design = build_design(design_name)
    base = baseline_security(design)

    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )
    rows = []
    rows.append(
        [
            "baseline",
            1.0,
            1.0,
            design.sta.tns,
            guard.baseline_power,
            0,
        ]
    )

    print(f"Running ICAS / BISA / Ba / GDSII-Guard on {design_name}...")
    for fn in (icas_defense, bisa_defense, ba_defense):
        r = fn(design)
        rows.append(
            [
                r.name,
                r.security.er_sites / max(base.er_sites, 1),
                r.security.er_tracks / max(base.er_tracks, 1e-9),
                r.tns,
                r.power,
                r.drc_count,
            ]
        )

    gg = guard.run(FlowConfig("CS", 2, 1, tuple([1.2] * 10)))
    rows.append(
        [
            "GDSII-Guard",
            gg.security.er_sites / max(base.er_sites, 1),
            gg.security.er_tracks / max(base.er_tracks, 1e-9),
            gg.tns,
            gg.power,
            gg.drc_count,
        ]
    )

    print()
    print(
        format_table(
            ["defense", "norm sites", "norm tracks", "TNS(ns)", "power(mW)", "#DRC"],
            rows,
            title=f"Defense comparison on {design_name}",
        )
    )


if __name__ == "__main__":
    main()
