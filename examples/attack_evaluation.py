#!/usr/bin/env python3
"""Red-team a layout: run the additive-Trojan attacker before and after.

Plays the paper's threat model end to end: an A2-class attacker recovers
the exploitable regions of the finalized layout and tries to implant a
trigger+payload near a security-critical asset.  The baseline falls; the
GDSII-Guard-hardened layout does not.

Run:  python examples/attack_evaluation.py [design]
"""

import sys

from repro import (
    FlowConfig,
    GDSIIGuard,
    TrojanSpec,
    attempt_insertion,
    build_design,
    run_sta,
)


def describe(report) -> str:
    if report.success:
        return (
            f"SUCCESS — {report.gates_placed} Trojan gates placed in a "
            f"{report.region_sites}-site region, tap length "
            f"{report.tap_length_um:.1f} µm"
        )
    return f"FAILED — {report.reason}"


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "SPARX"
    design = build_design(design_name)
    spec = TrojanSpec()

    from repro.reporting.layout_view import layout_to_ascii

    print(f"Baseline {design_name} floorplan (asset bank highlighted):")
    print(layout_to_ascii(design.layout, assets=design.assets,
                          width=64, height=14))

    print(f"\n=== attacking the unprotected {design_name} layout ===")
    baseline_attack = attempt_insertion(
        design.layout,
        design.sta,
        design.assets,
        routing=design.routing,
        spec=spec,
    )
    print(" ", describe(baseline_attack))

    print("\nHardening with GDSII-Guard (CS + 1.2x RWS)...")
    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )
    result = guard.run(
        FlowConfig("CS", 2, 1, tuple([1.2] * 10))
    )
    print(
        f"  security score {result.score:.4f}, TNS {result.tns:.3f} ns, "
        f"#DRC {result.drc_count}"
    )

    hardened_sta = run_sta(
        result.layout, design.constraints, routing=result.routing
    )
    print(f"\n=== attacking the hardened {design_name} layout ===")
    hardened_attack = attempt_insertion(
        result.layout,
        hardened_sta,
        design.assets,
        routing=result.routing,
        spec=spec,
    )
    print(" ", describe(hardened_attack))

    if baseline_attack.success and not hardened_attack.success:
        print("\nGDSII-Guard denied the Trojan insertion.")
    elif hardened_attack.success:
        print("\nWARNING: the hardened layout is still attackable!")


if __name__ == "__main__":
    main()
