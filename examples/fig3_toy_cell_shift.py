#!/usr/bin/env python3
"""The paper's Fig. 3 in miniature: Cell Shift on a toy layout.

Builds a small layout with scattered cells (Thresh_ER = 20, like the
figure), prints the gap-graph components before and after the Cell Shift
operator, and renders both floorplans — exploitable regions disappear
while cells only slide within their rows.

Run:  python examples/fig3_toy_cell_shift.py
"""

from repro import Netlist, nangate45_library, nangate45_like
from repro.core.cell_shift import cell_shift
from repro.layout.layout import Layout
from repro.reporting.layout_view import layout_to_ascii

THRESH_ER = 20


def components(layout):
    comps = layout.gap_graph().exploitable_components(THRESH_ER)
    return sorted((c.weight for c in comps), reverse=True)


def main() -> None:
    library = nangate45_library()
    tech = nangate45_like()
    netlist = Netlist("fig3_toy", library)

    # A 6-row toy core at ~60 % utilization with scattered gaps, the
    # regime Fig. 3 illustrates.
    layout = Layout(netlist, tech, num_rows=6, sites_per_row=48)
    import numpy as np

    rng = np.random.default_rng(3)
    masters = ["DFF_X1", "NAND2_X1", "AND2_X1", "XOR2_X1", "INV_X1",
               "NAND2_X1", "BUF_X1"]
    k = 0
    for row in range(6):
        cursor = int(rng.integers(0, 4))
        while True:
            master = masters[int(rng.integers(len(masters)))]
            width = library.cell(master).width_sites
            if cursor + width > 48:
                break
            name = f"u{k}"
            netlist.add_instance(name, master)
            layout.place(name, row, cursor)
            k += 1
            cursor += width + int(rng.integers(2, 8))

    print(f"Before Cell Shift (Thresh_ER = {THRESH_ER}):")
    print(layout_to_ascii(layout, width=48, height=6))
    before = components(layout)
    print(f"exploitable components (w >= {THRESH_ER}): {before}\n")

    report = cell_shift(layout, thresh_er=THRESH_ER)
    print(f"After Cell Shift ({report.moves} moves, "
          f"{report.shifted_sites} sites of total shift):")
    print(layout_to_ascii(layout, width=48, height=6))
    after = components(layout)
    print(f"exploitable components (w >= {THRESH_ER}): {after or 'none'}")
    print(
        f"\nregions: {len(before)} -> {len(after)}; "
        "cells only moved horizontally within their rows."
    )


if __name__ == "__main__":
    main()
