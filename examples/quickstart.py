#!/usr/bin/env python3
"""Quickstart: harden one benchmark design with GDSII-Guard.

Builds the MISTY baseline (placed + routed + timed), runs the hardening
flow at a hand-picked configuration, and prints the before/after security,
timing, power, and DRC numbers.

Run:  python examples/quickstart.py
"""

from repro import FlowConfig, GDSIIGuard, build_design


def main() -> None:
    print("Building the MISTY baseline design (place, route, STA)...")
    design = build_design("MISTY")
    print(
        f"  {design.netlist.num_instances} cells, "
        f"utilization {design.layout.utilization():.2f}, "
        f"clock {design.constraints.clock_period:.3f} ns, "
        f"baseline TNS {design.sta.tns:.3f} ns"
    )

    guard = GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
    )
    base = guard.baseline_security
    print(
        f"  baseline exploitable: {base.er_sites} free sites, "
        f"{base.er_tracks:.0f} free tracks in {base.num_regions} regions"
    )

    # Cell Shift placement hardening + 1.2x routing width on every layer.
    config = FlowConfig(
        op_select="CS", lda_n=2, lda_n_iter=1, rws_scales=tuple([1.2] * 10)
    )
    print(f"\nRunning GDSII-Guard with {config}...")
    result = guard.run(config)

    print("\n=== hardened layout L_opt ===")
    print(f"  security score   : {result.score:.4f}  (baseline = 1.0, lower is better)")
    print(f"  exploitable sites: {result.security.er_sites} (was {base.er_sites})")
    print(f"  exploitable tracks: {result.security.er_tracks:.0f} (was {base.er_tracks:.0f})")
    print(f"  TNS              : {result.tns:.3f} ns (was {design.sta.tns:.3f})")
    print(f"  power            : {result.power:.3f} mW (baseline {guard.baseline_power:.3f}, cap {guard.beta_power:.1f}x)")
    print(f"  #DRC             : {result.drc_count} (cap {guard.n_drc})")
    print(f"  hard constraints : {'MET' if result.feasible else 'VIOLATED'}")
    print(f"  flow runtime     : {result.runtime_s:.2f} s")
    reduction = 100.0 * (1.0 - result.score)
    print(f"\nTrojan-insertion risk reduced by {reduction:.1f} %.")


if __name__ == "__main__":
    main()
