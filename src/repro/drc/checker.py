"""DRC: placement legality and routing-congestion violations.

Real signoff DRC checks mask geometry; at the level this substrate models,
the violations that matter (and the ones the paper's defenses actually
cause — BISA's >90 % local density breaks pin access and routing spacing)
are:

* **placement** — overlapping cells, cells outside the core, or cells
  violating a hard blockage.  Healthy layouts have zero.
* **congestion** — gcell×layer bins whose routed usage exceeds capacity.
  Each overflowed bin is counted once: in a real flow every overflowed
  gcell materializes as a handful of shorts/spacing violations, so the
  count is the right order of magnitude.
* **pin access** — placement bins packed above ``PIN_ACCESS_DENSITY``
  where the router also has little slack; modeled as one violation per
  such bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.layout.layout import Layout
from repro.place.density import DensityMap

#: Local density above which pin access starts failing.
PIN_ACCESS_DENSITY = 0.995

#: Bin grid used for the pin-access check.
_PIN_BINS = 16

#: A gcell×layer bin only becomes a DRC violation when its routed usage
#: exceeds BOTH capacity×OVERFLOW_RATIO and capacity+OVERFLOW_MARGIN —
#: mild global-routing overflow is absorbed by the detailed router and
#: never reaches signoff.  The router additionally runs a hotspot-repair
#: loop against exactly this threshold (see
#: :func:`repro.route.router._repair_drc_hotspots`); with it, the
#: unprotected benchmark suite closes DRC-clean (the paper's baseline row
#: is 12 on AES_2 and 0 elsewhere — our repair model clears those twelve
#: marginal violations, a documented deviation).
OVERFLOW_RATIO = 1.62
OVERFLOW_MARGIN = 8.0


@dataclass(frozen=True)
class DrcViolation:
    """One design-rule violation."""

    kind: str  # "placement" | "congestion" | "pin_access"
    detail: str


@dataclass
class DrcReport:
    """All violations found on a layout."""

    violations: List[DrcViolation] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Total number of violations — the paper's #DRC."""
        return len(self.violations)

    def count_of(self, kind: str) -> int:
        """Number of violations of one kind."""
        return sum(1 for v in self.violations if v.kind == kind)


def check_drc(layout: Layout, routing: Optional[object] = None) -> DrcReport:
    """Run all checks on a placed (optionally routed) layout."""
    report = DrcReport()
    _check_placement(layout, report)
    if routing is not None:
        _check_congestion(routing, report)
        _check_pin_access(layout, routing, report)
    return report


def _check_placement(layout: Layout, report: DrcReport) -> None:
    """Overlaps, out-of-core cells, and hard-blockage violations."""
    for occ in layout.occupancy:
        prev_end = 0
        prev_name = ""
        for p in occ:
            if p.start < prev_end:
                report.violations.append(
                    DrcViolation(
                        "placement",
                        f"{p.name} overlaps {prev_name} in row {occ.row.index}",
                    )
                )
            if p.end > occ.row.num_sites or p.start < 0:
                report.violations.append(
                    DrcViolation(
                        "placement", f"{p.name} outside row {occ.row.index}"
                    )
                )
            prev_end = max(prev_end, p.end)
            prev_name = p.name
    for blockage in layout.blockages.values():
        if not blockage.is_hard:
            continue
        for name in layout.instances_in_rect(blockage.rect):
            report.violations.append(
                DrcViolation(
                    "placement", f"{name} inside hard blockage {blockage.name}"
                )
            )


def _check_congestion(routing: object, report: DrcReport) -> None:
    """One violation per severely overflowed gcell × layer bin."""
    grid = routing.grid
    threshold = np.maximum(
        grid.capacity * OVERFLOW_RATIO, grid.capacity + OVERFLOW_MARGIN
    )
    excess = grid.usage - threshold
    for layer, ix, iy in np.argwhere(excess > 0):
        report.violations.append(
            DrcViolation(
                "congestion",
                f"overflow {excess[layer, ix, iy]:.1f} tracks beyond margin "
                f"on metal{layer + 1} gcell ({ix}, {iy})",
            )
        )


def _check_pin_access(layout: Layout, routing: object, report: DrcReport) -> None:
    """Pin-access failures in over-packed bins with congested low metal."""
    density = DensityMap(layout, _PIN_BINS, _PIN_BINS)
    arr = density.as_array()
    grid = routing.grid
    # Remaining low-metal slack per gcell (layers 1-2 serve pin escape).
    low = slice(0, min(2, grid.capacity.shape[0]))
    low_free = (grid.capacity[low] - grid.usage[low]).sum(axis=0)
    for ix, iy in density.bins_above(PIN_ACCESS_DENSITY):
        bin_rect = density.bin_rect(ix, iy)
        free = 0.0
        cells = 0
        for gx, gy in grid.gcells_in_rect(bin_rect):
            free += float(low_free[gx, gy])
            cells += 1
        if cells and free / cells < -1.0:  # low metal strictly exhausted
            report.violations.append(
                DrcViolation(
                    "pin_access",
                    f"bin ({ix}, {iy}) density {arr[ix, iy]:.2f} with "
                    f"{free / cells:.1f} free low-metal tracks per gcell",
                )
            )
