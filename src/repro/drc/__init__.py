"""Design-rule checking (placement legality + routing congestion)."""

from repro.drc.checker import DrcReport, DrcViolation, check_drc

__all__ = ["DrcReport", "DrcViolation", "check_drc"]
