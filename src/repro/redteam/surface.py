"""Attack surfaces: the campaign's per-target evaluators.

A *surface* wraps one target layout behind the same evaluator protocol
the supervised worker pool already speaks for flow evaluations —
``run(task) -> result`` with ``result.objectives`` and
``result.constraint_violation(...)`` plus the constraint attributes —
so :class:`~repro.resilience.supervisor.TaskSupervisor` gives attack
attempts per-attempt crash isolation, timeouts, and retry for free.

Here ``objectives`` is not a float tuple but the attempt's **outcome
dict**: a plain-JSON record of success/failure, the region geometry the
attacker used, and (for successful implants) the timing and DRC impact
measured on an independent implanted copy of the layout.  Every value
round-trips JSON exactly, which is what lets campaign summaries be
bitwise-compared across worker counts and kill/resume schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.redteam.grid import AttackSpecPoint
from repro.resilience import faults
from repro.security.assets import SecurityAssets
from repro.security.trojan import attempt_insertion, materialize_implant
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAResult, run_sta

__all__ = ["AttackAttempt", "AttemptOutcome", "LayoutAttackSurface"]


@dataclass(frozen=True)
class AttackAttempt:
    """One supervised task: a seeded attempt of one spec on one target."""

    target: str
    point: AttackSpecPoint
    attempt: int
    seed: int


class AttemptOutcome:
    """Evaluator-protocol shim: the outcome dict rides as ``objectives``.

    Attack attempts have no Deb-style constraints, so the violation hook
    is identically zero — the supervisor's bookkeeping still works and
    the campaign ignores the value.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.objectives = payload

    def constraint_violation(
        self, n_drc: int, beta_power: float, base_power: float
    ) -> float:
        return 0.0


class LayoutAttackSurface:
    """One real target layout, attackable under supervision.

    Built once in the campaign parent; forked workers inherit the whole
    design database through process memory, so tasks stay tiny (an
    :class:`AttackAttempt` is a few scalars).

    Args:
        target_id: Stable name of this target in campaign summaries
            (``"baseline"``, ``"hardened"``, ``"front-3"``...).
        layout / sta / assets / routing: The design database under
            attack (never mutated — the attacker is a pure query and
            impact is measured on an independent implanted copy).
        constraints: Timing constraints; required for slack-impact
            measurement.
        measure_impact: Measure TNS/DRC deltas of successful implants
            (skipped when ``constraints`` is ``None``).
    """

    # evaluator-protocol constraint attributes (unused by attacks)
    n_drc = 0
    beta_power = 0.0
    baseline_power = 1.0

    def __init__(
        self,
        target_id: str,
        layout: Any,
        sta: STAResult,
        assets: SecurityAssets,
        routing: Optional[object] = None,
        constraints: Optional[TimingConstraints] = None,
        measure_impact: bool = True,
    ) -> None:
        self.target_id = target_id
        self.layout = layout
        self.sta = sta
        self.assets = assets
        self.routing = routing
        self.constraints = constraints
        self.measure_impact = measure_impact and constraints is not None
        self._base_tns: Optional[float] = None
        self._base_drc: Optional[int] = None
        if self.measure_impact:
            # Eager: computed pre-fork so every worker shares the values.
            self._base_tns = run_sta(layout, constraints).tns
            self._base_drc = self._drc_count(layout)

    @staticmethod
    def _drc_count(layout: Any) -> int:
        from repro.drc.checker import check_drc

        return check_drc(layout).count

    def run(self, attempt: AttackAttempt) -> AttemptOutcome:
        """Evaluate one seeded insertion attempt (supervisor protocol)."""
        faults.maybe_flow_fault()
        point = attempt.point
        spec = point.trojan_spec()
        rng = np.random.default_rng(attempt.seed)
        report = attempt_insertion(
            self.layout,
            self.sta,
            self.assets,
            routing=self.routing,
            spec=spec,
            thresh_er=point.thresh_er,
            rng=rng,
        )
        outcome: Dict[str, Any] = {
            "target": attempt.target,
            "spec_id": point.spec_id,
            "attempt": attempt.attempt,
            "seed": attempt.seed,
            "success": report.success,
            "reason": report.reason,
            "region_sites": report.region_sites,
            "gates_placed": report.gates_placed,
            "tap_length_um": report.tap_length_um,
            "region_distance_um": report.region_distance_um,
            "tns_delta": None,
            "drc_delta": None,
        }
        if report.success and self.measure_impact:
            implanted = materialize_implant(self.layout, report, spec)
            tns = run_sta(implanted, self.constraints).tns
            assert self._base_tns is not None and self._base_drc is not None
            outcome["tns_delta"] = tns - self._base_tns
            outcome["drc_delta"] = self._drc_count(implanted) - self._base_drc
        return AttemptOutcome(outcome)
