"""``repro.redteam`` — the Monte Carlo attack-campaign engine.

GDSII-Guard's claim is *negative*: after hardening, the A2-class
attacker should fail.  This package turns that claim into a measured
quantity by sweeping a grid of :class:`~repro.security.trojan.TrojanSpec`
variants (footprint, Thresh_ER, tap-distance limit, placement strategy)
times N seeded insertion attempts per spec against one or more target
layouts — the unhardened baseline, a single hardened layout, or every
point on an exploration Pareto front — and reporting per-spec attack
success rates, attempts-to-first-insertion, and the slack/DRC impact of
successful implants.

Campaigns inherit the repository's resilience contract wholesale: the
attempts of a batch run on the supervised worker pool (per-attempt crash
isolation and timeouts), every batch boundary writes an atomic
checkpoint through :mod:`repro.resilience.checkpoint`, and a SIGKILLed
campaign resumed from its run directory finishes **bitwise identical**
to the uninterrupted run — the same determinism model the explorer
carries, enforced by the differential suite in ``tests/redteam``.
"""

from repro.redteam.campaign import (
    AttackCampaign,
    CampaignResult,
    derive_attempt_seed,
)
from repro.redteam.checkpoint import CampaignCheckpoint
from repro.redteam.grid import (
    FOOTPRINTS,
    GRID_PRESETS,
    AttackGrid,
    AttackSpecPoint,
)
from repro.redteam.surface import (
    AttackAttempt,
    AttemptOutcome,
    LayoutAttackSurface,
)

__all__ = [
    "AttackAttempt",
    "AttackCampaign",
    "AttackGrid",
    "AttackSpecPoint",
    "AttemptOutcome",
    "CampaignCheckpoint",
    "CampaignResult",
    "FOOTPRINTS",
    "GRID_PRESETS",
    "LayoutAttackSurface",
    "derive_attempt_seed",
]
