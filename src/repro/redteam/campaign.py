"""The Monte Carlo attack-campaign loop.

A campaign is a flat sequence of **batches**: one batch per
``(target, grid point)`` pair, holding ``attempts`` seeded insertion
attempts evaluated under the supervised worker pool.  After every batch
the full campaign state is checkpointed atomically; the cooperative
cancellation probe and the chaos layer's interrupt injection both fire
at the batch boundary, exactly mirroring the explorer's generation
boundary — so the service scheduler's cancel/drain/retry machinery works
on attack jobs unchanged.

Determinism model (enforced by ``tests/redteam``):

* every attempt's RNG seed derives from
  ``sha256(campaign_seed:target:spec:attempt)`` — no global stream, so
  outcomes are independent of evaluation order, worker count, and
  scheduling;
* outcome dicts are plain JSON whose floats round-trip exactly;
* the canonical :meth:`CampaignResult.summary` is a pure function of
  the outcome dicts — identical seeds produce bitwise-identical
  summaries under any ``processes`` value and any kill/resume schedule.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.errors import CheckpointError, ExplorationCancelled, SecurityError
from repro.redteam.checkpoint import CampaignCheckpoint
from repro.redteam.grid import AttackGrid
from repro.redteam.surface import AttackAttempt
from repro.resilience import faults
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.supervisor import (
    EvalTask,
    ResilienceState,
    SupervisionConfig,
    TaskSupervisor,
)

__all__ = [
    "AttackCampaign",
    "CampaignResult",
    "derive_attempt_seed",
    "CAMPAIGN_SUMMARY_SCHEMA_VERSION",
]

#: Version stamp of the canonical campaign-summary JSON schema.
CAMPAIGN_SUMMARY_SCHEMA_VERSION = 1


def derive_attempt_seed(
    campaign_seed: int, target_id: str, spec_id: str, attempt: int
) -> int:
    """Per-attempt RNG seed: a stable hash of the attempt coordinates.

    ``sha256`` (not :func:`hash`, which couples to ``PYTHONHASHSEED``)
    keyed on every coordinate, so attempt streams are independent of
    batch order, worker count, and everything else that may vary between
    otherwise-identical campaigns.
    """
    digest = hashlib.sha256(
        f"{campaign_seed}:{target_id}:{spec_id}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def _aggregate(
    target_id: str, spec_id: str, attempts: int, rows: List[dict]
) -> dict:
    """One canonical summary row from a batch's outcome dicts."""
    successes = [r for r in rows if r["success"]]
    first = min((r["attempt"] for r in successes), default=None)
    mean_sites = (
        sum(r["region_sites"] for r in successes) / len(successes)
        if successes
        else 0.0
    )
    tns_deltas = [
        r["tns_delta"] for r in successes if r.get("tns_delta") is not None
    ]
    drc_deltas = [
        r["drc_delta"] for r in successes if r.get("drc_delta") is not None
    ]
    return {
        "target": target_id,
        "spec_id": spec_id,
        "attempts": attempts,
        "successes": len(successes),
        "success_rate": len(successes) / attempts,
        "first_success_attempt": first,
        "mean_region_sites": mean_sites,
        "worst_tns_delta": min(tns_deltas) if tns_deltas else None,
        "max_drc_delta": max(drc_deltas) if drc_deltas else None,
        "outcomes": rows,
    }


@dataclass
class CampaignResult:
    """Everything one campaign produced.

    ``outcomes`` maps ``target id -> spec id -> [outcome dict per
    attempt]`` in attempt order; :meth:`summary` flattens it into the
    canonical JSON document (targets in campaign order, specs in grid
    order) that the differential tests compare bitwise.
    """

    seed: int
    attempts: int
    grid: AttackGrid
    targets: Tuple[str, ...]
    outcomes: Dict[str, Dict[str, List[dict]]]
    resumed_from: Optional[int] = None
    resilience: Optional[ResilienceState] = None

    def rows(self) -> List[dict]:
        """Per-(target, spec) aggregate rows in canonical order."""
        out = []
        for target_id in self.targets:
            for point in self.grid.points:
                rows = self.outcomes[target_id][point.spec_id]
                out.append(
                    _aggregate(target_id, point.spec_id, self.attempts, rows)
                )
        return out

    def success_rate(self, target_id: str, spec_id: str) -> float:
        """Attack success rate of one (target, spec) cell."""
        rows = self.outcomes[target_id][spec_id]
        return sum(1 for r in rows if r["success"]) / self.attempts

    def summary(self) -> dict:
        """The canonical campaign summary (bitwise-comparable)."""
        return {
            "schema_version": CAMPAIGN_SUMMARY_SCHEMA_VERSION,
            "kind": "redteam-campaign",
            "seed": self.seed,
            "attempts_per_spec": self.attempts,
            "grid": self.grid.to_payload(),
            "targets": list(self.targets),
            "results": self.rows(),
        }

    def to_json(self) -> str:
        """The summary as stable, diff-friendly JSON text."""
        return json.dumps(self.summary(), indent=2, sort_keys=True) + "\n"


class AttackCampaign:
    """Sweep a grid of Trojan specs against one or more targets."""

    def __init__(
        self,
        targets: Sequence[Tuple[str, Any]],
        grid: AttackGrid,
        attempts: int = 4,
        seed: int = 0,
        processes: int = 0,
        checkpoint_dir: Union[str, Path, None] = None,
        resume: bool = False,
        supervision: Optional[SupervisionConfig] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        on_batch: Optional[Callable[[int, int, dict], None]] = None,
    ) -> None:
        """
        Args:
            targets: ``(target_id, surface)`` pairs; each surface speaks
                the evaluator protocol (see
                :class:`~repro.redteam.surface.LayoutAttackSurface`).
            grid: The spec sweep.
            attempts: Seeded insertion attempts per (target, spec).
            seed: Campaign seed every attempt seed derives from.
            processes: Supervised worker processes per batch
                (0 = inline serial evaluation).
            checkpoint_dir: Run directory for per-batch checkpoints
                (``None`` disables checkpointing).
            resume: Continue from ``checkpoint_dir``'s checkpoint if one
                exists; raises :class:`CheckpointError` on an identity
                mismatch (different seed/grid/targets/attempts).
            supervision: Worker-supervision knobs.
            should_stop: Cooperative-cancellation probe, polled at every
                batch boundary after that batch's checkpoint is durable;
                returning ``True`` raises
                :class:`~repro.errors.ExplorationCancelled`.
            on_batch: Progress hook ``(batch, total_batches, row)``
                called after each batch with its aggregate row.
        """
        if attempts < 1:
            raise SecurityError("a campaign needs at least one attempt")
        ids = [t for t, _ in targets]
        if not ids:
            raise SecurityError("a campaign needs at least one target")
        if len(set(ids)) != len(ids):
            raise SecurityError(f"duplicate target ids: {ids}")
        self.targets = list(targets)
        self.grid = grid
        self.attempts = attempts
        self.seed = seed
        self.processes = processes
        self.supervision = supervision or SupervisionConfig()
        self.resilience = ResilienceState()
        self.checkpoint_manager = (
            CheckpointManager(checkpoint_dir)
            if checkpoint_dir is not None
            else None
        )
        self.resume = resume
        self.should_stop = should_stop
        self.on_batch = on_batch
        self.resumed_from: Optional[int] = None

    # ------------------------------------------------------------------ #
    # checkpoint / resume
    # ------------------------------------------------------------------ #

    def _identity(self) -> dict:
        return {
            "seed": self.seed,
            "attempts": self.attempts,
            "grid": self.grid.to_payload(),
            "targets": [t for t, _ in self.targets],
        }

    def _write_checkpoint(
        self, batch: int, outcomes: Dict[str, Dict[str, List[dict]]]
    ) -> None:
        if self.checkpoint_manager is None:
            return
        ckpt = CampaignCheckpoint(
            batch=batch,
            identity=self._identity(),
            outcomes=outcomes,
            resilience=self.resilience.as_dict(),
            obs_snapshot=(
                obs.get_metrics().snapshot() if obs.is_enabled() else None
            ),
        )
        with obs.timed("redteam.checkpoint", batch=batch):
            ckpt.save(self.checkpoint_manager)
        obs.count("redteam.checkpoints")

    def _load_resume_state(self) -> Optional[CampaignCheckpoint]:
        if not (self.resume and self.checkpoint_manager is not None):
            return None
        ckpt = CampaignCheckpoint.load(self.checkpoint_manager)
        if ckpt is None:
            return None
        mine = self._identity()
        if ckpt.identity != mine:
            diffs = sorted(
                k for k in set(mine) | set(ckpt.identity)
                if mine.get(k) != ckpt.identity.get(k)
            )
            raise CheckpointError(
                f"campaign checkpoint {self.checkpoint_manager.path} was "
                f"written with a different campaign (differing: "
                f"{', '.join(diffs)}); rerun with the original settings "
                f"or start a fresh run directory"
            )
        return ckpt

    def _restore(self, ckpt: CampaignCheckpoint) -> None:
        res = ckpt.resilience
        self.resilience.retries = int(res.get("retries", 0))
        self.resilience.worker_deaths = int(res.get("worker_deaths", 0))
        self.resilience.timeouts = int(res.get("timeouts", 0))
        self.resilience.task_failures = int(res.get("task_failures", 0))
        self.resilience.degraded = bool(res.get("degraded", False))
        self.resumed_from = ckpt.batch
        if (
            ckpt.obs_snapshot
            and obs.is_enabled()
            and not obs.get_metrics().names()
        ):
            obs.get_metrics().merge_snapshot(ckpt.obs_snapshot)

    # ------------------------------------------------------------------ #

    def _run_batch(self, batch: int, target_id: str, surface: Any,
                   spec_id: str) -> List[dict]:
        point = next(
            p for p in self.grid.points if p.spec_id == spec_id
        )
        tasks = [
            EvalTask(
                index=k,
                config=AttackAttempt(
                    target=target_id,
                    point=point,
                    attempt=k,
                    seed=derive_attempt_seed(
                        self.seed, target_id, spec_id, k
                    ),
                ),
                generation=batch,
                individual=k,
            )
            for k in range(self.attempts)
        ]
        workers = (
            min(self.processes, self.attempts) if self.processes else 0
        )
        supervisor = TaskSupervisor(
            surface,
            workers=workers,
            config=self.supervision,
            state=self.resilience,
        )
        with obs.timed(
            "redteam.batch", target=target_id, spec=spec_id,
            size=self.attempts, workers=workers,
        ):
            results = supervisor.run(tasks)
        return [outcome for _, outcome, _ in results]

    def run(self) -> CampaignResult:
        """Run (or resume) the campaign; returns the campaign result."""
        outcomes: Dict[str, Dict[str, List[dict]]] = {}
        start_batch = 0
        ckpt = self._load_resume_state()
        if ckpt is not None:
            outcomes = ckpt.outcomes
            start_batch = ckpt.batch + 1
            self._restore(ckpt)

        total = len(self.targets) * len(self.grid.points)
        with obs.timed("redteam.campaign"):
            for batch in range(start_batch, total):
                ti, pi = divmod(batch, len(self.grid.points))
                target_id, surface = self.targets[ti]
                point = self.grid.points[pi]
                rows = self._run_batch(
                    batch, target_id, surface, point.spec_id
                )
                outcomes.setdefault(target_id, {})[point.spec_id] = rows
                if obs.is_enabled():
                    obs.count("redteam.batches")
                    obs.count("redteam.attempts", len(rows))
                    obs.count(
                        "redteam.successes",
                        sum(1 for r in rows if r["success"]),
                    )
                self._write_checkpoint(batch, outcomes)
                if self.on_batch is not None:
                    self.on_batch(
                        batch,
                        total,
                        _aggregate(
                            target_id, point.spec_id, self.attempts, rows
                        ),
                    )
                faults.maybe_interrupt(batch)
                if self.should_stop is not None and self.should_stop():
                    raise ExplorationCancelled(batch)

        return CampaignResult(
            seed=self.seed,
            attempts=self.attempts,
            grid=self.grid,
            targets=tuple(t for t, _ in self.targets),
            outcomes=outcomes,
            resumed_from=self.resumed_from,
            resilience=self.resilience,
        )
