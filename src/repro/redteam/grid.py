"""Attack-grid definitions: the campaign's sweep axes.

A grid is an ordered tuple of :class:`AttackSpecPoint`s, each a fully
parameterized :class:`~repro.security.trojan.TrojanSpec` variant plus
the Thresh_ER it scans with.  The axes mirror the levers the paper's
threat model exposes:

* **footprint** — the gate list the attacker must seat (A2's
  charge-pump trigger, a counter-based variant with a flip-flop, and a
  minimal three-gate probe);
* **thresh_er** — the free-site threshold the region scan uses,
  bracketing the paper's Thresh_ER = 20;
* **tap_limit_um** — how far the insertion region may sit from its
  victim (``None`` = unbounded; a distance exactly at the limit passes);
* **strategy** — ``first_fit`` (deterministic packing) or ``random_fit``
  (seeded Monte Carlo packing, the axis that makes N attempts per spec
  meaningful).

Everything codecs to plain JSON so grids ride inside campaign
checkpoints and service job results unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import SecurityError
from repro.security.exploitable import DEFAULT_THRESH_ER
from repro.security.trojan import STRATEGIES, TrojanSpec

__all__ = ["FOOTPRINTS", "GRID_PRESETS", "AttackSpecPoint", "AttackGrid"]

#: Named gate lists an :class:`AttackSpecPoint` can reference.
FOOTPRINTS: Dict[str, Tuple[str, ...]] = {
    # A2-class analog-trigger equivalent: trigger logic + payload gates.
    "a2": (
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "INV_X1",
        "INV_X1",
    ),
    # Counter-based digital variant: the flip-flop fattens the footprint.
    "a2-dff": (
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "INV_X1",
        "INV_X1",
        "DFF_X1",
    ),
    # Minimal three-gate probe: the hardest Trojan to deny.
    "lean": ("NAND2_X1", "NAND2_X1", "INV_X1"),
}


@dataclass(frozen=True)
class AttackSpecPoint:
    """One grid point: a TrojanSpec variant plus its scan threshold."""

    spec_id: str
    footprint: str
    thresh_er: int = DEFAULT_THRESH_ER
    tap_limit_um: Optional[float] = None
    strategy: str = "first_fit"
    wiring_demand: float = 4.0

    def __post_init__(self) -> None:
        if self.footprint not in FOOTPRINTS:
            raise SecurityError(
                f"unknown footprint {self.footprint!r}; pick one of "
                f"{', '.join(sorted(FOOTPRINTS))}"
            )
        if self.strategy not in STRATEGIES:
            raise SecurityError(
                f"unknown strategy {self.strategy!r}; pick one of "
                f"{STRATEGIES}"
            )
        if self.thresh_er < 1:
            raise SecurityError("thresh_er must be >= 1")

    def trojan_spec(self) -> TrojanSpec:
        """The concrete spec :func:`attempt_insertion` consumes."""
        return TrojanSpec(
            gate_masters=FOOTPRINTS[self.footprint],
            wiring_demand=self.wiring_demand,
            tap_limit_um=self.tap_limit_um,
            strategy=self.strategy,
        )

    def to_payload(self) -> dict:
        return {
            "spec_id": self.spec_id,
            "footprint": self.footprint,
            "thresh_er": self.thresh_er,
            "tap_limit_um": self.tap_limit_um,
            "strategy": self.strategy,
            "wiring_demand": self.wiring_demand,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AttackSpecPoint":
        try:
            limit = payload.get("tap_limit_um")
            return cls(
                spec_id=str(payload["spec_id"]),
                footprint=str(payload["footprint"]),
                thresh_er=int(payload["thresh_er"]),
                tap_limit_um=None if limit is None else float(limit),
                strategy=str(payload["strategy"]),
                wiring_demand=float(payload["wiring_demand"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SecurityError(
                f"malformed attack spec point: {payload!r} ({exc})"
            ) from exc


@dataclass(frozen=True)
class AttackGrid:
    """An ordered, named sweep of spec points."""

    name: str
    points: Tuple[AttackSpecPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise SecurityError("an attack grid needs at least one point")
        ids = [p.spec_id for p in self.points]
        if len(set(ids)) != len(ids):
            raise SecurityError(f"duplicate spec ids in grid {self.name!r}")

    def __len__(self) -> int:
        return len(self.points)

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "points": [p.to_payload() for p in self.points],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AttackGrid":
        try:
            return cls(
                name=str(payload["name"]),
                points=tuple(
                    AttackSpecPoint.from_payload(p)
                    for p in payload["points"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise SecurityError(
                f"malformed attack grid payload ({exc})"
            ) from exc

    @classmethod
    def preset(cls, name: str) -> "AttackGrid":
        """Look up a named preset grid."""
        try:
            return GRID_PRESETS[name]
        except KeyError:
            raise SecurityError(
                f"unknown attack grid {name!r}; pick one of "
                f"{', '.join(sorted(GRID_PRESETS))}"
            ) from None


def _p(
    spec_id: str,
    footprint: str,
    thresh_er: int = DEFAULT_THRESH_ER,
    tap_limit_um: Optional[float] = None,
    strategy: str = "first_fit",
) -> AttackSpecPoint:
    return AttackSpecPoint(
        spec_id=spec_id,
        footprint=footprint,
        thresh_er=thresh_er,
        tap_limit_um=tap_limit_um,
        strategy=strategy,
    )


#: Named preset grids the CLI/service accept by name.
GRID_PRESETS: Dict[str, AttackGrid] = {
    # The 2-spec CI gate: the paper's operating point plus the lean probe.
    "ci": AttackGrid(
        "ci",
        (
            _p("a2-er20-first", "a2"),
            _p("lean-er12-first", "lean", thresh_er=12),
        ),
    ),
    # A fast four-spec sweep: adds the Monte Carlo axis and the fat
    # counter-based footprint.
    "quick": AttackGrid(
        "quick",
        (
            _p("a2-er20-first", "a2"),
            _p("a2-er20-random", "a2", strategy="random_fit"),
            _p("lean-er12-first", "lean", thresh_er=12),
            _p("a2dff-er20-first", "a2-dff"),
        ),
    ),
    # The full default grid: Thresh_ER bracket, tap limits, strategies.
    "default": AttackGrid(
        "default",
        (
            _p("a2-er20-first", "a2"),
            _p("a2-er20-random", "a2", strategy="random_fit"),
            _p("a2-er12-first", "a2", thresh_er=12),
            _p("a2-er28-first", "a2", thresh_er=28),
            _p("a2-er20-tap25-first", "a2", tap_limit_um=25.0),
            _p("a2dff-er20-first", "a2-dff"),
            _p("lean-er12-first", "lean", thresh_er=12),
            _p("lean-er12-random", "lean", thresh_er=12,
               strategy="random_fit"),
        ),
    ),
}
