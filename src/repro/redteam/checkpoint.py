"""Campaign checkpoints: batch-granular, identity-guarded, atomic.

A campaign checkpoint captures the completed batches' outcome lists plus
the campaign *identity* (seed, attempts-per-spec, grid payload, target
ids).  Identity deliberately excludes the worker-process count and the
supervision knobs: outcomes are deterministic functions of their seeds,
so a campaign checkpointed under ``--processes 4`` may resume under
``--processes 1`` (or degraded-serial after worker deaths) and still
finish bitwise identical — the same argument the explorer's checkpoint
makes for GA state.

Durability rides on :class:`~repro.resilience.checkpoint.CheckpointManager`
(temp file + fsync + atomic replace, ``schema_version`` gate), so a
SIGKILL mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import CheckpointError
from repro.resilience.checkpoint import CheckpointManager

__all__ = ["CampaignCheckpoint"]


@dataclass
class CampaignCheckpoint:
    """Full campaign state at one batch boundary.

    Attributes:
        batch: Index of the last completed batch.
        identity: The campaign identity dict (resume-mismatch guard).
        outcomes: ``target id -> spec id -> [outcome dict, ...]`` for
            every completed batch.
        resilience: Supervision counters accumulated so far (restored on
            resume so the final report covers the whole campaign; never
            part of the canonical summary).
        obs_snapshot: Optional obs metrics snapshot for post-mortem.
    """

    batch: int
    identity: Dict[str, Any]
    outcomes: Dict[str, Dict[str, List[dict]]]
    resilience: Dict[str, Any] = field(default_factory=dict)
    obs_snapshot: Optional[dict] = None

    KIND = "redteam"

    def to_payload(self) -> dict:
        return {
            "kind": self.KIND,
            "batch": self.batch,
            "identity": dict(self.identity),
            "outcomes": {
                target: {spec: list(rows) for spec, rows in specs.items()}
                for target, specs in self.outcomes.items()
            },
            "resilience": dict(self.resilience),
            "obs": self.obs_snapshot,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignCheckpoint":
        if payload.get("kind") != cls.KIND:
            raise CheckpointError(
                f"checkpoint kind {payload.get('kind')!r} is not a "
                f"red-team campaign checkpoint; point --checkpoint-dir "
                f"at the matching run directory"
            )
        try:
            return cls(
                batch=int(payload["batch"]),
                identity=dict(payload["identity"]),
                outcomes={
                    str(target): {
                        str(spec): [dict(r) for r in rows]
                        for spec, rows in specs.items()
                    }
                    for target, specs in payload["outcomes"].items()
                },
                resilience=dict(payload.get("resilience") or {}),
                obs_snapshot=payload.get("obs"),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(
                f"malformed campaign checkpoint ({exc}); delete it or "
                f"restart without --resume"
            ) from exc

    # ------------------------------------------------------------------ #

    def save(self, manager: CheckpointManager) -> Path:
        return manager.save_payload(self.to_payload())

    @classmethod
    def load(
        cls, manager: CheckpointManager
    ) -> Optional["CampaignCheckpoint"]:
        payload = manager.load_payload()
        if payload is None:
            return None
        return cls.from_payload(payload)
