"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the end-to-end workflow a user needs without writing
Python:

* ``designs`` — list the benchmark suite with baseline attributes.
* ``baseline`` — build one design and print its baseline metric row.
* ``harden`` — run the GDSII-Guard flow at a fixed configuration and
  optionally export the hardened layout (DEF / Verilog / GDSII).
* ``explore`` — run the NSGA-II Pareto exploration and print the front.
* ``attack`` — run the A2-class Trojan attacker against the baseline or a
  hardened layout; with ``--grid``/``--attempts``/``--front`` it runs a
  full Monte Carlo red-team campaign (checkpointed, resumable, with an
  optional hardened-vs-baseline CI gate).
* ``signoff`` — multi-corner (MMMC-style) timing signoff.
* ``report`` — consolidated markdown security report for a layout.
* ``defend`` — run one of the baseline defenses (icas / bisa / ba).
* ``profile`` — run the flow under the observability layer and print the
  per-stage wall-clock / peak-RSS breakdown (plus a JSONL event trace).
* ``lint`` — run the rule-based layout DRC/invariant analyzer over a
  design (text or JSON diagnostics, ``--fail-on`` exit-code gate).
* ``analyze`` — run the interprocedural effect & concurrency analyzer
  over the repro source tree itself (purity contracts, event-loop and
  fork safety; ratcheted baseline, ``--fail-on`` exit-code gate).
* ``serve`` — run the long-lived job-orchestration daemon (JSON-over-
  HTTP API, bounded priority queue, graceful SIGTERM drain).
* ``submit`` — submit a harden/explore job to a running daemon
  (optionally ``--wait`` for the result and print the front).
* ``jobs`` — list a daemon's jobs, or show/cancel/fetch one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.designs import DESIGN_NAMES, build_design
from repro.bench.suite import baseline_metrics, baseline_security
from repro.core.flow import GDSIIGuard
from repro.core.params import (
    LDA_ITER_CHOICES,
    LDA_N_CHOICES,
    RWS_SCALE_CHOICES,
    FlowConfig,
)
from repro.errors import ReproError
from repro.reporting.tables import format_table


def _build_guard(design, incremental: bool = True, check_invariants: bool = False):
    return GDSIIGuard(
        design.layout,
        design.constraints,
        design.assets,
        baseline_routing=design.routing,
        incremental=incremental,
        check_invariants=check_invariants,
    )


def _parse_scales(raw: str, num_layers: int) -> tuple:
    parts = [float(x) for x in raw.split(",")] if raw else [1.0]
    if len(parts) == 1:
        parts = parts * num_layers
    if len(parts) != num_layers:
        raise SystemExit(
            f"--rws needs 1 or {num_layers} comma-separated values"
        )
    for p in parts:
        if p not in RWS_SCALE_CHOICES:
            raise SystemExit(f"RWS scale {p} not in {RWS_SCALE_CHOICES}")
    return tuple(parts)


def cmd_designs(args: argparse.Namespace) -> int:
    rows = []
    for name in DESIGN_NAMES:
        d = build_design(name)
        m = baseline_metrics(d)
        rows.append(
            [
                name,
                int(m["cells"]),
                f"{m['utilization']:.2f}",
                f"{d.constraints.clock_period:.3f}",
                f"{m['tns']:.3f}",
                f"{m['power']:.3f}",
                int(m["drc"]),
                int(m["er_sites"]),
            ]
        )
    print(
        format_table(
            ["design", "cells", "util", "clk (ns)", "TNS", "power (mW)",
             "#DRC", "ER sites"],
            rows,
            title="Benchmark suite (baselines)",
        )
    )
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    d = build_design(args.design)
    m = baseline_metrics(d)
    for key, value in m.items():
        print(f"{key:12s} {value:.4f}" if isinstance(value, float) else value)
    return 0


def _print_harden_metrics(config: FlowConfig, m: dict) -> None:
    print(f"config          : {config}")
    print(f"security score  : {m['score']:.4f} (baseline 1.0)")
    print(f"ER sites/tracks : {m['er_sites']} / {m['er_tracks']:.0f} "
          f"(was {m['base_er_sites']} / {m['base_er_tracks']:.0f})")
    print(f"TNS             : {m['tns']:.3f} ns (was {m['base_tns']:.3f})")
    print(f"power           : {m['power']:.3f} mW (cap {m['power_cap']:.3f})")
    print(f"#DRC            : {m['drc_count']} (cap {m['n_drc']})")
    print(f"feasible        : {m['feasible']}")


def cmd_harden(args: argparse.Namespace) -> int:
    d = build_design(args.design)
    config = FlowConfig(
        op_select=args.op,
        lda_n=args.lda_n,
        lda_n_iter=args.lda_iter,
        rws_scales=_parse_scales(args.rws, d.technology.num_layers),
    )
    manager = None
    if args.checkpoint_dir:
        from repro.resilience.checkpoint import (
            CheckpointManager,
            decode_flow_config,
            encode_flow_config,
        )

        manager = CheckpointManager(args.checkpoint_dir)
    if manager is not None and args.resume and not args.out:
        payload = manager.load_payload()
        if (
            payload is not None
            and payload.get("kind") == "harden"
            and payload.get("design") == args.design
            and decode_flow_config(payload["config"]) == config
        ):
            print(f"resumed completed run from {manager.path} "
                  f"(flow not re-run)")
            _print_harden_metrics(config, payload["metrics"])
            return 0
    guard = _build_guard(
        d,
        incremental=not args.no_incremental,
        check_invariants=args.check_invariants,
    )
    result = guard.run(config)
    if args.check_invariants:
        print(
            f"invariants      : OK ({guard.invariant_checks} checks, "
            f"{guard.invariant_violations} violations)"
        )
    base = guard.baseline_security
    metrics = {
        "score": result.score,
        "er_sites": result.security.er_sites,
        "er_tracks": result.security.er_tracks,
        "base_er_sites": base.er_sites,
        "base_er_tracks": base.er_tracks,
        "tns": result.tns,
        "base_tns": d.sta.tns,
        "power": result.power,
        "power_cap": guard.beta_power * guard.baseline_power,
        "drc_count": result.drc_count,
        "n_drc": guard.n_drc,
        "feasible": result.feasible,
    }
    _print_harden_metrics(config, metrics)
    if manager is not None:
        manager.save_payload({
            "kind": "harden",
            "design": args.design,
            "config": encode_flow_config(config),
            "metrics": metrics,
        })
        print(f"checkpoint      : {manager.path}")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        from repro.layout.def_io import save_def
        from repro.layout.gdsii import save_gdsii
        from repro.netlist.verilog import write_structural_verilog

        save_def(result.layout, out / f"{args.design}.def")
        save_gdsii(result.layout, out / f"{args.design}.gds")
        (out / f"{args.design}.v").write_text(
            write_structural_verilog(d.netlist)
        )
        print(f"wrote {out}/{args.design}.def, .gds, .v")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.optimize.explorer import ParetoExplorer
    from repro.resilience.supervisor import SupervisionConfig
    from repro.optimize.nsga2 import NSGA2Config

    d = build_design(args.design)
    guard = _build_guard(d, incremental=not args.no_incremental)
    explorer = ParetoExplorer(
        guard,
        config=NSGA2Config(
            population_size=args.population,
            generations=args.generations,
            seed=args.seed,
        ),
        processes=args.processes,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        supervision=SupervisionConfig(
            timeout_s=args.eval_timeout,
            max_retries=args.max_retries,
        ),
    )
    result = explorer.explore()
    if result.resumed_from is not None:
        print(f"resumed from generation {result.resumed_from} "
              f"({explorer.checkpoint_manager.path})")
    print(f"{result.evaluations} evaluations; front:")
    rows = [
        [
            f"{i.objectives[0]:.4f}",
            f"{i.objectives[1]:.4f}",
            i.genome.op_select,
            i.genome.lda_n,
            i.genome.lda_n_iter,
            "/".join(f"{s:g}" for s in i.genome.rws_scales),
        ]
        for i in sorted(result.pareto_front, key=lambda x: x.objectives[0])
    ]
    print(
        format_table(
            ["security", "-TNS", "op", "N", "iter", "RWS"],
            rows,
            title=f"Pareto front — {args.design}",
        )
    )
    res = result.resilience
    if res is not None and any(v for v in res.as_dict().values()):
        print("resilience      : "
              + ", ".join(f"{k}={v}" for k, v in res.as_dict().items()))
    if explorer.checkpoint_manager is not None:
        print(f"checkpoint      : {explorer.checkpoint_manager.path}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    from repro.security.trojan import attempt_insertion
    from repro.timing.sta import run_sta

    campaign_mode = (
        args.grid is not None
        or args.attempts is not None
        or args.front is not None
    )
    d = build_design(args.design)
    if campaign_mode:
        return _cmd_attack_campaign(args, d)
    if args.hardened:
        guard = _build_guard(d)
        result = guard.run(
            FlowConfig("CS", 2, 1,
                       _parse_scales(args.rws, d.technology.num_layers))
        )
        layout, routing = result.layout, result.routing
        sta = run_sta(layout, d.constraints, routing=routing)
    else:
        layout, routing, sta = d.layout, d.routing, d.sta
    report = attempt_insertion(layout, sta, d.assets, routing=routing)
    print("SUCCESS" if report.success else "FAILED", "—", report.reason)
    return 0 if not report.success else 1


def _load_front_genomes(path: str) -> list:
    """Genome dicts from an exploration-front JSON file.

    Accepts either a bare list of front entries or an object with a
    ``front`` key (the shape ``repro jobs <id> --result`` prints);
    entries may be full individuals (``{"genome": ...}``) or bare
    genome dicts.
    """
    payload = json.loads(Path(path).read_text())
    entries = payload.get("front") if isinstance(payload, dict) else payload
    if not isinstance(entries, list) or not entries:
        raise SystemExit(
            f"--front {path}: expected a non-empty JSON list of front "
            f"entries (or an object with a 'front' list)"
        )
    return [
        e["genome"] if isinstance(e, dict) and "genome" in e else e
        for e in entries
    ]


def _cmd_attack_campaign(args: argparse.Namespace, d) -> int:
    from repro.redteam import AttackCampaign, AttackGrid, LayoutAttackSurface
    from repro.reporting.attack_report import (
        attack_summary_json,
        attack_table,
        hardened_regressions,
    )
    from repro.resilience.checkpoint import decode_flow_config
    from repro.resilience.supervisor import SupervisionConfig
    from repro.timing.sta import run_sta

    def surface(target_id, layout, sta, routing):
        return LayoutAttackSurface(
            target_id, layout, sta, d.assets,
            routing=routing, constraints=d.constraints,
        )

    targets = [("baseline", surface("baseline", d.layout, d.sta, d.routing))]
    hardened_configs = []
    if args.hardened:
        hardened_configs.append((
            "hardened",
            FlowConfig("CS", 2, 1,
                       _parse_scales(args.rws, d.technology.num_layers)),
        ))
    if args.front:
        hardened_configs.extend(
            (f"front-{i}", decode_flow_config(dict(genome)))
            for i, genome in enumerate(_load_front_genomes(args.front))
        )
    if hardened_configs:
        guard = _build_guard(d)
        for target_id, config in hardened_configs:
            result = guard.run(config)
            sta = run_sta(result.layout, d.constraints,
                          routing=result.routing)
            targets.append(
                (target_id,
                 surface(target_id, result.layout, sta, result.routing))
            )
    campaign = AttackCampaign(
        targets,
        AttackGrid.preset(args.grid or "quick"),
        attempts=args.attempts or 4,
        seed=args.seed,
        processes=args.processes,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        supervision=SupervisionConfig(),
    )
    result = campaign.run()
    summary = result.summary()
    if result.resumed_from is not None:
        print(f"resumed from batch {result.resumed_from} "
              f"({campaign.checkpoint_manager.path})")
    print(attack_table(
        summary,
        title=(f"Attack campaign — {args.design}, "
               f"grid {summary['grid']['name']!r}, "
               f"{summary['attempts_per_spec']} attempts/spec, "
               f"seed {summary['seed']}"),
    ))
    res = campaign.resilience.as_dict()
    if any(v for v in res.values()):
        print("resilience      : "
              + ", ".join(f"{k}={v}" for k, v in res.items()))
    if campaign.checkpoint_manager is not None:
        print(f"checkpoint      : {campaign.checkpoint_manager.path}")
    if args.json:
        Path(args.json).write_text(attack_summary_json(summary))
        print(f"wrote {args.json}")
    if args.gate_hardened:
        if len(targets) < 2:
            raise SystemExit(
                "--gate-hardened needs a hardened target; add --hardened "
                "or --front"
            )
        regressions = hardened_regressions(summary)
        if regressions:
            for target, spec_id, rate, base in regressions:
                print(f"GATE: {target} is easier to attack than baseline "
                      f"on {spec_id} ({rate:.2f} > {base:.2f})",
                      file=sys.stderr)
            return 1
        print("hardened gate   : OK (no spec attacks hardened layouts "
              "more easily than the baseline)")
    return 0


def cmd_signoff(args: argparse.Namespace) -> int:
    from repro.timing.corners import run_multi_corner_sta

    d = build_design(args.design)
    if args.hardened:
        guard = _build_guard(d)
        result = guard.run(
            FlowConfig("CS", 2, 1,
                       _parse_scales(args.rws, d.technology.num_layers))
        )
        layout, routing = result.layout, result.routing
    else:
        layout, routing = d.layout, d.routing
    mc = run_multi_corner_sta(layout, d.constraints, routing=routing)
    rows = [
        [name, f"{tns:.3f}"] for name, tns in mc.tns_by_corner().items()
    ]
    print(format_table(["corner", "TNS (ns)"], rows,
                       title=f"Multi-corner signoff — {args.design}"))
    print(f"worst corner: {mc.worst_corner} (TNS {mc.worst_tns:.3f} ns)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.security_report import security_report
    from repro.timing.sta import run_sta

    d = build_design(args.design)
    if args.hardened:
        guard = _build_guard(d)
        result = guard.run(
            FlowConfig("CS", 2, 1,
                       _parse_scales(args.rws, d.technology.num_layers))
        )
        layout, routing = result.layout, result.routing
        sta = run_sta(layout, d.constraints, routing=routing)
        title = f"{args.design} (GDSII-Guard hardened)"
    else:
        layout, routing, sta = d.layout, d.routing, d.sta
        title = f"{args.design} (baseline)"
    text = security_report(title, layout, sta, d.assets, d.constraints,
                           routing=routing)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_defend(args: argparse.Namespace) -> int:
    from repro.defenses import ba_defense, bisa_defense, icas_defense
    from repro.security.metrics import security_score

    d = build_design(args.design)
    fn = {"icas": icas_defense, "bisa": bisa_defense, "ba": ba_defense}[
        args.defense
    ]
    r = fn(d)
    base = baseline_security(d)
    print(f"{r.name}: security {security_score(r.security, base):.4f}, "
          f"TNS {r.tns:.3f} ns, power {r.power:.3f} mW, #DRC {r.drc_count}, "
          f"{r.runtime_s:.1f} s")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro import obs
    from repro.optimize.explorer import ParetoExplorer
    from repro.optimize.nsga2 import NSGA2Config
    from repro.reporting.profile_report import (
        counters_table,
        profile_table,
        write_metrics_json,
    )

    ga_config = NSGA2Config(
        population_size=args.population,
        generations=args.generations,
        seed=args.seed,
    )

    def explore_once():
        # Fresh explorer (empty memo table) so both modes pay for every
        # unique chromosome; the guard's op-level caches persist, which is
        # the incremental path's whole point.
        explorer = ParetoExplorer(
            guard, config=ga_config, processes=args.processes
        )
        t0 = time.perf_counter()
        result = explorer.explore()
        return result, time.perf_counter() - t0

    trace_path = args.trace or f"{args.design}_profile.jsonl"
    obs.enable(trace_path=trace_path)
    with obs.timed("profile", design=args.design):
        with obs.timed("profile.build_design"):
            d = build_design(args.design)
        with obs.timed("profile.baseline"):
            guard = _build_guard(d, incremental=not args.no_incremental)
        mode = "full" if args.no_incremental else "incremental"
        with obs.timed("profile.explore", mode=mode):
            result, elapsed = explore_once()
        speedup = None
        if not args.no_incremental:
            # Oracle pass: same GA trajectory on the full-recompute path,
            # for the incremental-vs-full per-evaluation speedup.
            guard.incremental = False
            with obs.timed("profile.explore", mode="full"):
                result_full, elapsed_full = explore_once()
            guard.incremental = True
            per_inc = elapsed / max(result.evaluations, 1)
            per_full = elapsed_full / max(result_full.evaluations, 1)
            if per_inc > 0:
                speedup = per_full / per_inc
                obs.gauge_set("flow.incremental.speedup", speedup)
    obs.disable()
    snapshot = obs.get_metrics().snapshot()
    print(
        profile_table(
            snapshot, title=f"Stage profile — {args.design} (explore)"
        )
    )
    resilience = counters_table(
        snapshot, prefix="resilience.", title="Resilience counters"
    )
    if resilience:
        print()
        print(resilience)
    print(
        f"\n{result.evaluations} flow evaluations, "
        f"{result.cache_requests} GA lookups, "
        f"memo hit rate {result.cache_hit_rate:.1%}"
    )
    if speedup is not None:
        print(
            f"incremental     : {elapsed / max(result.evaluations, 1):.3f} "
            f"s/eval vs full {elapsed_full / max(result_full.evaluations, 1):.3f}"
            f" s/eval — speedup {speedup:.1f}x"
        )
    print(f"trace           : {trace_path}")
    if args.json:
        out = write_metrics_json(
            snapshot,
            args.json,
            extra={
                "design": args.design,
                "population": args.population,
                "generations": args.generations,
                "evaluations": result.evaluations,
                "cache_hit_rate": result.cache_hit_rate,
                "incremental_speedup": speedup,
            },
        )
        print(f"metrics json    : {out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import all_rules, run_lint
    from repro.lint.violations import Severity
    from repro.reporting.tables import format_table

    if args.list_rules:
        rows = [
            [r.rule_id, r.name, r.severity.label(), r.description]
            for r in all_rules()
        ]
        print(format_table(["id", "name", "severity", "checks"], rows,
                           title="Lint rule catalog"))
        return 0
    if args.design is None:
        raise SystemExit("repro lint: a design is required (or --list-rules)")
    selectors = None
    if args.rules:
        selectors = [s for part in args.rules for s in part.split(",") if s]
    d = build_design(args.design)
    report = run_lint(
        d.layout,
        routing=d.routing,
        assets=d.assets,
        rules=selectors,
        subject=args.design,
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text(verbose=args.verbose))
    return report.exit_code(Severity.parse(args.fail_on))


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, analyze_tree
    from repro.analysis.baseline import write_baseline
    from repro.analysis.engine import default_root
    from repro.lint.violations import Severity
    from repro.reporting.tables import format_table

    if args.list_rules:
        rows = [
            [spec.rule_id, spec.severity.label(), spec.summary]
            for _, spec in sorted(RULES.items())
        ]
        print(format_table(["id", "severity", "checks"], rows,
                           title="Static analysis rule catalog"))
        return 0
    selectors = None
    if args.rules:
        selectors = [s for part in args.rules for s in part.split(",") if s]
    root = Path(args.root).resolve() if args.root else default_root()
    baseline: Optional[Path] = None
    if args.baseline != "none":
        baseline = Path(args.baseline)
        if not baseline.is_absolute():
            baseline = root / baseline
    report = analyze_tree(root=root, rules=selectors, baseline=baseline)
    if args.update_baseline:
        if baseline is None:
            raise SystemExit(
                "repro analyze: --update-baseline needs a --baseline path"
            )
        grandfathered = report.findings + report.baselined
        write_baseline(baseline, grandfathered)
        print(f"wrote {len(grandfathered)} baseline key(s) to {baseline}")
        return 0
    if args.out:
        Path(args.out).write_text(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text(verbose=args.verbose))
    return report.exit_code(Severity.parse(args.fail_on))


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.perf import (
        SuiteOptions,
        format_suite_table,
        git_rev,
        run_suite,
    )

    options = SuiteOptions(
        quick=args.quick,
        repeat=args.repeat,
        cases=args.case or None,
        with_scalar=not args.no_scalar,
    )
    rev = git_rev()
    record = run_suite(
        options, rev=rev, progress=lambda msg: print(f"[bench] {msg}")
    )
    out = Path(args.out) if args.out else Path(f"BENCH_{rev}.json")
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(format_suite_table(record))
    print(f"wrote {out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.resilience.supervisor import SupervisionConfig
    from repro.service.app import ServiceApp
    from repro.service.scheduler import SchedulerConfig

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    if args.guard == "fake":
        from repro.service.testing import FakeGuardFactory

        factory = FakeGuardFactory()
    else:
        from repro.service.runner import DesignGuardFactory

        factory = DesignGuardFactory()
    app = ServiceApp(
        args.state_dir,
        guard_factory=factory,
        config=SchedulerConfig(
            workers=args.workers,
            queue_limit=args.queue_limit,
            retry_after_s=args.retry_after,
            max_job_retries=args.max_job_retries,
            supervision=SupervisionConfig(
                timeout_s=args.eval_timeout,
                max_retries=args.max_retries,
            ),
        ),
        host=args.host,
        port=args.port,
        resume=args.resume,
    )
    return app.run()


def _print_front_rows(front: list, title: str) -> None:
    rows = [
        [
            f"{e['objectives'][0]:.4f}",
            f"{e['objectives'][1]:.4f}",
            e["genome"]["op_select"],
            e["genome"]["lda_n"],
            e["genome"]["lda_n_iter"],
            "/".join(f"{s:g}" for s in e["genome"]["rws_scales"]),
        ]
        for e in front
    ]
    print(
        format_table(
            ["security", "-TNS", "op", "N", "iter", "RWS"],
            rows,
            title=title,
        )
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    spec = {
        "kind": args.kind,
        "design": args.design,
        "priority": args.priority,
        "seed": args.seed,
        "population": args.population,
        "generations": args.generations,
        "processes": args.processes,
        "resume": args.resume,
        "resume_from": args.resume_from,
        "attempts": args.attempts,
        "grid": args.grid,
    }
    job = client.submit(spec, honor_backpressure=args.block)
    print(f"submitted {job['id']} ({args.kind} {args.design}, "
          f"priority {args.priority}, seed {args.seed}) — "
          f"state {job['state']}")
    if not args.wait:
        return 0
    record = client.wait(job["id"], timeout_s=args.timeout)
    state = record["state"]
    print(f"{job['id']}: {state}")
    if state != "done":
        if record.get("error"):
            print(f"error: {record['error']}", file=sys.stderr)
        return 1
    result = client.result(job["id"])
    if args.kind == "explore":
        print(f"{result['evaluations']} evaluations; front:")
        _print_front_rows(
            result["front"],
            title=f"Pareto front — {args.design} (served)",
        )
    elif args.kind == "attack":
        from repro.reporting.attack_report import attack_table

        print(attack_table(
            result["summary"],
            title=f"Attack campaign — {args.design} (served)",
        ))
    else:
        print(f"objectives      : "
              + ", ".join(f"{v:.4f}" for v in result["objectives"]))
        print(f"violation       : {result['violation']:.4f}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id is None:
        rows = [
            [
                j["id"], j["kind"], j["design"], j["priority"],
                j["seed"], j["state"],
                "-" if j["generation"] is None else j["generation"],
            ]
            for j in client.jobs()
        ]
        print(
            format_table(
                ["id", "kind", "design", "prio", "seed", "state", "gen"],
                rows,
                title=f"Jobs — {args.url}",
            )
        )
        return 0
    if args.cancel:
        job = client.cancel(args.job_id)
        print(f"{job['id']}: {job['state']}")
        return 0
    if args.result:
        result = client.result(args.job_id)
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    job = client.job(args.job_id)
    print(json.dumps(job, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GDSII-Guard reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the benchmark suite").set_defaults(
        func=cmd_designs
    )

    p = sub.add_parser("baseline", help="baseline metrics of one design")
    p.add_argument("design", choices=DESIGN_NAMES)
    p.set_defaults(func=cmd_baseline)

    p = sub.add_parser("harden", help="run the GDSII-Guard flow")
    p.add_argument("design", choices=DESIGN_NAMES)
    p.add_argument("--op", choices=("CS", "LDA"), default="CS")
    p.add_argument("--lda-n", type=int, choices=LDA_N_CHOICES, default=16)
    p.add_argument("--lda-iter", type=int, choices=LDA_ITER_CHOICES, default=2)
    p.add_argument("--rws", default="1.0",
                   help="one scale for all layers or K comma-separated")
    p.add_argument("--out", help="directory for DEF/GDSII/Verilog export")
    p.add_argument("--no-incremental", action="store_true",
                   help="force the full-recompute evaluation path")
    p.add_argument("--checkpoint-dir",
                   help="run directory for the completed-run checkpoint")
    p.add_argument("--resume", action="store_true",
                   help="reuse a completed checkpoint instead of re-running")
    p.add_argument("--check-invariants", action="store_true",
                   help="paranoid mode: re-run the layout invariant lint "
                        "after every ECO operator and fail on violations")
    p.set_defaults(func=cmd_harden)

    p = sub.add_parser("explore", help="NSGA-II Pareto exploration")
    p.add_argument("design", choices=DESIGN_NAMES)
    p.add_argument("--population", type=int, default=8)
    p.add_argument("--generations", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--processes", type=int, default=0)
    p.add_argument("--no-incremental", action="store_true",
                   help="force the full-recompute evaluation path")
    p.add_argument("--checkpoint-dir",
                   help="run directory for per-generation checkpoints")
    p.add_argument("--resume", action="store_true",
                   help="continue from the checkpoint in --checkpoint-dir "
                        "(starts fresh when none exists)")
    p.add_argument("--eval-timeout", type=float, default=600.0,
                   help="per-evaluation timeout in seconds before a worker "
                        "is killed and the task retried (default 600)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="re-dispatches per failed evaluation before "
                        "falling back to in-process execution (default 2)")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "attack",
        help="run the Trojan attacker (single attempt, or a Monte Carlo "
             "campaign with --grid/--attempts/--front)",
    )
    p.add_argument("design", choices=DESIGN_NAMES)
    p.add_argument("--hardened", action="store_true",
                   help="also attack a GDSII-Guard-hardened layout")
    p.add_argument("--rws", default="1.0")
    p.add_argument("--grid", default=None,
                   help="campaign mode: named spec-grid preset "
                        "(ci, quick, default)")
    p.add_argument("--attempts", type=int, default=None,
                   help="campaign mode: seeded attempts per grid spec "
                        "(default 4)")
    p.add_argument("--front", metavar="FILE", default=None,
                   help="campaign mode: attack every point of an "
                        "exploration-front JSON file (harden each genome, "
                        "targets named front-<i>)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (every attempt seed derives from it)")
    p.add_argument("--processes", type=int, default=0,
                   help="supervised worker processes per batch "
                        "(0 = inline serial)")
    p.add_argument("--checkpoint-dir",
                   help="run directory for per-batch campaign checkpoints")
    p.add_argument("--resume", action="store_true",
                   help="continue from the checkpoint in --checkpoint-dir "
                        "(starts fresh when none exists)")
    p.add_argument("--json", metavar="OUT",
                   help="write the canonical campaign summary JSON here")
    p.add_argument("--gate-hardened", action="store_true",
                   help="exit non-zero if any hardened/front target is "
                        "easier to attack than the baseline on any spec")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("signoff", help="multi-corner timing signoff")
    p.add_argument("design", choices=DESIGN_NAMES)
    p.add_argument("--hardened", action="store_true")
    p.add_argument("--rws", default="1.0")
    p.set_defaults(func=cmd_signoff)

    p = sub.add_parser("report", help="markdown security report")
    p.add_argument("design", choices=DESIGN_NAMES)
    p.add_argument("--hardened", action="store_true")
    p.add_argument("--rws", default="1.0")
    p.add_argument("--out", help="write the report to this file")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("defend", help="run a baseline defense")
    p.add_argument("design", choices=DESIGN_NAMES)
    p.add_argument("defense", choices=("icas", "bisa", "ba"))
    p.set_defaults(func=cmd_defend)

    p = sub.add_parser(
        "profile",
        help="per-stage wall-clock/RSS profile of the flow + exploration",
    )
    p.add_argument("design", choices=DESIGN_NAMES)
    p.add_argument("--population", type=int, default=6)
    p.add_argument("--generations", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--processes", type=int, default=0)
    p.add_argument("--trace",
                   help="JSONL event-trace path (default <design>_profile.jsonl)")
    p.add_argument("--json", help="also write the metrics snapshot as JSON")
    p.add_argument("--no-incremental", action="store_true",
                   help="profile only the full-recompute path "
                        "(skips the speedup comparison)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "lint",
        help="rule-based layout DRC/invariant analysis of a design",
    )
    p.add_argument("design", nargs="?", choices=DESIGN_NAMES,
                   help="design to lint (omit with --list-rules)")
    p.add_argument("--rules", action="append", default=[],
                   help="rule ids/names to run (comma-separated or "
                        "repeated); default: the whole catalog")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--fail-on", choices=("info", "warning", "error"),
                   default="error",
                   help="lowest severity that makes the exit code "
                        "non-zero (default error)")
    p.add_argument("--verbose", action="store_true",
                   help="also print fix hints under each finding")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="interprocedural effect & concurrency analysis of the "
             "repro source tree itself",
    )
    p.add_argument("--rules", action="append", default=[],
                   help="rule ids or family prefixes (EFF, ASY, FRK; "
                        "comma-separated or repeated); default: all")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--fail-on", choices=("info", "warning", "error"),
                   default="error",
                   help="lowest severity that makes the exit code "
                        "non-zero (default error)")
    p.add_argument("--baseline", default="tools/analysis_ratchet.json",
                   help="ratcheted baseline file, relative to the repo "
                        "root ('none' disables baseline handling)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current findings "
                        "and exit (the ratchet should only go down)")
    p.add_argument("--root",
                   help="repo root containing src/repro (default: "
                        "inferred from the installed package)")
    p.add_argument("--out",
                   help="also write the JSON report to this path "
                        "(CI artifact)")
    p.add_argument("--verbose", action="store_true",
                   help="also print fix hints under each finding")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "bench",
        help="pinned perf suite; writes BENCH_<rev>.json for CI diffing",
    )
    p.add_argument("--quick", action="store_true",
                   help="single repeat per case (the CI perf-job setting)")
    p.add_argument("--repeat", type=int, default=None,
                   help="repeats per case (default 3, 1 with --quick)")
    p.add_argument("--case", action="append", default=[],
                   help="run only these cases (repeatable); default: all")
    p.add_argument("--no-scalar", action="store_true",
                   help="skip the scalar-kernel reference leg (no speedup "
                        "figure)")
    p.add_argument("--out",
                   help="result path (default BENCH_<git rev>.json)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the job-orchestration daemon (JSON-over-HTTP API)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8347,
                   help="TCP port to bind (0 picks a free one)")
    p.add_argument("--state-dir", default="repro-service",
                   help="journal + checkpoint directory (default "
                        "./repro-service)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job slots (default 2)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="bounded queue size before 429 backpressure")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="Retry-After seconds advertised on 429s")
    p.add_argument("--max-job-retries", type=int, default=1,
                   help="whole-job retries after a ReproError (default 1)")
    p.add_argument("--eval-timeout", type=float, default=600.0,
                   help="per-evaluation timeout in seconds (default 600)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="per-evaluation re-dispatches before in-process "
                        "fallback (default 2)")
    p.add_argument("--resume", action="store_true",
                   help="resurrect unfinished journaled jobs from "
                        "--state-dir before serving")
    p.add_argument("--guard", choices=("real", "fake"), default="real",
                   help="'fake' serves the deterministic test evaluator "
                        "(chaos tests, smoke loads)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a harden/explore/attack job to a running daemon",
    )
    p.add_argument("design")
    p.add_argument("--url", default="http://127.0.0.1:8347",
                   help="daemon base URL")
    p.add_argument("--kind", choices=("explore", "harden", "attack"),
                   default="explore")
    p.add_argument("--attempts", type=int, default=4,
                   help="attack jobs: seeded attempts per grid spec")
    p.add_argument("--grid", default="quick",
                   help="attack jobs: named spec-grid preset")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (default 0)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--population", type=int, default=8)
    p.add_argument("--generations", type=int, default=3)
    p.add_argument("--processes", type=int, default=0)
    p.add_argument("--resume", action="store_true",
                   help="continue from the job's service-side checkpoint")
    p.add_argument("--resume-from", metavar="JOB_ID", default=None,
                   help="continue a cancelled job's checkpoint lineage "
                        "(the DELETE handoff; implies --resume)")
    p.add_argument("--block", action="store_true",
                   help="wait out 429 backpressure instead of failing")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes and print the result")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait deadline in seconds (default 600)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "jobs",
        help="list a daemon's jobs, or show/cancel/fetch one",
    )
    p.add_argument("job_id", nargs="?",
                   help="job id (omit to list all jobs)")
    p.add_argument("--url", default="http://127.0.0.1:8347",
                   help="daemon base URL")
    p.add_argument("--cancel", action="store_true",
                   help="cancel the given job (checkpoint handoff)")
    p.add_argument("--result", action="store_true",
                   help="print the given job's final result as JSON")
    p.set_defaults(func=cmd_jobs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Library errors (bad benchmark, corrupt checkpoint, unwritable
    checkpoint directory, flow mis-configuration, ...) exit non-zero
    with a one-line actionable message instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
