"""Incremental, blockage-aware, wirelength-driven ECO placement.

This is the engine the LDA operator (Algorithm 2) drives: after partial
placement blockages are programmed onto the layout, ``eco_place`` moves the
minimum set of movable cells needed to honor every blockage's density cap,
steering each displaced cell toward the median of its connected pins so the
wirelength (and hence timing) impact stays small — the paper's
"wire-length/timing driven" incremental placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import List, Optional, Set

from repro import kernels, obs
from repro.geometry import Point
from repro.layout.layout import Layout
from repro.place.budget import BlockageBudget, BudgetSet, build_budgets
from repro.place.budget import commit_placement, release_placement
from repro.place.legalize import _try_rows_outward


@dataclass
class EcoPlacementReport:
    """What an ECO placement pass did.

    Attributes:
        moved: Names of instances that changed position.
        total_displacement_um: Sum of L1 move distances (µm).
        unresolved_blockages: Blockages still over budget afterwards (their
            remaining movable content could not be relocated).
    """

    moved: List[str] = field(default_factory=list)
    total_displacement_um: float = 0.0
    unresolved_blockages: List[str] = field(default_factory=list)

    @property
    def num_moved(self) -> int:
        """Number of cells moved."""
        return len(self.moved)


def connected_median(layout: Layout, instance_name: str) -> Optional[Point]:
    """Median position of all pins connected to ``instance_name``'s nets.

    The classic optimal-region estimate for single-cell placement.  Returns
    ``None`` for unconnected cells (e.g. fillers).
    """
    inst = layout.netlist.instance(instance_name)
    xs: List[float] = []
    ys: List[float] = []
    for net_name in set(inst.connections.values()):
        for p in layout.net_pin_points(net_name):
            xs.append(p.x)
            ys.append(p.y)
    # Remove this cell's own contribution once per connected net; cheaper
    # and close enough: with it included the median barely shifts.
    if not xs:
        return None
    return Point(median(xs), median(ys))


def _relocate(
    layout: Layout,
    budgets: "BudgetSet | List[BlockageBudget]",
    name: str,
    target: Point,
    row_search_radius: int,
) -> Optional[float]:
    """Move ``name`` to a legal, in-budget spot near ``target``.

    Returns the displacement in µm, or ``None`` when no spot was found (the
    cell is restored to its original position).
    """
    tech = layout.technology
    inst = layout.netlist.instance(name)
    width = inst.width_sites
    old = layout.placement(name)
    old_center = layout.cell_center(name)

    layout.unplace(name)
    release_placement(budgets, old.row, old.start, width)

    target_row = min(max(int(target.y / tech.row_height), 0), layout.num_rows - 1)
    target_site = min(
        max(int(target.x / tech.site_width - width / 2), 0),
        layout.sites_per_row - width,
    )
    spot = _try_rows_outward(
        layout, budgets, name, width, target_row, target_site, row_search_radius
    )
    if spot is None:
        spot = _try_rows_outward(
            layout, budgets, name, width, target_row, target_site, layout.num_rows
        )
    if spot is None:
        layout.place(name, old.row, old.start)
        commit_placement(budgets, old.row, old.start, width)
        return None
    row, start = spot
    layout.place(name, row, start)
    commit_placement(budgets, row, start, width)
    new_center = layout.cell_center(name)
    return old_center.manhattan_distance(new_center)


def eco_place(
    layout: Layout,
    movable: Optional[Set[str]] = None,
    row_search_radius: int = 12,
    attract_point: Optional[Point] = None,
) -> EcoPlacementReport:
    """Resolve all blockage density caps with minimal, WL-driven moves.

    Args:
        layout: The layout to mutate in place.  Its registered blockages
            define the density caps; instances in ``layout.fixed`` never
            move.
        movable: Optional whitelist of movable instances; default is every
            placed, non-fixed instance.
        row_search_radius: Row search window for relocation targets.
        attract_point: Optional µm point the density flow should converge
            on: evicted cells fill admissible space closest to it first.
            LDA passes the asset-bank centroid so arrivals consume the
            free sites nearest the assets before the outer ring.

    Returns:
        An :class:`EcoPlacementReport`.
    """
    with obs.timed("place.eco"):
        report = _eco_place(layout, movable, row_search_radius, attract_point)
    if obs.is_enabled():
        obs.count("place.eco.moved_cells", report.num_moved)
        obs.count(
            "place.eco.unresolved_blockages", len(report.unresolved_blockages)
        )
        obs.observe(
            "place.eco.total_displacement_um", report.total_displacement_um
        )
    return report


def _eco_place(
    layout: Layout,
    movable: Optional[Set[str]],
    row_search_radius: int,
    attract_point: Optional[Point],
) -> EcoPlacementReport:
    report = EcoPlacementReport()
    budgets = build_budgets(layout)
    if not len(budgets):
        return report

    # Process the most over-budget blockages first.
    order = sorted(
        budgets.over_budget(),
        key=lambda b: b.max_used - b.used,
    )
    for budget in order:
        excess = budget.used - budget.max_used
        if excess <= 0:
            continue
        inside = layout.instances_in_rect(budget.blockage.rect)
        candidates = [
            n
            for n in inside
            if n not in layout.fixed and (movable is None or n in movable)
        ]
        # Evict cells whose connectivity already pulls them out of the
        # region first: cheapest displacement, least timing impact.
        def pull_distance(n: str) -> float:
            m = connected_median(layout, n)
            if m is None:
                return 0.0  # fillers and dangling cells are free to move
            return -budget.blockage.rect.manhattan_distance_to_point(m)

        candidates.sort(key=pull_distance)
        failures = 0
        for name in candidates:
            if budget.used <= budget.max_used:
                break
            if failures >= 4:
                break  # nothing admissible left anywhere near; give up
            width = layout.netlist.instance(name).width_sites
            median_pt = connected_median(layout, name) or layout.cell_center(name)
            target = _receiving_target(
                layout, budgets, budget, name, width, median_pt,
                attract_point=attract_point,
            )
            moved = _relocate(layout, budgets, name, target, row_search_radius)
            if moved is not None and moved > 0:
                report.moved.append(name)
                report.total_displacement_um += moved
                failures = 0
            else:
                failures += 1
        if budget.used > budget.max_used:
            report.unresolved_blockages.append(budget.blockage.name)
    return report


def _receiving_target(
    layout: Layout,
    budgets: BudgetSet,
    source: BlockageBudget,
    name: str,
    width: int,
    median_pt: Point,
    attract_point: Optional[Point] = None,
) -> Point:
    """Where an evicted cell should aim.

    The density caps describe a global flow: excess sites in over-budget
    regions must drain into the regions with real headroom (in LDA these
    are the asset-neighborhood tiles).  Aiming at the median alone makes
    evictees diffuse into the next-door tile and the flow never reaches
    the receivers, so the target is the nearest blockage with comfortable
    headroom, clamped toward the cell's connected median to keep the
    wirelength impact as small as the flow allows.
    """
    if kernels.use_vector():
        from repro.kernels.legalize import receiving_target

        return receiving_target(
            layout, budgets, source, name, width, median_pt, attract_point
        )
    anchor = attract_point if attract_point is not None else layout.cell_center(name)
    best_rect = None
    best_cost = None
    for b in budgets:
        if b is source or b.blockage.is_hard:
            continue
        headroom = b.max_used - b.used
        if headroom < width + 2:
            continue
        d = b.blockage.rect.manhattan_distance_to_point(anchor)
        cost = d - 0.02 * headroom  # prefer close, break ties by headroom
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_rect = b.blockage.rect
    if best_rect is None:
        return median_pt
    # The point of the receiving rect closest to the pull anchor (the
    # attract point when given, otherwise the cell's connected median).
    pull = attract_point if attract_point is not None else median_pt
    x = min(max(pull.x, best_rect.xlo), best_rect.xhi - 1e-6)
    y = min(max(pull.y, best_rect.ylo), best_rect.yhi - 1e-6)
    return Point(x, y)
