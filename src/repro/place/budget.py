"""Blockage density budgets used by the legalizer and the ECO placer.

A :class:`BlockageBudget` turns each partial placement blockage into a
site-count budget: ``capacity × max_density`` sites may be occupied inside
its rectangle.  A :class:`BudgetSet` indexes the budgets by row so the hot
query — "may I place w sites at (row, start)?" — only consults the few
budgets that actually cover the row.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.geometry import Interval
from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout


class BlockageBudget:
    """Site budget of one partial placement blockage."""

    def __init__(self, layout: Layout, blockage: PlacementBlockage) -> None:
        self.blockage = blockage
        self._spans: Dict[int, Interval] = {
            row: iv for row, iv in layout.rect_to_row_span(blockage.rect)
        }
        capacity = sum(len(iv) for iv in self._spans.values())
        self.capacity = capacity
        self.max_used = int(capacity * blockage.max_density)
        self.used = 0
        for row, iv in self._spans.items():
            for p in layout.occupancy[row]:
                if p.start >= iv.hi:
                    break
                lo, hi = max(p.start, iv.lo), min(p.end, iv.hi)
                if hi > lo:
                    self.used += hi - lo

    @property
    def rows(self) -> Iterator[int]:
        """Rows the blockage covers."""
        return iter(self._spans)

    def row_span(self, row: int) -> Optional[Interval]:
        """The blockage's site interval on ``row`` (None when not covered)."""
        return self._spans.get(row)

    def _overlap(self, row: int, start: int, width: int) -> int:
        """Sites of a candidate placement falling inside the blockage."""
        iv = self._spans.get(row)
        if iv is None:
            return 0
        lo, hi = max(start, iv.lo), min(start + width, iv.hi)
        return max(hi - lo, 0)

    def allows(self, row: int, start: int, width: int) -> bool:
        """Whether placing ``width`` sites at ``(row, start)`` stays in budget.

        A placement that does not overlap the blockage is always allowed —
        an already-over-budget region must not veto moves elsewhere.
        """
        ov = self._overlap(row, start, width)
        if ov == 0:
            return True
        return self.used + ov <= self.max_used

    def commit(self, row: int, start: int, width: int) -> None:
        """Record a placement inside (or partly inside) the blockage."""
        self.used += self._overlap(row, start, width)

    def release(self, row: int, start: int, width: int) -> None:
        """Undo :meth:`commit` for a removed placement."""
        self.used -= self._overlap(row, start, width)

    @property
    def over_budget(self) -> bool:
        """Whether current occupancy already exceeds the density cap."""
        return self.used > self.max_used


class BudgetSet:
    """All budgets of a layout, indexed by row for fast admission checks."""

    def __init__(self, budgets: List[BlockageBudget], num_rows: int) -> None:
        self.budgets = budgets
        self._by_row: List[List[BlockageBudget]] = [[] for _ in range(num_rows)]
        for b in budgets:
            for row in b.rows:
                if 0 <= row < num_rows:
                    self._by_row[row].append(b)
        #: bumped whenever any member budget's ``used`` changes through this
        #: set; the vectorized legalizer keys its headroom arrays on it.
        self.version = 0
        #: budgets whose ``used`` actually moved, in mutation order; the
        #: legalizer's array mirror consumes the tail instead of rescanning
        #: every budget on each version bump.
        self.changelog: List[BlockageBudget] = []

    def __iter__(self) -> Iterator[BlockageBudget]:
        return iter(self.budgets)

    def __len__(self) -> int:
        return len(self.budgets)

    def row_budgets(self, row: int) -> List[BlockageBudget]:
        """Budgets covering one row."""
        if 0 <= row < len(self._by_row):
            return self._by_row[row]
        return []

    def allows(self, row: int, start: int, width: int) -> bool:
        """Whether every budget admits the candidate placement."""
        return all(b.allows(row, start, width) for b in self.row_budgets(row))

    def commit(self, row: int, start: int, width: int) -> None:
        """Commit the placement to the covering budgets."""
        for b in self.row_budgets(row):
            before = b.used
            b.commit(row, start, width)
            if b.used != before:
                self.changelog.append(b)
        self.version += 1

    def release(self, row: int, start: int, width: int) -> None:
        """Release a removed placement from the covering budgets."""
        for b in self.row_budgets(row):
            before = b.used
            b.release(row, start, width)
            if b.used != before:
                self.changelog.append(b)
        self.version += 1

    def over_budget(self) -> List[BlockageBudget]:
        """All budgets currently above their cap."""
        return [b for b in self.budgets if b.over_budget]


def build_budgets(layout: Layout) -> BudgetSet:
    """Budgets for every blockage registered on ``layout``."""
    return BudgetSet(
        [BlockageBudget(layout, b) for b in layout.blockages.values()],
        layout.num_rows,
    )


def placement_allowed(
    budgets: "BudgetSet | List[BlockageBudget]", row: int, start: int, width: int
) -> bool:
    """Whether all budgets admit the candidate placement."""
    if isinstance(budgets, BudgetSet):
        return budgets.allows(row, start, width)
    return all(b.allows(row, start, width) for b in budgets)


def commit_placement(
    budgets: "BudgetSet | List[BlockageBudget]", row: int, start: int, width: int
) -> None:
    """Commit the candidate placement to all budgets."""
    if isinstance(budgets, BudgetSet):
        budgets.commit(row, start, width)
        return
    for b in budgets:
        b.commit(row, start, width)


def release_placement(
    budgets: "BudgetSet | List[BlockageBudget]", row: int, start: int, width: int
) -> None:
    """Release a removed placement from all budgets."""
    if isinstance(budgets, BudgetSet):
        budgets.release(row, start, width)
        return
    for b in budgets:
        b.release(row, start, width)
