"""Filler-cell insertion — the standard final step before tapeout.

Fills every remaining gap with non-functional ``FILLCELL_*`` masters so
the power rails are continuous.  Security-wise this is a *placebo*:
Definition 2.2 counts filler-occupied sites as exploitable (the foundry
attacker deletes fillers at will), and the exploitable-region analysis in
:mod:`repro.security.exploitable` treats them accordingly — inserting
fillers changes ERsites by exactly nothing, which is the paper's argument
for functional filling (BISA/Ba) over plain fillers.

The netlist gains instances, so pass a layout bound to a *private* netlist
copy (``layout.netlist = original.copy()``) unless mutating the design is
intended.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.layout import Layout


@dataclass(frozen=True)
class FillerReport:
    """Outcome of a filler-insertion pass."""

    cells_added: int
    sites_filled: int
    sites_skipped: int  # gap sites narrower than the smallest filler


def insert_fillers(layout: Layout, prefix: str = "filler_") -> FillerReport:
    """Fill every free gap of ``layout`` with filler cells.

    Uses the widest filler that fits, repeatedly, leaving only gaps
    narrower than the narrowest filler master.
    """
    netlist = layout.netlist
    fillers = sorted(
        netlist.library.filler_cells(), key=lambda c: -c.width_sites
    )
    if not fillers:
        return FillerReport(cells_added=0, sites_filled=0, sites_skipped=0)
    min_width = fillers[-1].width_sites
    added = 0
    filled = 0
    skipped = 0
    serial = 0
    for row in range(layout.num_rows):
        for gap in layout.occupancy[row].free_intervals():
            cursor = gap.lo
            remaining = len(gap)
            while remaining >= min_width:
                master = next(
                    c for c in fillers if c.width_sites <= remaining
                )
                serial += 1
                name = f"{prefix}{serial}"
                netlist.add_instance(name, master)
                layout.place(name, row, cursor)
                cursor += master.width_sites
                remaining -= master.width_sites
                added += 1
                filled += master.width_sites
            skipped += remaining
    return FillerReport(
        cells_added=added, sites_filled=filled, sites_skipped=skipped
    )
