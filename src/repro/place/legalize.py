"""Tetris-style legalization.

Given desired real-valued positions for a set of instances, place each one
onto the site grid with minimal displacement, honoring already-placed
(fixed) cells and partial blockage density budgets.  Cells are processed in
ascending target-x order (the classic Tetris scan), searching rows outward
from the target row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import kernels
from repro.errors import PlacementError
from repro.geometry import Interval, Point, merge_intervals, subtract_intervals
from repro.layout.layout import Layout
from repro.place.budget import (
    BlockageBudget,
    BudgetSet,
    build_budgets,
    commit_placement,
)


def _forbidden_starts(
    budgets: "BudgetSet | List[BlockageBudget]",
    row: int,
    width: int,
    max_site: int,
) -> List[Interval]:
    """Start positions on ``row`` a budget rejects, as merged intervals.

    A budget with headroom ``h < width`` over row span ``[lo, hi)``
    forbids exactly the starts whose overlap with the span exceeds ``h``:
    ``start ∈ [lo − width + h + 1, hi − h)`` — derived from the tent-shaped
    overlap function of an axis-aligned sweep.
    """
    row_budgets = (
        budgets.row_budgets(row) if isinstance(budgets, BudgetSet) else budgets
    )
    forbidden: List[Interval] = []
    for b in row_budgets:
        span = b.row_span(row)
        if span is None:
            continue
        # Over-budget regions (h < 0) still admit zero-overlap placements,
        # so the effective headroom for the sweep is clamped at 0.
        h = max(b.max_used - b.used, 0)
        if h >= width:
            continue
        lo = max(span.lo - width + h + 1, 0)
        hi = min(span.hi - h, max_site)
        if hi > lo:
            forbidden.append(Interval(lo, hi))
    return merge_intervals(forbidden)


def _best_start_in_row(
    layout: Layout,
    budgets: "BudgetSet | List[BlockageBudget]",
    row: int,
    target_site: int,
    width: int,
) -> Optional[int]:
    """Feasible start site in ``row`` closest to ``target_site``."""
    if kernels.use_vector():
        from repro.kernels.legalize import best_start_in_row

        return best_start_in_row(layout, budgets, row, target_site, width)
    occ = layout.occupancy[row]
    gaps = [g for g in occ.free_intervals() if len(g) >= width]
    if not gaps:
        return None
    forbidden = _forbidden_starts(budgets, row, width, occ.row.num_sites)
    best: Optional[int] = None
    best_cost: Optional[int] = None
    for gap in gaps:
        starts = Interval(gap.lo, gap.hi - width + 1)
        for piece in subtract_intervals(starts, forbidden):
            cand = min(max(piece.lo, target_site), piece.hi - 1)
            cost = abs(cand - target_site)
            if best_cost is None or cost < best_cost:
                best, best_cost = cand, cost
    return best


def legalize(
    layout: Layout,
    targets: Dict[str, Point],
    row_search_radius: int = 12,
) -> Dict[str, Tuple[int, int]]:
    """Place every instance in ``targets`` near its desired µm position.

    Args:
        layout: Target layout.  Instances in ``targets`` must be unplaced;
            everything already placed is treated as an obstacle.
        targets: Instance name → desired position (cell centre, µm).
        row_search_radius: How many rows above/below the target row to try
            before giving up widens to the whole core.

    Returns:
        Instance name → ``(row, start_site)`` chosen.

    Raises:
        PlacementError: When some instance cannot be placed anywhere.
    """
    tech = layout.technology
    budgets = build_budgets(layout)
    order = sorted(targets, key=lambda n: targets[n].x)
    result: Dict[str, Tuple[int, int]] = {}
    for name in order:
        inst = layout.netlist.instance(name)
        width = inst.width_sites
        t = targets[name]
        target_row = min(
            max(int(t.y / tech.row_height), 0), layout.num_rows - 1
        )
        target_site = min(
            max(int(t.x / tech.site_width - width / 2), 0),
            layout.sites_per_row - width,
        )
        placed = _try_rows_outward(
            layout, budgets, name, width, target_row, target_site, row_search_radius
        )
        if placed is None:
            # Last resort: search the entire core.
            placed = _try_rows_outward(
                layout, budgets, name, width, target_row, target_site,
                layout.num_rows,
            )
        if placed is None:
            raise PlacementError(f"no legal position for {name!r}")
        row, start = placed
        layout.place(name, row, start)
        commit_placement(budgets, row, start, width)
        result[name] = (row, start)
    return result


def _try_rows_outward(
    layout: Layout,
    budgets: "BudgetSet | List[BlockageBudget]",
    name: str,
    width: int,
    target_row: int,
    target_site: int,
    radius: int,
) -> Optional[Tuple[int, int]]:
    """Scan rows outward from ``target_row``; return the cheapest position."""
    best: Optional[Tuple[int, int]] = None
    best_cost: Optional[float] = None
    for dr in range(radius + 1):
        for row in {target_row - dr, target_row + dr}:
            if not 0 <= row < layout.num_rows:
                continue
            start = _best_start_in_row(layout, budgets, row, target_site, width)
            if start is None:
                continue
            cost = abs(start - target_site) + dr * 4.0  # row moves cost more
            if best_cost is None or cost < best_cost:
                best, best_cost = (row, start), cost
        # Early exit: a same-row hit with zero displacement can't be beaten.
        if best_cost is not None and best_cost <= dr * 4.0:
            return best
    return best
