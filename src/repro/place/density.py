"""Bin-based placement density map.

Used by the DRC checker (congestion hot spots), the ICAS baseline (its
density parameter sweep observes the map), and tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.geometry import Rect
from repro.layout.layout import Layout


class DensityMap:
    """Utilization of a layout on a regular ``nx × ny`` bin grid."""

    def __init__(self, layout: Layout, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise PlacementError("density map needs at least one bin per axis")
        self.layout = layout
        self.nx = nx
        self.ny = ny
        core = layout.core
        self._bin_w = core.width / nx
        self._bin_h = core.height / ny
        self._used = np.zeros((nx, ny), dtype=float)
        self._capacity = np.zeros((nx, ny), dtype=float)
        self._build()

    def _build(self) -> None:
        core = self.layout.core
        # Capacity: core area per bin (all bins inside the core by design).
        self._capacity[:, :] = self._bin_w * self._bin_h
        for name in self.layout.placements:
            rect = self.layout.cell_rect(name)
            self._spread(rect)

    def _spread(self, rect: Rect) -> None:
        """Add a cell rectangle's area to the bins it covers (pro-rated)."""
        ix_lo = max(int(rect.xlo / self._bin_w), 0)
        ix_hi = min(int(np.ceil(rect.xhi / self._bin_w)), self.nx)
        iy_lo = max(int(rect.ylo / self._bin_h), 0)
        iy_hi = min(int(np.ceil(rect.yhi / self._bin_h)), self.ny)
        for ix in range(ix_lo, ix_hi):
            for iy in range(iy_lo, iy_hi):
                bin_rect = self.bin_rect(ix, iy)
                overlap = rect.intersection(bin_rect)
                if overlap is not None:
                    self._used[ix, iy] += overlap.area

    def bin_rect(self, ix: int, iy: int) -> Rect:
        """µm rectangle of bin ``(ix, iy)``."""
        return Rect(
            ix * self._bin_w,
            iy * self._bin_h,
            (ix + 1) * self._bin_w,
            (iy + 1) * self._bin_h,
        )

    def density(self, ix: int, iy: int) -> float:
        """Utilization of one bin in [0, ~1]."""
        cap = self._capacity[ix, iy]
        if cap <= 0:
            return 0.0
        return float(self._used[ix, iy] / cap)

    def as_array(self) -> np.ndarray:
        """Density of every bin as an ``(nx, ny)`` array."""
        with np.errstate(divide="ignore", invalid="ignore"):
            d = np.where(self._capacity > 0, self._used / self._capacity, 0.0)
        return d

    def max_density(self) -> float:
        """Highest bin utilization."""
        return float(self.as_array().max())

    def bins_above(self, threshold: float) -> List[Tuple[int, int]]:
        """Bins whose utilization exceeds ``threshold``."""
        arr = self.as_array()
        return [tuple(idx) for idx in np.argwhere(arr > threshold)]
