"""Initial (baseline) placement.

This stands in for the full global-placement + legalization flow that
produced the paper's baseline layouts.  It builds a connectivity-aware
serpentine placement: instances are linearly ordered by BFS over the
netlist so connected logic lands close together, then distributed row by
row at the requested utilization, with free sites scattered between cells.
The result has the properties the security analysis cares about — logic
clusters, dispersed free-site gaps forming exploitable regions, and a
realistic utilization — while staying fast and fully deterministic.

The ``packing`` knob (0 = evenly scattered gaps, 1 = cells packed hard to
the left with all free space pushed to the row ends) is what the ICAS
baseline sweeps as its "core density" CAD parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import PlacementError
from repro.geometry import Point
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.tech.technology import Technology


@dataclass(frozen=True)
class GlobalPlacementSpec:
    """Knobs of the baseline placer.

    Attributes:
        target_utilization: Desired fraction of core sites occupied.
        packing: 0..1 — how much of each row's free space is pushed to the
            row end instead of scattered between cells.
        aspect: Core width/height balance; 1.0 aims at a square core in µm.
        num_rows: Optional fixed row count (overrides sizing from
            utilization — used when re-placing into an existing core).
        sites_per_row: Optional fixed sites per row.
        seed: RNG seed for the gap scattering.
    """

    target_utilization: float = 0.6
    packing: float = 0.15
    aspect: float = 1.0
    num_rows: Optional[int] = None
    sites_per_row: Optional[int] = None
    seed: int = 0
    #: instances to pack into one compact 2-D block (a register/asset
    #: bank), placed before the serpentine fill.  Real banks end up as
    #: dense rectangular clusters, not full-width bands.
    clustered: tuple = ()
    #: local placement density inside the clustered block.
    cluster_density: float = 0.72

    def __post_init__(self) -> None:
        if not 0.05 < self.target_utilization <= 1.0:
            raise PlacementError("target_utilization must be in (0.05, 1]")
        if not 0.0 <= self.packing <= 1.0:
            raise PlacementError("packing must be in [0, 1]")
        if not 0.1 < self.cluster_density <= 1.0:
            raise PlacementError("cluster_density must be in (0.1, 1]")


def connectivity_order(netlist: Netlist) -> List[str]:
    """Linear ordering of functional instances by DFS over connectivity.

    Depth-first traversal keeps whole logic cones contiguous in the
    ordering (breadth-first would interleave every cone at the same
    depth), which the serpentine mapper turns into spatial locality.
    Deterministic: ties are broken by insertion order; clock nets are
    skipped so the clock's huge fanout does not glue unrelated registers
    together.
    """
    clock_nets = netlist.clock_nets()
    adjacency: Dict[str, List[str]] = {}
    for inst in netlist.functional_instances():
        neighbors: List[str] = []
        for net_name in inst.connections.values():
            if net_name in clock_nets:
                continue
            net = netlist.net(net_name)
            if net.driver_pin is not None and net.driver_pin.instance != inst.name:
                neighbors.append(net.driver_pin.instance)
            for ref in net.sink_pins:
                if ref.instance != inst.name:
                    neighbors.append(ref.instance)
        adjacency[inst.name] = neighbors
    order: List[str] = []
    visited = set()
    for seed_name in adjacency:
        if seed_name in visited:
            continue
        stack = [seed_name]
        visited.add(seed_name)
        while stack:
            name = stack.pop()
            order.append(name)
            # reversed: visit the first-inserted neighbor first
            for nb in reversed(adjacency.get(name, ())):
                if nb not in visited and nb in adjacency:
                    visited.add(nb)
                    stack.append(nb)
    return order


def size_core(
    netlist: Netlist, technology: Technology, spec: GlobalPlacementSpec
) -> tuple:
    """Choose (num_rows, sites_per_row) for the requested utilization."""
    if spec.num_rows is not None and spec.sites_per_row is not None:
        return spec.num_rows, spec.sites_per_row
    cell_sites = sum(i.width_sites for i in netlist.functional_instances())
    total_sites = max(int(cell_sites / spec.target_utilization), 1)
    # Square core in µm: sites_per_row * site_w ≈ aspect * rows * row_h.
    ratio = technology.row_height / technology.site_width * spec.aspect
    rows = max(int(math.sqrt(total_sites / ratio)), 1)
    sites_per_row = max(int(math.ceil(total_sites / rows)), 1)
    # Make sure the widest cell fits.
    widest = max(
        (i.width_sites for i in netlist.functional_instances()), default=1
    )
    sites_per_row = max(sites_per_row, widest)
    return rows, sites_per_row


def _scatter_gaps(
    rng: np.random.Generator, free: int, slots: int, packing: float
) -> List[int]:
    """Split ``free`` sites into ``slots`` gaps plus a row-end remainder.

    With ``packing`` → 1, everything lands in the final gap (row end).
    """
    if slots <= 0:
        return []
    end_share = int(round(free * packing))
    scatter = free - end_share
    if scatter > 0 and slots > 1:
        weights = rng.random(slots - 1) + 0.05
        weights /= weights.sum()
        gaps = [int(x) for x in np.floor(weights * scatter)]
        # distribute rounding remainder deterministically
        remainder = scatter - sum(gaps)
        for k in range(remainder):
            gaps[k % len(gaps)] += 1
    else:
        gaps = [0] * max(slots - 1, 0)
        end_share = free
    gaps.append(end_share)
    return gaps


def global_place(
    netlist: Netlist,
    technology: Technology,
    spec: GlobalPlacementSpec = GlobalPlacementSpec(),
) -> Layout:
    """Build a placed :class:`Layout` for ``netlist``.

    Raises:
        PlacementError: When the fixed core cannot hold the design.
    """
    rng = np.random.default_rng(spec.seed)
    num_rows, sites_per_row = size_core(netlist, technology, spec)
    layout = Layout(netlist, technology, num_rows=num_rows, sites_per_row=sites_per_row)

    cluster = [n for n in spec.clustered if netlist.has_instance(n)]
    if cluster:
        _place_cluster_block(layout, cluster, rng, spec.cluster_density)

    placed_already = set(cluster)
    order = [n for n in connectivity_order(netlist) if n not in placed_already]
    widths = {name: netlist.instance(name).width_sites for name in order}
    total_cell_sites = sum(widths.values())

    # Per-row capacity after the cluster block (full rows when no cluster).
    capacity = [layout.occupancy[r].free_sites() for r in range(num_rows)]
    if total_cell_sites > sum(capacity):
        raise PlacementError(
            f"core too small: {total_cell_sites} cell sites > "
            f"{sum(capacity)} free core sites"
        )

    # Partition the ordering into rows with a dynamically rebalanced
    # budget proportional to each row's remaining capacity, so the
    # per-row overshoot (a row only closes after exceeding its budget)
    # cannot accumulate into an underfilled final row.
    row_groups: List[List[str]] = [[] for _ in range(num_rows)]
    row_fill = [0] * num_rows
    remaining_sites = total_cell_sites
    row = 0

    def row_budget(r: int, remaining: float) -> float:
        cap_left = sum(capacity[rr] for rr in range(r, num_rows))
        if cap_left <= 0:
            return 0.0
        return remaining * capacity[r] / cap_left

    budget = row_budget(0, remaining_sites)
    for name in order:
        w = widths[name]
        while row < num_rows - 1 and (
            row_fill[row] >= budget
            or row_fill[row] + w > capacity[row]
        ):
            row += 1
            budget = row_budget(row, remaining_sites)
        target = row
        if row_fill[target] + w > capacity[target]:
            target = next(
                (
                    r
                    for r in range(num_rows)
                    if row_fill[r] + w <= capacity[r]
                ),
                None,
            )
            if target is None:
                raise PlacementError("row partitioning overflow")
        row_groups[target].append(name)
        row_fill[target] += w
        remaining_sites -= w

    # Serpentine: reverse odd rows so the ordering snakes through the core.
    for r in range(1, num_rows, 2):
        row_groups[r].reverse()

    overflow: List[str] = []
    for r in range(num_rows):
        _fill_row(layout, r, row_groups[r], widths, rng, spec.packing, overflow)
    if overflow:
        # Rare rounding overflow around the cluster block: legalize the
        # stragglers near the core centre; if scattered gaps are all too
        # narrow (wide cells), compact a row to open one.
        from repro.place.legalize import legalize

        center = layout.core.center
        for name in overflow:
            try:
                legalize(layout, {name: center})
            except PlacementError:
                _compact_for(layout, name)
    assign_port_positions(layout)
    return layout


def _compact_for(layout: Layout, name: str) -> None:
    """Open a contiguous gap for ``name`` by left-compacting one row."""
    width = layout.netlist.instance(name).width_sites
    for r in range(layout.num_rows):
        occ = layout.occupancy[r]
        if occ.free_sites() < width:
            continue
        cursor = 0
        movable = [p.name for p in occ if p.name not in layout.fixed]
        if len(movable) != len(occ.placements):
            continue  # fixed cells present: skip this row
        snapshot = [(p.name, p.start) for p in occ]
        for cell_name, _ in snapshot:
            pl = layout.placement(cell_name)
            w = layout.netlist.instance(cell_name).width_sites
            if pl.start != cursor:
                layout.move_in_row(cell_name, cursor)
            cursor += w
        layout.place(name, r, cursor)
        return
    raise PlacementError(f"no row can host {name!r} even after compaction")


def _place_cluster_block(
    layout: Layout,
    names: Sequence[str],
    rng: np.random.Generator,
    density: float,
) -> None:
    """Pack ``names`` into one compact rectangular block.

    The block sits off-centre (at ~30 %/35 % of the core), square-ish in
    µm, at ``density`` local utilization — the shape a placer gives a
    register bank whose cells are tightly interconnected.
    """
    netlist = layout.netlist
    tech = layout.technology
    widths = [netlist.instance(n).width_sites for n in names]
    group_sites = sum(widths)
    block_sites = int(math.ceil(group_sites / density))
    ratio = tech.row_height / tech.site_width
    block_rows = max(int(round(math.sqrt(block_sites / ratio))), 2)
    block_rows = min(block_rows, layout.num_rows)
    block_cols = int(math.ceil(block_sites / block_rows))
    block_cols = min(block_cols, layout.sites_per_row)
    while block_rows * block_cols < group_sites and block_rows < layout.num_rows:
        block_rows += 1
    # Park the bank flush into a corner (secure-macro floorplanning
    # style): no dead channel between bank and core edge, and the
    # opposite corner is the natural sink for whatever free space the
    # hardening operators cannot fragment.
    row0 = 0
    col0 = 0

    # Serpentine the group through the block rows, scattering the slack.
    per_row = [[] for _ in range(block_rows)]
    fill = [0] * block_rows
    r = 0
    for name, w in zip(names, widths):
        while fill[r] + w > block_cols:
            r += 1
            if r >= block_rows:  # widen the block by one row if rounding bit
                per_row.append([])
                fill.append(0)
                block_rows += 1
                if row0 + block_rows > layout.num_rows:
                    row0 = layout.num_rows - block_rows
                break
        per_row[r].append((name, w))
        fill[r] += w
    for br in range(block_rows):
        if br >= len(per_row) or not per_row[br]:
            continue
        group = per_row[br] if br % 2 == 0 else list(reversed(per_row[br]))
        free = block_cols - fill[br]
        gaps = _scatter_gaps(rng, free, len(group) + 1, 0.3)
        cursor = col0
        for k, (name, w) in enumerate(group):
            cursor += gaps[k] if k < len(gaps) - 1 else 0
            layout.place(name, row0 + br, cursor)
            cursor += w


def _fill_row(
    layout: Layout,
    r: int,
    group: List[str],
    widths: Dict[str, int],
    rng: np.random.Generator,
    packing: float,
    overflow: List[str],
) -> None:
    """Lay one row's cells into its free intervals with scattered gaps."""
    if not group:
        return
    occ = layout.occupancy[r]
    segments = occ.free_intervals()
    used = sum(widths[n] for n in group)
    free = occ.free_sites() - used
    gaps = _scatter_gaps(rng, max(free, 0), len(group) + 1, packing)
    seg_idx = 0
    cursor = segments[0].lo if segments else 0
    for k, name in enumerate(group):
        w = widths[name]
        g = gaps[k] if k < len(gaps) - 1 else 0
        placed = False
        while seg_idx < len(segments):
            seg = segments[seg_idx]
            start = max(cursor, seg.lo) + g
            if start + w <= seg.hi:
                layout.place(name, r, start)
                cursor = start + w
                placed = True
                break
            # gap did not fit: try without it before moving on
            start = max(cursor, seg.lo)
            if start + w <= seg.hi:
                layout.place(name, r, start)
                cursor = start + w
                placed = True
                break
            seg_idx += 1
            if seg_idx < len(segments):
                cursor = segments[seg_idx].lo
        if not placed:
            overflow.append(name)


def refine_wirelength(
    layout: Layout,
    passes: int = 2,
    min_gain_um: float = 3.0,
) -> int:
    """Median-improvement detailed placement.

    For each movable cell whose position is far from the median of its
    connected pins, relocate it near that median.  This is the standard
    wirelength-driven cleanup pass after constructive placement; it pulls
    registers next to their logic cones and collapses straggler nets.

    Args:
        layout: Mutated in place.
        passes: Number of sweeps.
        min_gain_um: Only move cells displaced from their median by more
            than this distance (avoids churn).

    Returns:
        Total number of moves performed.
    """
    from repro.place.eco_place import _relocate, connected_median

    moves = 0
    for _ in range(passes):
        moved_this_pass = 0
        names = [n for n in list(layout.placements) if n not in layout.fixed]
        # Worst-displaced first: they free up space for the rest.
        scored = []
        for name in names:
            m = connected_median(layout, name)
            if m is None:
                continue
            d = layout.cell_center(name).manhattan_distance(m)
            if d > min_gain_um:
                scored.append((d, name, m))
        scored.sort(reverse=True)
        for _, name, target in scored:
            disp = _relocate(layout, [], name, target, row_search_radius=6)
            if disp is not None and disp > 0:
                moved_this_pass += 1
        moves += moved_this_pass
        if moved_this_pass == 0:
            break
    return moves


def assign_port_positions(layout: Layout) -> None:
    """Spread the design's ports evenly around the core boundary."""
    core = layout.core
    ports = list(layout.netlist.ports)
    if not ports:
        return
    perimeter = 2 * (core.width + core.height)
    step = perimeter / len(ports)
    for k, port in enumerate(ports):
        d = k * step
        if d < core.width:
            p = Point(d, 0.0)
        elif d < core.width + core.height:
            p = Point(core.width, d - core.width)
        elif d < 2 * core.width + core.height:
            p = Point(2 * core.width + core.height - d, core.height)
        else:
            p = Point(0.0, perimeter - d)
        layout.port_positions[port.name] = p
