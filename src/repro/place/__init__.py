"""Placement engines: initial placement, legalization, incremental ECO."""

from repro.place.density import DensityMap
from repro.place.legalize import legalize
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.place.eco_place import EcoPlacementReport, eco_place

__all__ = [
    "DensityMap",
    "legalize",
    "GlobalPlacementSpec",
    "global_place",
    "EcoPlacementReport",
    "eco_place",
]
