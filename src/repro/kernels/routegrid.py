"""Vectorized track-usage / overflow accounting over the gcell grid.

The router's hot loops walk gcell lists cell-by-cell: committing demand,
probing worst congestion along a candidate segment, and scanning routed
segments against overflow masks.  Every gcell list produced by
``_gcell_line`` is a contiguous straight run, so these all collapse to
numpy slice operations.  :func:`as_span` recovers the run (and returns
``None`` for a non-contiguous list, falling back to the scalar loop, so
correctness never depends on the contiguity assumption).

Bitwise equality: slice ``+=`` touches each cell exactly once like the
scalar loop; the congestion ratio ``(use + demand) / cap`` (``inf`` where
``cap <= 0``) is the same elementwise IEEE division, and max/any
reductions are order-independent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: (horizontal, lo, hi, fixed) — cells (lo..hi, fixed) or (fixed, lo..hi).
Span = Tuple[bool, int, int, int]


def as_span(gcells: Sequence[Tuple[int, int]]) -> Optional[Span]:
    """Recover the contiguous straight run of a gcell list, if it is one."""
    n = len(gcells)
    if n == 0:
        return None
    x0, y0 = gcells[0]
    x1, y1 = gcells[-1]
    if y0 == y1 and x1 - x0 + 1 == n:
        return (True, x0, x1, y0)
    if x0 == x1 and y1 - y0 + 1 == n:
        return (False, y0, y1, x0)
    return None


def line_congestion_general(
    c: np.ndarray, u: np.ndarray, demand: float
) -> float:
    """Worst ``(u + demand) / c`` over pre-sliced bins (inf on cap<=0)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = (u + demand) / c
    if np.any(c <= 0):
        ratio = np.where(c > 0, ratio, np.inf)
    return float(ratio.max(initial=0.0))


def apply_line(
    use: np.ndarray,
    horizontal: bool,
    lo: int,
    hi: int,
    fixed: int,
    delta: float,
) -> None:
    """Add ``delta`` tracks along a straight run (one touch per cell)."""
    if horizontal:
        use[lo : hi + 1, fixed] += delta
    else:
        use[fixed, lo : hi + 1] += delta


def segment_hits(
    mask: np.ndarray, layer: int, gcells: Sequence[Tuple[int, int]]
) -> bool:
    """Whether any of a segment's cells is set in a (K, nx, ny) bool mask."""
    m = mask[layer - 1]
    span = as_span(gcells)
    if span is None:
        return any(m[ix, iy] for ix, iy in gcells)
    horizontal, lo, hi, fixed = span
    if horizontal:
        return bool(m[lo : hi + 1, fixed].any())
    return bool(m[fixed, lo : hi + 1].any())


def route_worst_ratio(
    capacity: np.ndarray, usage: np.ndarray, segments: Sequence
) -> float:
    """Worst use/cap ratio over a route's segments (cap<=0 cells skipped).

    Matches ``RoutingResult.congestion_factor``'s scalar accumulation.
    """
    worst = 0.0
    for seg in segments:
        layer = seg.layer - 1
        span = as_span(seg.gcells)
        if span is None:
            cap = capacity[layer]
            use = usage[layer]
            for ix, iy in seg.gcells:
                c = cap[ix, iy]
                if c > 0:
                    worst = max(worst, use[ix, iy] / c)
            continue
        horizontal, lo, hi, fixed = span
        if horizontal:
            c = capacity[layer, lo : hi + 1, fixed]
            u = usage[layer, lo : hi + 1, fixed]
        else:
            c = capacity[layer, fixed, lo : hi + 1]
            u = usage[layer, fixed, lo : hi + 1]
        valid = c > 0
        if valid.any():
            worst = max(worst, float((u[valid] / c[valid]).max()))
    return worst


def victims_of(
    mask: np.ndarray, routes: dict
) -> List[str]:
    """Nets with at least one segment crossing a set cell of ``mask``."""
    victims: List[str] = []
    for name, route in routes.items():
        for seg in route.segments:
            if segment_hits(mask, seg.layer, seg.gcells):
                victims.append(name)
                break
    return victims
