"""Vectorized legal-start search for the Tetris legalizer.

The scalar ``_best_start_in_row`` enumerates free gaps, subtracts the
budget-forbidden intervals with interval algebra, and clamps the target
into each surviving piece.  This kernel evaluates the same search on a
site bitmap: ``allowed[s]`` holds exactly when sites ``[s, s+width)`` are
all free (a window-sum over a cached free-site cumsum) and no blockage
budget forbids ``s`` (raw budget intervals marked with one difference
array — no merge needed, the coverage union is the same set).

Bitwise-equality argument: a full free window necessarily lies inside one
maximal gap, so the allowed set equals the union of the scalar pieces.
Within a piece the integer cost ``|s − target|`` has a unique minimum (the
clamp point the scalar picks); across pieces the scalar's first-strict-min
over non-decreasing candidates resolves ties toward the smaller start,
and ``np.argmin`` over ascending allowed indices does the same.

Caching: the legalizer probes the same rows over and over while the state
mutates only one row (and a couple of budgets) per placement.  The kernel
therefore caches the *allowed start index array* per ``(row, width)``,
keyed on the row occupancy's mutation ``version`` and a per-row budget
epoch — bumped only for rows covered by a budget whose ``used`` counter
actually moved (all mutations flow through
:class:`~repro.place.budget.BudgetSet`'s versioned commit/release).  A
cache hit reduces the whole row search to one ``argmin``.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.layout.rows import RowOccupancy

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.geometry import Point
    from repro.layout.layout import Layout
    from repro.place.budget import BlockageBudget, BudgetSet

_FREE_CUMSUM: (
    "weakref.WeakKeyDictionary[RowOccupancy, Tuple[int, np.ndarray]]"
) = weakref.WeakKeyDictionary()


def _free_cumsum(occ: RowOccupancy) -> np.ndarray:
    """Zero-padded cumulative sum of the row's free-site bitmap (cached)."""
    cached = _FREE_CUMSUM.get(occ)
    if cached is not None and cached[0] == occ.version:
        return cached[1]
    free = np.ones(occ.row.num_sites, dtype=np.int64)
    for p in occ:
        free[p.start : p.end] = 0
    cc = np.zeros(occ.row.num_sites + 1, dtype=np.int64)
    np.cumsum(free, out=cc[1:])
    _FREE_CUMSUM[occ] = (occ.version, cc)
    return cc


#: Per-row static budget arrays: (positions, span_lo, span_hi, max_used).
_RowArrays = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class _BudgetArrays:
    """Array mirror of one :class:`BudgetSet` for the start search.

    ``used`` mirrors every budget's counter and is refreshed as one pass
    whenever the set's ``version`` has moved; rows covered by a budget
    whose counter changed get their ``row_epoch`` bumped, invalidating the
    per-``(row, width)`` allowed-start caches for exactly those rows.
    """

    __slots__ = (
        "version", "used", "rows", "budget_rows", "row_epoch", "starts",
        "index", "rects", "log_pos",
    )

    def __init__(self, budgets: "BudgetSet") -> None:
        self.version = budgets.version
        self.used = np.array(
            [b.used for b in budgets.budgets], dtype=np.int64
        )
        self.rows: Dict[int, Optional[_RowArrays]] = {}
        self.budget_rows: List[List[int]] = [
            list(b.rows) for b in budgets.budgets
        ]
        self.row_epoch: Dict[int, int] = {}
        #: (row, width) → (occ version, row epoch, allowed start indices)
        self.starts: Dict[Tuple[int, int], Tuple[int, int, np.ndarray]] = {}
        self.index: Dict[int, int] = {
            id(b): i for i, b in enumerate(budgets.budgets)
        }
        self.log_pos = len(budgets.changelog)
        #: lazily built (xlo, ylo, xhi, yhi, soft, max_used) rect arrays
        #: for the receiving-target scan.
        self.rects: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                  np.ndarray, np.ndarray]
        ] = None

    def rect_arrays(
        self, budgets: "BudgetSet"
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
               np.ndarray, np.ndarray]:
        if self.rects is None:
            rs = [b.blockage.rect for b in budgets.budgets]
            self.rects = (
                np.array([r.xlo for r in rs], dtype=np.float64),
                np.array([r.ylo for r in rs], dtype=np.float64),
                np.array([r.xhi for r in rs], dtype=np.float64),
                np.array([r.yhi for r in rs], dtype=np.float64),
                np.array(
                    [not b.blockage.is_hard for b in budgets.budgets],
                    dtype=bool,
                ),
                np.array(
                    [b.max_used for b in budgets.budgets], dtype=np.int64
                ),
            )
        return self.rects

    def refresh(self, budgets: "BudgetSet") -> None:
        if self.version == budgets.version:
            return
        epochs = self.row_epoch
        index = self.index
        log = budgets.changelog
        for b in log[self.log_pos :]:
            i = index[id(b)]
            if b.used != self.used[i]:
                self.used[i] = b.used
                for row in self.budget_rows[i]:
                    epochs[row] = epochs.get(row, 0) + 1
        self.log_pos = len(log)
        self.version = budgets.version

    def row_arrays(
        self, budgets: "BudgetSet", row: int
    ) -> Optional[_RowArrays]:
        try:
            return self.rows[row]
        except KeyError:
            pass
        pos = {id(b): i for i, b in enumerate(budgets.budgets)}
        covering = [
            (pos[id(b)], b.row_span(row)) for b in budgets.row_budgets(row)
        ]
        covering = [(i, span) for i, span in covering if span is not None]
        arrays: Optional[_RowArrays] = None
        if covering:
            arrays = (
                np.array([i for i, _ in covering], dtype=np.int64),
                np.array([s.lo for _, s in covering], dtype=np.int64),
                np.array([s.hi for _, s in covering], dtype=np.int64),
                np.array(
                    [budgets.budgets[i].max_used for i, _ in covering],
                    dtype=np.int64,
                ),
            )
        self.rows[row] = arrays
        return arrays


_BUDGET_CACHE: "weakref.WeakKeyDictionary[BudgetSet, _BudgetArrays]" = (
    weakref.WeakKeyDictionary()
)


def _mask_forbidden(
    allowed: np.ndarray,
    arrays: _RowArrays,
    used: np.ndarray,
    width: int,
    num_sites: int,
) -> None:
    """Clear the starts each budget forbids (same bounds as the scalar)."""
    positions, span_lo, span_hi, max_used = arrays
    n_starts = allowed.shape[0]
    h = max_used - used[positions]
    np.maximum(h, 0, out=h)
    sel = h < width
    if not sel.any():
        return
    lo = np.maximum(span_lo[sel] - width + h[sel] + 1, 0)
    hi = np.minimum(span_hi[sel] - h[sel], min(num_sites, n_starts))
    keep = hi > lo
    if not keep.any():
        return
    # Mark all forbidden intervals at once with a difference array —
    # coverage > 0 exactly where some interval covers the start.
    diff = np.zeros(n_starts + 1, dtype=np.int64)
    np.add.at(diff, lo[keep], 1)
    np.add.at(diff, hi[keep], -1)
    allowed &= np.cumsum(diff[:-1]) == 0


def _allowed_starts(
    layout: "Layout",
    budgets: "BudgetSet | List[BlockageBudget]",
    row: int,
    width: int,
) -> Optional[np.ndarray]:
    """Ascending indices of every legal start in ``row`` (None when none)."""
    occ = layout.occupancy[row]
    num_sites = occ.row.num_sites
    if width > num_sites:
        return None

    mirror: Optional[_BudgetArrays] = None
    key = (row, width)
    if hasattr(budgets, "row_budgets"):
        mirror = _BUDGET_CACHE.get(budgets)
        if mirror is None:
            mirror = _BudgetArrays(budgets)
            _BUDGET_CACHE[budgets] = mirror
        mirror.refresh(budgets)
        epoch = mirror.row_epoch.get(row, 0)
        cached = mirror.starts.get(key)
        if (
            cached is not None
            and cached[0] == occ.version
            and cached[1] == epoch
        ):
            return cached[2]

    cc = _free_cumsum(occ)
    # allowed[s] ⇔ all of [s, s+width) free; length num_sites - width + 1.
    allowed = (cc[width:] - cc[:-width]) == width
    if allowed.any():
        if mirror is not None:
            arrays = mirror.row_arrays(budgets, row)
            if arrays is not None:
                _mask_forbidden(allowed, arrays, mirror.used, width, num_sites)
        else:
            _mask_budget_list(allowed, budgets, row, width, num_sites)
    idx = np.nonzero(allowed)[0]
    if mirror is not None:
        mirror.starts[key] = (occ.version, epoch, idx)
    return idx


def best_start_in_row(
    layout: "Layout",
    budgets: "BudgetSet | List[BlockageBudget]",
    row: int,
    target_site: int,
    width: int,
) -> Optional[int]:
    """Drop-in for the legalizer's scalar ``_best_start_in_row``."""
    idx = _allowed_starts(layout, budgets, row, width)
    if idx is None or idx.size == 0:
        return None
    return int(idx[np.argmin(np.abs(idx - target_site))])


def receiving_target(
    layout: "Layout",
    budgets: "BudgetSet",
    source: "BlockageBudget",
    name: str,
    width: int,
    median_pt: "Point",
    attract_point: "Optional[Point]",
) -> "Point":
    """Drop-in for the ECO placer's scalar ``_receiving_target``.

    One vector pass over all budgets: the Manhattan distance is the same
    two-sided clamp ``max(lo − a, 0, a − hi)`` per axis, the cost the same
    ``d − 0.02·headroom`` float64 expression, and ``np.argmin`` resolves
    ties to the first index exactly like the scalar first-strict-min.
    """
    from repro.geometry import Point

    mirror = _BUDGET_CACHE.get(budgets)
    if mirror is None:
        mirror = _BudgetArrays(budgets)
        _BUDGET_CACHE[budgets] = mirror
    mirror.refresh(budgets)
    xlo, ylo, xhi, yhi, soft, max_used = mirror.rect_arrays(budgets)

    anchor = (
        attract_point if attract_point is not None
        else layout.cell_center(name)
    )
    headroom = (max_used - mirror.used).astype(np.float64)
    eligible = soft & (headroom >= width + 2)
    src = mirror.index.get(id(source))
    if src is not None:
        eligible[src] = False
    if not eligible.any():
        return median_pt
    dx = np.maximum(np.maximum(xlo - anchor.x, 0.0), anchor.x - xhi)
    dy = np.maximum(np.maximum(ylo - anchor.y, 0.0), anchor.y - yhi)
    cost = (dx + dy) - 0.02 * headroom
    cost[~eligible] = np.inf
    best = int(np.argmin(cost))
    rect = budgets.budgets[best].blockage.rect
    pull = attract_point if attract_point is not None else median_pt
    x = min(max(pull.x, rect.xlo), rect.xhi - 1e-6)
    y = min(max(pull.y, rect.ylo), rect.yhi - 1e-6)
    return Point(x, y)


def _mask_budget_list(
    allowed: np.ndarray,
    budgets: "List[BlockageBudget]",
    row: int,
    width: int,
    num_sites: int,
) -> None:
    """Uncached fallback for plain budget lists (tests, ad-hoc callers)."""
    n_starts = allowed.shape[0]
    for b in budgets:
        span = b.row_span(row)
        if span is None:
            continue
        h = max(b.max_used - b.used, 0)
        if h >= width:
            continue
        lo = max(span.lo - width + h + 1, 0)
        hi = min(span.hi - h, num_sites, n_starts)
        if hi > lo:
            allowed[lo:hi] = False
