"""Levelized, batched STA propagation (vector kernel).

The scalar STA walks the net graph one node at a time with dict lookups.
This kernel levelizes the (static) timing graph once per netlist and then
propagates whole levels as numpy arrays: arrivals with per-level
``np.maximum.reduceat`` over the fanin-edge candidates, required times
with ``np.minimum.reduceat`` over the fanout edges in descending level
order.

Bitwise-equality argument (vs :func:`repro.timing.sta._run_sta`):

* Every per-element formula — arc delay ``intrinsic + dr·load/1000``,
  wire delay ``r·(c/2 + c_sinks)·1e-6``, arrival candidate
  ``(at + wire) + arc``, required candidate ``(req − arc) − wire`` — is
  evaluated with the same IEEE-754 double operations in the same order;
  numpy float64 elementwise arithmetic is bit-identical to Python float
  arithmetic.
* Arrival is a max-reduction and required a min-reduction over the same
  candidate sets; max/min over floats are order-independent and exact, so
  levelized batching instead of Kahn order changes nothing.
* Absent values are carried as ∓inf sentinels; a net whose candidates are
  all sentinel stays absent from the result dicts, matching the scalar
  dict-membership semantics.

The per-netlist static structure (levels, edge groups, arc variants,
static sink loads) is cached in a :class:`weakref.WeakKeyDictionary` and
invalidated by the netlist's ``mod_count``.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.errors import TimingError
from repro.netlist.netlist import Netlist
from repro.timing.constraints import TimingConstraints
from repro.timing.delay import PORT_LOAD_FF, DelayCalculator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.layout.layout import Layout
    from repro.timing.sta import STAResult

#: Edge slice + segment slice of one level: (edge_lo, edge_hi, seg_lo, seg_hi).
_LevelSlice = Tuple[int, int, int, int]


@dataclass
class _Structure:
    """Static (per-netlist) levelized timing graph in array form."""

    mod_count: int
    names: List[str]
    csink: np.ndarray  # (N,) static sink pin load per net, fF
    # Edges sorted by (level[dst], dst) — the forward-pass order.
    e_src: np.ndarray
    e_dst: np.ndarray
    # Timing-arc variants per forward-sorted edge, flattened.
    v_intr: np.ndarray
    v_dr: np.ndarray
    v_dst: np.ndarray  # output net of each variant (load index)
    var_starts: np.ndarray  # reduceat starts, one per edge with >=1 variant
    has_var: np.ndarray  # (E,) bool
    fwd_seg_starts: np.ndarray  # reduceat starts per distinct dst
    fwd_seg_dst: np.ndarray
    fwd_levels: List[_LevelSlice]
    # Backward-pass view: edges sorted by (level[src] desc, src).
    b_src: np.ndarray
    b_dst: np.ndarray
    b_fwd_pos: np.ndarray  # forward-order position of each backward edge
    bwd_seg_starts: np.ndarray
    bwd_seg_src: np.ndarray
    bwd_levels: List[_LevelSlice]
    # Sources.
    port_src: np.ndarray  # nets driven by (non-clock) input ports
    ffq_idx: np.ndarray  # nets driven by flip-flop outputs
    ffq_intr: np.ndarray
    ffq_dr: np.ndarray
    ffq_v_net: np.ndarray  # Q net of each flattened launch-arc variant
    ffq_starts: np.ndarray
    ffq_has_var: np.ndarray
    # Endpoints (static slots; filtered by arrival membership per run).
    ff_endpoints: List[Tuple[str, int]]  # (instance, D-net index)
    port_endpoints: List[Tuple[int, List[str]]]  # (net index, port names)


_CACHE: "weakref.WeakKeyDictionary[Netlist, _Structure]" = (
    weakref.WeakKeyDictionary()
)


def _variant_arrays(
    variants: List[List[Tuple[float, float]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-item (intrinsic, drive) variant lists for reduceat."""
    counts = np.array([len(v) for v in variants], dtype=np.int64)
    intr = np.array(
        [x for vs in variants for x, _ in vs], dtype=np.float64
    )
    dr = np.array([x for vs in variants for _, x in vs], dtype=np.float64)
    offsets = np.zeros(len(variants), dtype=np.int64)
    if len(variants) > 1:
        offsets[1:] = np.cumsum(counts[:-1])
    has = counts > 0
    return intr, dr, offsets[has], has


def _level_slices(
    seg_levels: np.ndarray, seg_starts: np.ndarray, num_edges: int
) -> List[_LevelSlice]:
    """Contiguous (edge, segment) slices per distinct level, in array order."""
    slices: List[_LevelSlice] = []
    n_seg = len(seg_levels)
    slo = 0
    while slo < n_seg:
        shi = slo
        while shi < n_seg and seg_levels[shi] == seg_levels[slo]:
            shi += 1
        elo = int(seg_starts[slo])
        ehi = int(seg_starts[shi]) if shi < n_seg else num_edges
        slices.append((elo, ehi, slo, shi))
        slo = shi
    return slices


def _build_structure(netlist: Netlist) -> _Structure:
    clock_nets = netlist.clock_nets()
    names = [net.name for net in netlist.nets]
    index = {name: i for i, name in enumerate(names)}
    n = len(names)

    # --- edges, replicating _build_graph's iteration exactly ----------- #
    e_src_l: List[int] = []
    e_dst_l: List[int] = []
    e_var_l: List[List[Tuple[float, float]]] = []
    indegree = [0] * n
    adjacency: List[List[int]] = [[] for _ in range(n)]
    arc_cache: Dict[Tuple[int, str, str], List[Tuple[float, float]]] = {}
    for inst in netlist.instances:
        if inst.is_sequential or inst.is_filler:
            continue
        master = inst.master
        out_pins = [
            (p.name, inst.connections.get(p.name)) for p in master.output_pins
        ]
        for pin in master.input_pins:
            in_net = inst.connections.get(pin.name)
            if in_net is None or in_net in clock_nets:
                continue
            si = index[in_net]
            for out_pin, out_net in out_pins:
                if out_net is None:
                    continue
                di = index[out_net]
                key = (id(master), pin.name, out_pin)
                variants = arc_cache.get(key)
                if variants is None:
                    variants = [
                        (a.intrinsic_delay, a.drive_resistance)
                        for a in master.arcs
                        if a.from_pin == pin.name and a.to_pin == out_pin
                    ]
                    arc_cache[key] = variants
                adjacency[si].append(len(e_src_l))
                e_src_l.append(si)
                e_dst_l.append(di)
                e_var_l.append(variants)
                indegree[di] += 1

    # --- levelization (Kahn) + loop detection -------------------------- #
    level = [0] * n
    indeg = list(indegree)
    queue = deque(
        i for i in range(n) if indeg[i] == 0 and names[i] not in clock_nets
    )
    processed = 0
    while queue:
        u = queue.popleft()
        processed += 1
        lu1 = level[u] + 1
        for eid in adjacency[u]:
            v = e_dst_l[eid]
            if lu1 > level[v]:
                level[v] = lu1
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    data_nodes = sum(1 for name in names if name not in clock_nets)
    if processed < data_nodes:
        raise TimingError(
            f"combinational loop: {data_nodes - processed} nets unreachable"
        )

    # --- static sink loads (same summation order as sink_pin_load) ----- #
    csink = np.zeros(n, dtype=np.float64)
    for i, net in enumerate(netlist.nets):
        total = 0.0
        for ref in net.sink_pins:
            pin = netlist.instance(ref.instance).master.pin(ref.pin)
            if pin.timing is not None:
                total += pin.timing.capacitance
        total += PORT_LOAD_FF * len(net.sink_ports)
        csink[i] = total

    # --- edge orderings ------------------------------------------------ #
    num_edges = len(e_src_l)
    e_src0 = np.array(e_src_l, dtype=np.int64)
    e_dst0 = np.array(e_dst_l, dtype=np.int64)
    lev = np.array(level, dtype=np.int64)
    if num_edges:
        fwd_order = np.lexsort((e_dst0, lev[e_dst0]))
        e_src = e_src0[fwd_order]
        e_dst = e_dst0[fwd_order]
        variants_fwd = [e_var_l[i] for i in fwd_order.tolist()]
        v_intr, v_dr, var_starts, has_var = _variant_arrays(variants_fwd)
        v_dst = np.repeat(
            e_dst, np.array([len(v) for v in variants_fwd], dtype=np.int64)
        )
        seg_mask = np.empty(num_edges, dtype=bool)
        seg_mask[0] = True
        seg_mask[1:] = e_dst[1:] != e_dst[:-1]
        fwd_seg_starts = np.nonzero(seg_mask)[0]
        fwd_seg_dst = e_dst[fwd_seg_starts]
        fwd_levels = _level_slices(
            lev[fwd_seg_dst], fwd_seg_starts, num_edges
        )

        bwd_order = np.lexsort((e_src0, -lev[e_src0]))
        b_src = e_src0[bwd_order]
        b_dst = e_dst0[bwd_order]
        inv_fwd = np.empty(num_edges, dtype=np.int64)
        inv_fwd[fwd_order] = np.arange(num_edges, dtype=np.int64)
        b_fwd_pos = inv_fwd[bwd_order]
        seg_mask_b = np.empty(num_edges, dtype=bool)
        seg_mask_b[0] = True
        seg_mask_b[1:] = b_src[1:] != b_src[:-1]
        bwd_seg_starts = np.nonzero(seg_mask_b)[0]
        bwd_seg_src = b_src[bwd_seg_starts]
        bwd_levels = _level_slices(
            lev[bwd_seg_src], bwd_seg_starts, num_edges
        )
    else:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        empty_b = np.zeros(0, dtype=bool)
        e_src = e_dst = v_dst = var_starts = empty_i
        v_intr = v_dr = empty_f
        has_var = empty_b
        fwd_seg_starts = fwd_seg_dst = empty_i
        fwd_levels = []
        b_src = b_dst = b_fwd_pos = empty_i
        bwd_seg_starts = bwd_seg_src = empty_i
        bwd_levels = []

    # --- sources -------------------------------------------------------- #
    port_src_l: List[int] = []
    ffq_idx_l: List[int] = []
    ffq_vars: List[List[Tuple[float, float]]] = []
    for net in netlist.nets:
        if net.name in clock_nets:
            continue
        if net.driver_port is not None:
            port_src_l.append(index[net.name])
        elif net.driver_pin is not None:
            drv = netlist.instance(net.driver_pin.instance)
            if drv.is_sequential:
                ffq_idx_l.append(index[net.name])
                ffq_vars.append(
                    [
                        (a.intrinsic_delay, a.drive_resistance)
                        for a in drv.master.arcs
                        if a.from_pin == "CK"
                        and a.to_pin == net.driver_pin.pin
                    ]
                )
    ffq_intr, ffq_dr, ffq_starts, ffq_has_var = _variant_arrays(ffq_vars)
    ffq_idx_arr = np.array(ffq_idx_l, dtype=np.int64)
    ffq_v_net = np.repeat(
        ffq_idx_arr, np.array([len(v) for v in ffq_vars], dtype=np.int64)
    )

    # --- endpoint slots -------------------------------------------------- #
    ff_endpoints: List[Tuple[str, int]] = []
    for inst in netlist.sequential_instances():
        d_net = inst.connections.get("D")
        if d_net is None or d_net in clock_nets:
            continue
        ff_endpoints.append((inst.name, index[d_net]))
    port_endpoints: List[Tuple[int, List[str]]] = []
    for net in netlist.nets:
        if net.sink_ports:
            port_endpoints.append((index[net.name], list(net.sink_ports)))

    return _Structure(
        mod_count=netlist.mod_count,
        names=names,
        csink=csink,
        e_src=e_src,
        e_dst=e_dst,
        v_intr=v_intr,
        v_dr=v_dr,
        v_dst=v_dst,
        var_starts=var_starts,
        has_var=has_var,
        fwd_seg_starts=fwd_seg_starts,
        fwd_seg_dst=fwd_seg_dst,
        fwd_levels=fwd_levels,
        b_src=b_src,
        b_dst=b_dst,
        b_fwd_pos=b_fwd_pos,
        bwd_seg_starts=bwd_seg_starts,
        bwd_seg_src=bwd_seg_src,
        bwd_levels=bwd_levels,
        port_src=np.array(port_src_l, dtype=np.int64),
        ffq_idx=ffq_idx_arr,
        ffq_intr=ffq_intr,
        ffq_dr=ffq_dr,
        ffq_v_net=ffq_v_net,
        ffq_starts=ffq_starts,
        ffq_has_var=ffq_has_var,
        ff_endpoints=ff_endpoints,
        port_endpoints=port_endpoints,
    )


def _structure(netlist: Netlist) -> _Structure:
    cached = _CACHE.get(netlist)
    if cached is not None and cached.mod_count == netlist.mod_count:
        return cached
    built = _build_structure(netlist)
    _CACHE[netlist] = built
    return built


def _edge_delays(
    s: _Structure, load: np.ndarray, cell_derate: float
) -> np.ndarray:
    """Per-forward-edge arc delay: max over variants × derate (0 if none)."""
    edelay = np.zeros(len(s.e_src), dtype=np.float64)
    if len(s.v_intr):
        flat = s.v_intr + (s.v_dr * load[s.v_dst]) / 1000.0
        edelay[s.has_var] = (
            np.maximum.reduceat(flat, s.var_starts) * cell_derate
        )
    return edelay


def run_sta_vector(
    layout: "Layout",
    constraints: TimingConstraints,
    dc: DelayCalculator,
) -> "STAResult":
    """Setup STA, bitwise equal to the scalar ``_run_sta`` path."""
    from repro.timing.sta import EndpointSlack, STAResult

    netlist = layout.netlist
    s = _structure(netlist)
    names = s.names
    n = len(names)
    period = constraints.clock_period

    # Per-call parasitics (the only dynamic inputs).
    r = np.empty(n, dtype=np.float64)
    c = np.empty(n, dtype=np.float64)
    net_parasitics = dc.net_parasitics
    for i, name in enumerate(names):
        r[i], c[i] = net_parasitics(name)
    wire = r * (c / 2.0 + s.csink) * 1e-6
    load = c + s.csink
    edelay = _edge_delays(s, load, dc.cell_derate)

    # --- sources + forward max-propagation ----------------------------- #
    at = np.full(n, -np.inf)
    if s.port_src.size:
        at[s.port_src] = constraints.input_delay
    if s.ffq_idx.size:
        ffq_delay = np.zeros(s.ffq_idx.size, dtype=np.float64)
        if len(s.ffq_intr):
            flat = s.ffq_intr + (s.ffq_dr * load[s.ffq_v_net]) / 1000.0
            ffq_delay[s.ffq_has_var] = (
                np.maximum.reduceat(flat, s.ffq_starts) * dc.cell_derate
            )
        at[s.ffq_idx] = ffq_delay
    aw = at + wire
    for elo, ehi, slo, shi in s.fwd_levels:
        cand = aw[s.e_src[elo:ehi]] + edelay[elo:ehi]
        starts = s.fwd_seg_starts[slo:shi] - elo
        vals = np.maximum.reduceat(cand, starts)
        dsts = s.fwd_seg_dst[slo:shi]
        at[dsts] = vals
        aw[dsts] = vals + wire[dsts]

    # --- endpoints + required seeds ------------------------------------ #
    endpoints: List[EndpointSlack] = []
    req_raw = np.full(n, np.inf)
    ff_req = period - constraints.ff_setup
    port_req = period - constraints.output_delay
    neg_inf = -np.inf
    for inst_name, d in s.ff_endpoints:
        a = at[d]
        if a == neg_inf:
            continue
        endpoints.append(
            EndpointSlack(
                kind="ff_d",
                name=inst_name,
                arrival=float(a + wire[d]),
                required=ff_req,
            )
        )
        seed = ff_req - wire[d]
        if seed < req_raw[d]:
            req_raw[d] = seed
    for net_idx, port_names in s.port_endpoints:
        a = at[net_idx]
        if a == neg_inf:
            continue
        arrival_f = float(a)
        for port_name in port_names:
            endpoints.append(
                EndpointSlack(
                    kind="port",
                    name=port_name,
                    arrival=arrival_f,
                    required=port_req,
                )
            )
        if port_req < req_raw[net_idx]:
            req_raw[net_idx] = port_req

    # --- backward min-propagation (descending source level) ------------ #
    for elo, ehi, slo, shi in s.bwd_levels:
        cand = (
            req_raw[s.b_dst[elo:ehi]] - edelay[s.b_fwd_pos[elo:ehi]]
        ) - wire[s.b_src[elo:ehi]]
        starts = s.bwd_seg_starts[slo:shi] - elo
        vals = np.minimum.reduceat(cand, starts)
        srcs = s.bwd_seg_src[slo:shi]
        req_raw[srcs] = np.minimum(req_raw[srcs], vals)

    # --- result dicts (Python floats at the boundary) ------------------ #
    arrival: Dict[str, float] = {}
    has_arrival = np.nonzero(at != neg_inf)[0].tolist()
    for i in has_arrival:
        arrival[names[i]] = float(at[i])
    required: Dict[str, float] = {}
    for i in np.nonzero(req_raw != np.inf)[0].tolist():
        required[names[i]] = float(req_raw[i])
    for i in has_arrival:
        required.setdefault(names[i], period)

    return STAResult(
        arrival=arrival,
        required=required,
        endpoints=endpoints,
        constraints=constraints,
    )
