"""Numpy-vectorized evaluator kernels with scalar reference oracles.

The evaluator hot paths — STA arrival/required propagation, exploitable-
site scanning, router track accounting, and legalizer start search — each
exist in two implementations: the original scalar Python code (kept as the
reference oracle) and an array-based kernel in this package.  The kernels
are written to be **bitwise equal** to the scalar paths: they apply the
same IEEE-754 double operations in an order whose result is provably
identical (max/min reductions are order-independent; elementwise numpy
float64 arithmetic matches Python float arithmetic operation-for-
operation), so the ``tests/incremental/`` differential harness and the
``tests/kernels/`` equivalence suite pass under either selection.

Selection is dynamic via the ``REPRO_KERNELS`` environment variable:

* ``vector`` (default) — numpy kernels.
* ``scalar`` — the original per-element Python implementations.

Kernels must not own randomness: any kernel needing an RNG takes a
``numpy.random.Generator`` argument (lint rule DET103 enforces this).
"""

from __future__ import annotations

import os

from repro.errors import ReproError

#: Environment variable selecting the kernel implementation.
KERNELS_ENV = "REPRO_KERNELS"

_VALID_MODES = ("vector", "scalar")


def mode() -> str:
    """Current kernel mode (``"vector"`` or ``"scalar"``).

    Read from the environment on every call so tests and CI legs can flip
    implementations without re-importing the package.
    """
    value = os.environ.get(KERNELS_ENV, "vector").strip().lower() or "vector"
    if value not in _VALID_MODES:
        raise ReproError(
            f"{KERNELS_ENV}={value!r}: expected one of {_VALID_MODES}"
        )
    return value


def use_vector() -> bool:
    """Whether the vectorized kernels are selected."""
    return mode() == "vector"
