"""GDSII-Guard reproduction: ECO anti-Trojan layout hardening.

Reproduction of *GDSII-Guard: ECO Anti-Trojan Optimization with
Exploratory Timing-Security Trade-Offs* (DAC 2023) on a from-scratch
Python physical-design substrate.

Quickstart::

    from repro import build_design, GDSIIGuard, ParetoExplorer

    design = build_design("MISTY")
    guard = GDSIIGuard(
        design.layout, design.constraints, design.assets,
        baseline_routing=design.routing,
    )
    result = ParetoExplorer(guard).explore()
    for point in result.pareto_front:
        print(point.genome, point.objectives)

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
scripts regenerating every table and figure of the paper.
"""

from repro import obs
from repro.bench.designs import DESIGN_NAMES, BuiltDesign, build_design
from repro.bench.suite import build_suite
from repro.core.cell_shift import cell_shift
from repro.core.flow import FlowResult, GDSIIGuard
from repro.core.local_density import local_density_adjustment
from repro.core.params import FlowConfig, ParameterSpace
from repro.core.routing_width import routing_width_scaling
from repro.defenses import ba_defense, bisa_defense, icas_defense
from repro.drc.checker import check_drc
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.netlist.stats import compute_stats
from repro.optimize.explorer import ExplorationResult, ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.place.fillers import insert_fillers
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.power.power import analyze_power
from repro.route.router import global_route
from repro.security.assets import SecurityAssets, annotate_key_assets
from repro.security.exploitable import find_exploitable_regions
from repro.security.metrics import measure_security, security_score
from repro.security.trojan import TrojanSpec, attempt_insertion
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like
from repro.obs import Metrics
from repro.reporting.layout_view import layout_to_ascii
from repro.reporting.profile_report import profile_table
from repro.reporting.security_report import security_report
from repro.timing.constraints import TimingConstraints
from repro.timing.corners import Corner, run_multi_corner_sta
from repro.timing.sta import run_hold_sta, run_sta

__version__ = "1.0.0"

__all__ = [
    "obs",
    "Metrics",
    "profile_table",
    "DESIGN_NAMES",
    "BuiltDesign",
    "build_design",
    "build_suite",
    "cell_shift",
    "FlowResult",
    "GDSIIGuard",
    "local_density_adjustment",
    "FlowConfig",
    "ParameterSpace",
    "routing_width_scaling",
    "ba_defense",
    "bisa_defense",
    "icas_defense",
    "check_drc",
    "Layout",
    "Netlist",
    "compute_stats",
    "ExplorationResult",
    "ParetoExplorer",
    "NSGA2Config",
    "insert_fillers",
    "GlobalPlacementSpec",
    "global_place",
    "analyze_power",
    "global_route",
    "SecurityAssets",
    "annotate_key_assets",
    "find_exploitable_regions",
    "measure_security",
    "security_score",
    "TrojanSpec",
    "attempt_insertion",
    "nangate45_library",
    "nangate45_like",
    "layout_to_ascii",
    "security_report",
    "TimingConstraints",
    "Corner",
    "run_multi_corner_sta",
    "run_hold_sta",
    "run_sta",
]
