"""Process technology description: placement grid and metal stack.

The values shipped by :func:`nangate45_like` mirror the Nangate FreePDK45
Open Cell Library used by the paper: a 0.19 µm-wide, 1.4 µm-tall placement
site and a 10-layer metal stack with alternating preferred directions.
Electrical constants (per-µm wire resistance/capacitance) are representative
45 nm interconnect numbers; the STA and router only need their relative
scaling across layers to be right.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import TechnologyError


@dataclass(frozen=True)
class MetalLayer:
    """One routing layer of the metal stack.

    Attributes:
        name: Layer name, e.g. ``"metal3"``.
        index: 1-based layer index (1 = lowest, closest to cells).
        direction: Preferred routing direction, ``"H"`` or ``"V"``.
        track_pitch: Distance between adjacent routing tracks (µm).
        default_width: Default wire width (µm).
        unit_resistance: Wire resistance per µm at default width (Ω/µm).
        unit_capacitance: Wire capacitance per µm at default width (fF/µm).
    """

    name: str
    index: int
    direction: str
    track_pitch: float
    default_width: float
    unit_resistance: float
    unit_capacitance: float

    def __post_init__(self) -> None:
        if self.direction not in ("H", "V"):
            raise TechnologyError(
                f"layer {self.name}: direction must be 'H' or 'V', got {self.direction!r}"
            )
        if self.track_pitch <= 0 or self.default_width <= 0:
            raise TechnologyError(f"layer {self.name}: non-positive geometry")
        if self.unit_resistance <= 0 or self.unit_capacitance <= 0:
            raise TechnologyError(f"layer {self.name}: non-positive RC constants")


@dataclass(frozen=True)
class Technology:
    """A process technology: placement grid plus metal stack.

    Attributes:
        name: Human-readable technology name.
        site_width: Placement site width (µm); cell widths are multiples.
        row_height: Core row height (µm); all cells are single-row.
        layers: Metal stack ordered by index (``layers[0].index == 1``).
    """

    name: str
    site_width: float
    row_height: float
    layers: Sequence[MetalLayer] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.site_width <= 0 or self.row_height <= 0:
            raise TechnologyError("site_width and row_height must be positive")
        if not self.layers:
            raise TechnologyError("technology needs at least one metal layer")
        for i, layer in enumerate(self.layers, start=1):
            if layer.index != i:
                raise TechnologyError(
                    f"metal stack must be ordered 1..K; layer {layer.name} "
                    f"has index {layer.index} at position {i}"
                )

    @property
    def num_layers(self) -> int:
        """Number of routing layers K."""
        return len(self.layers)

    def layer(self, index: int) -> MetalLayer:
        """Return the layer with 1-based ``index``."""
        if not 1 <= index <= self.num_layers:
            raise TechnologyError(
                f"layer index {index} out of range 1..{self.num_layers}"
            )
        return self.layers[index - 1]

    def sites_to_um(self, sites: int) -> float:
        """Convert a site count to µm."""
        return sites * self.site_width

    def um_to_sites(self, um: float) -> int:
        """Convert µm to whole sites (floor)."""
        return int(um / self.site_width + 1e-9)

    def horizontal_layers(self) -> List[MetalLayer]:
        """Layers whose preferred direction is horizontal."""
        return [l for l in self.layers if l.direction == "H"]

    def vertical_layers(self) -> List[MetalLayer]:
        """Layers whose preferred direction is vertical."""
        return [l for l in self.layers if l.direction == "V"]


def nangate45_like(num_layers: int = 10) -> Technology:
    """Build the default Nangate-45nm-like technology.

    Args:
        num_layers: Size of the metal stack, K (the paper uses K = 10).

    Returns:
        A :class:`Technology` with a 0.19 × 1.4 µm site and ``num_layers``
        metal layers.  Pitch/width grow and RC-per-µm shrinks with layer
        index, as in real stacks (upper layers are fatter and faster).
    """
    if num_layers < 1:
        raise TechnologyError("num_layers must be >= 1")
    layers: List[MetalLayer] = []
    for i in range(1, num_layers + 1):
        # Lower layers: fine pitch, high RC.  Upper layers: coarse, low RC.
        tier = (i - 1) // 2  # 0,0,1,1,2,2,...
        pitch = 0.19 * (1.0 + 0.6 * tier)
        width = 0.07 * (1.0 + 0.6 * tier)
        resistance = 0.38 / (1.0 + 0.9 * tier)
        capacitance = 0.20 / (1.0 + 0.15 * tier)
        layers.append(
            MetalLayer(
                name=f"metal{i}",
                index=i,
                direction="H" if i % 2 == 1 else "V",
                track_pitch=round(pitch, 4),
                default_width=round(width, 4),
                unit_resistance=round(resistance, 5),
                unit_capacitance=round(capacitance, 5),
            )
        )
    return Technology(
        name="nangate45_like",
        site_width=0.19,
        row_height=1.4,
        layers=tuple(layers),
    )
