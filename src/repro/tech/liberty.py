"""Liberty-style timing and power characterization.

This is a deliberately small NLDM-like model: a timing arc is a linear
function ``delay = intrinsic + drive_resistance * load`` (load in fF, delay
in ns, resistance in kΩ so the units work out to ns directly).  Real
libraries use 2-D lookup tables over (input slew, output load); the linear
model keeps the same first-order behaviour — delay grows with fanout load
and wirelength — which is all the GDSII-Guard trade-off machinery observes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LibraryError


@dataclass(frozen=True)
class TimingArc:
    """A combinational (or clock-to-Q) delay arc between two cell pins.

    Attributes:
        from_pin: Input (or clock) pin name.
        to_pin: Output pin name.
        intrinsic_delay: Load-independent delay component (ns).
        drive_resistance: Slope of delay versus output load (kΩ ≡ ns/pF
            scaled so that with load in fF the product is ns/1000 · 1000).
            Concretely: ``delay_ns = intrinsic + drive_resistance * load_fF
            / 1000``.
    """

    from_pin: str
    to_pin: str
    intrinsic_delay: float
    drive_resistance: float

    def __post_init__(self) -> None:
        if self.intrinsic_delay < 0 or self.drive_resistance < 0:
            raise LibraryError(
                f"arc {self.from_pin}->{self.to_pin}: negative characterization"
            )

    def delay(self, load_ff: float) -> float:
        """Arc delay in ns for an output load of ``load_ff`` femtofarads."""
        return self.intrinsic_delay + self.drive_resistance * load_ff / 1000.0


@dataclass(frozen=True)
class PinTiming:
    """Per-input-pin electrical characterization.

    Attributes:
        capacitance: Input pin capacitance (fF) — the load this pin
            presents to its driving net.
    """

    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise LibraryError("negative pin capacitance")


@dataclass(frozen=True)
class PowerSpec:
    """Per-cell power characterization.

    Attributes:
        leakage: Static leakage power (µW).
        internal_energy: Internal energy per output toggle (fJ).
    """

    leakage: float
    internal_energy: float

    def __post_init__(self) -> None:
        if self.leakage < 0 or self.internal_energy < 0:
            raise LibraryError("negative power characterization")
