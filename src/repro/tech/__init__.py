"""Technology and standard-cell library models (Nangate-45nm-like)."""

from repro.tech.technology import MetalLayer, Technology, nangate45_like
from repro.tech.liberty import TimingArc, PinTiming, PowerSpec
from repro.tech.library import CellLibrary, Pin, PinDirection, StdCell, nangate45_library

__all__ = [
    "MetalLayer",
    "Technology",
    "nangate45_like",
    "TimingArc",
    "PinTiming",
    "PowerSpec",
    "CellLibrary",
    "Pin",
    "PinDirection",
    "StdCell",
    "nangate45_library",
]
