"""Standard-cell library model and the default Nangate-45nm-like cell set.

A :class:`StdCell` is a master: pins, width in placement sites, timing arcs
and power numbers.  :class:`CellLibrary` is a registry with convenience
queries the placer, filler defenses, and attacker all use (e.g. *smallest
functional cell* — the grain below which a free gap is unusable by an
attacker or by BISA-style filling).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LibraryError
from repro.tech.liberty import PinTiming, PowerSpec, TimingArc


class PinDirection(enum.Enum):
    """Direction of a cell pin."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Pin:
    """A pin of a standard-cell master.

    Attributes:
        name: Pin name (``"A"``, ``"ZN"``, ``"CK"``...).
        direction: :class:`PinDirection`.
        is_clock: Whether this is a clock pin of a sequential cell.
        timing: Electrical characterization for input pins (capacitance).
    """

    name: str
    direction: PinDirection
    is_clock: bool = False
    timing: Optional[PinTiming] = None

    def __post_init__(self) -> None:
        if self.direction is PinDirection.INPUT and self.timing is None:
            raise LibraryError(f"input pin {self.name} needs a PinTiming")
        if self.is_clock and self.direction is not PinDirection.INPUT:
            raise LibraryError(f"clock pin {self.name} must be an input")


@dataclass(frozen=True)
class StdCell:
    """A standard-cell master.

    Attributes:
        name: Master name, e.g. ``"NAND2_X1"``.
        width_sites: Width in placement sites (height is one row).
        pins: All pins of the cell.
        arcs: Timing arcs (empty for filler cells).
        power: Power characterization.
        is_sequential: Whether the cell is a flip-flop/latch.
        is_filler: Whether the cell is a non-functional filler.
        function: Informal function tag (``"nand2"``, ``"dff"``...).
    """

    name: str
    width_sites: int
    pins: Tuple[Pin, ...]
    arcs: Tuple[TimingArc, ...] = ()
    power: PowerSpec = PowerSpec(leakage=0.0, internal_energy=0.0)
    is_sequential: bool = False
    is_filler: bool = False
    function: str = ""

    def __post_init__(self) -> None:
        if self.width_sites < 1:
            raise LibraryError(f"{self.name}: width must be >= 1 site")
        names = [p.name for p in self.pins]
        if len(names) != len(set(names)):
            raise LibraryError(f"{self.name}: duplicate pin names")
        pin_set = set(names)
        for arc in self.arcs:
            if arc.from_pin not in pin_set or arc.to_pin not in pin_set:
                raise LibraryError(
                    f"{self.name}: arc {arc.from_pin}->{arc.to_pin} references "
                    "unknown pins"
                )

    def pin(self, name: str) -> Pin:
        """Return the pin called ``name``."""
        for p in self.pins:
            if p.name == name:
                return p
        raise LibraryError(f"{self.name}: no pin named {name!r}")

    @property
    def input_pins(self) -> List[Pin]:
        """All input pins (including clock pins)."""
        return [p for p in self.pins if p.direction is PinDirection.INPUT]

    @property
    def output_pins(self) -> List[Pin]:
        """All output pins."""
        return [p for p in self.pins if p.direction is PinDirection.OUTPUT]

    @property
    def clock_pin(self) -> Optional[Pin]:
        """The clock pin, if any."""
        for p in self.pins:
            if p.is_clock:
                return p
        return None

    def arcs_to(self, output_pin: str) -> List[TimingArc]:
        """Timing arcs ending at ``output_pin``."""
        return [a for a in self.arcs if a.to_pin == output_pin]


class CellLibrary:
    """A registry of standard-cell masters."""

    def __init__(self, name: str, cells: Iterable[StdCell] = ()) -> None:
        self.name = name
        self._cells: Dict[str, StdCell] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: StdCell) -> None:
        """Register a master; duplicate names are an error."""
        if cell.name in self._cells:
            raise LibraryError(f"duplicate cell {cell.name} in library {self.name}")
        self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())

    def cell(self, name: str) -> StdCell:
        """Look up a master by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(
                f"unknown cell {name!r} in library {self.name}"
            ) from None

    def functional_cells(self) -> List[StdCell]:
        """All non-filler masters."""
        return [c for c in self._cells.values() if not c.is_filler]

    def filler_cells(self) -> List[StdCell]:
        """All filler masters, sorted by ascending width."""
        return sorted(
            (c for c in self._cells.values() if c.is_filler),
            key=lambda c: c.width_sites,
        )

    def smallest_functional_width(self) -> int:
        """Width in sites of the narrowest functional cell.

        This is the attacker's (and BISA's) minimum usable gap: any free
        interval narrower than this cannot host logic.
        """
        cells = self.functional_cells()
        if not cells:
            raise LibraryError(f"library {self.name} has no functional cells")
        return min(c.width_sites for c in cells)

    def combinational_cells(self) -> List[StdCell]:
        """Functional cells that are not sequential."""
        return [c for c in self.functional_cells() if not c.is_sequential]


def _comb(
    name: str,
    function: str,
    inputs: Sequence[str],
    output: str,
    width: int,
    intrinsic: float,
    resistance: float,
    cap: float,
    leakage: float,
    internal: float,
) -> StdCell:
    """Build a combinational master with uniform per-input arcs."""
    pins = tuple(
        [Pin(n, PinDirection.INPUT, timing=PinTiming(capacitance=cap)) for n in inputs]
        + [Pin(output, PinDirection.OUTPUT)]
    )
    arcs = tuple(
        TimingArc(n, output, intrinsic_delay=intrinsic, drive_resistance=resistance)
        for n in inputs
    )
    return StdCell(
        name=name,
        width_sites=width,
        pins=pins,
        arcs=arcs,
        power=PowerSpec(leakage=leakage, internal_energy=internal),
        function=function,
    )


def _dff(name: str, width: int, leakage: float, internal: float) -> StdCell:
    """Build a D flip-flop master with a CK→Q arc."""
    pins = (
        Pin("D", PinDirection.INPUT, timing=PinTiming(capacitance=1.1)),
        Pin("CK", PinDirection.INPUT, is_clock=True, timing=PinTiming(capacitance=0.8)),
        Pin("Q", PinDirection.OUTPUT),
    )
    arcs = (TimingArc("CK", "Q", intrinsic_delay=0.085, drive_resistance=3.2),)
    return StdCell(
        name=name,
        width_sites=width,
        pins=pins,
        arcs=arcs,
        power=PowerSpec(leakage=leakage, internal_energy=internal),
        is_sequential=True,
        function="dff",
    )


def _filler(name: str, width: int, leakage: float) -> StdCell:
    """Build a non-functional filler master."""
    return StdCell(
        name=name,
        width_sites=width,
        pins=(),
        power=PowerSpec(leakage=leakage, internal_energy=0.0),
        is_filler=True,
        function="filler",
    )


def nangate45_library() -> CellLibrary:
    """The default cell set, shaped after the Nangate 45nm Open Cell Library.

    Delays are in ns, capacitances in fF, leakage in µW, internal energy in
    fJ per toggle.  Absolute values are representative of a 45 nm library;
    ratios between drive strengths follow the usual ~1/x resistance and
    ~x leakage scaling.
    """
    cells: List[StdCell] = [
        # name        func     inputs              out   w  intr   R     cap  leak  internal
        _comb("INV_X1", "inv", ["A"], "ZN", 2, 0.012, 3.8, 0.9, 0.10, 0.35),
        _comb("INV_X2", "inv", ["A"], "ZN", 3, 0.011, 1.9, 1.7, 0.19, 0.55),
        _comb("INV_X4", "inv", ["A"], "ZN", 4, 0.010, 1.0, 3.3, 0.38, 0.95),
        _comb("BUF_X1", "buf", ["A"], "Z", 3, 0.030, 3.4, 0.9, 0.14, 0.60),
        _comb("BUF_X2", "buf", ["A"], "Z", 4, 0.028, 1.7, 1.7, 0.26, 0.95),
        _comb("BUF_X4", "buf", ["A"], "Z", 5, 0.026, 0.9, 3.2, 0.50, 1.60),
        _comb("NAND2_X1", "nand2", ["A1", "A2"], "ZN", 3, 0.018, 3.9, 1.0, 0.16, 0.50),
        _comb("NAND2_X2", "nand2", ["A1", "A2"], "ZN", 4, 0.017, 2.0, 1.9, 0.30, 0.80),
        _comb("NAND3_X1", "nand3", ["A1", "A2", "A3"], "ZN", 4, 0.023, 4.3, 1.1, 0.23, 0.70),
        _comb("NOR2_X1", "nor2", ["A1", "A2"], "ZN", 3, 0.020, 4.6, 1.1, 0.17, 0.55),
        _comb("NOR3_X1", "nor3", ["A1", "A2", "A3"], "ZN", 4, 0.027, 5.2, 1.2, 0.24, 0.75),
        _comb("AND2_X1", "and2", ["A1", "A2"], "ZN", 4, 0.033, 3.7, 1.0, 0.20, 0.80),
        _comb("OR2_X1", "or2", ["A1", "A2"], "ZN", 4, 0.035, 3.8, 1.0, 0.20, 0.80),
        _comb("XOR2_X1", "xor2", ["A", "B"], "Z", 5, 0.042, 4.4, 1.9, 0.33, 1.30),
        _comb("XNOR2_X1", "xnor2", ["A", "B"], "ZN", 5, 0.042, 4.4, 1.9, 0.33, 1.30),
        _comb("AOI21_X1", "aoi21", ["A", "B1", "B2"], "ZN", 4, 0.026, 4.7, 1.1, 0.21, 0.70),
        _comb("OAI21_X1", "oai21", ["A", "B1", "B2"], "ZN", 4, 0.026, 4.7, 1.1, 0.21, 0.70),
        _comb("MUX2_X1", "mux2", ["A", "B", "S"], "Z", 6, 0.050, 4.1, 1.4, 0.36, 1.50),
        _dff("DFF_X1", 12, leakage=0.55, internal=3.20),
        _dff("DFF_X2", 14, leakage=0.95, internal=4.10),
        _filler("FILLCELL_X1", 1, leakage=0.008),
        _filler("FILLCELL_X2", 2, leakage=0.015),
        _filler("FILLCELL_X4", 4, leakage=0.028),
        _filler("FILLCELL_X8", 8, leakage=0.050),
    ]
    return CellLibrary(name="nangate45_like", cells=cells)
