"""Netlist statistics: the quick-look numbers of a gate-level design."""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.netlist.netlist import Netlist


@dataclass
class NetlistStats:
    """Summary statistics of one netlist.

    Attributes:
        num_instances: Total instances (including fillers).
        num_sequential: Flip-flop/latch count.
        num_nets: Net count.
        cell_histogram: Master name → instance count.
        max_fanout: Largest net fanout.
        mean_fanout: Average net fanout.
        logic_depth: Longest combinational path in gate levels
            (register/port to register/port).
    """

    num_instances: int
    num_sequential: int
    num_nets: int
    cell_histogram: Dict[str, int] = field(default_factory=dict)
    max_fanout: int = 0
    mean_fanout: float = 0.0
    logic_depth: int = 0


def compute_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for ``netlist``.

    Logic depth uses a topological level propagation over the data graph
    (clock nets excluded; sequential elements are path boundaries).
    """
    histogram = Counter(i.master.name for i in netlist.instances)
    fanouts = [n.fanout for n in netlist.nets if n.fanout > 0]

    clock_nets = netlist.clock_nets()
    # level[net] = gate levels from the nearest path start
    level: Dict[str, int] = {}
    successors: Dict[str, List] = {}
    indegree: Dict[str, int] = {}
    for net in netlist.nets:
        successors.setdefault(net.name, [])
        indegree.setdefault(net.name, 0)
    for inst in netlist.instances:
        if inst.is_sequential or inst.is_filler:
            continue
        outs = [
            inst.connections.get(p.name) for p in inst.master.output_pins
        ]
        for pin in inst.master.input_pins:
            in_net = inst.connections.get(pin.name)
            if in_net is None or in_net in clock_nets:
                continue
            for out_net in outs:
                if out_net is not None:
                    successors[in_net].append(out_net)
                    indegree[out_net] += 1
    queue = deque(
        n for n, deg in indegree.items() if deg == 0 and n not in clock_nets
    )
    for n in queue:
        level[n] = 0
    depth = 0
    while queue:
        name = queue.popleft()
        here = level.get(name, 0)
        for out in successors[name]:
            cand = here + 1
            if cand > level.get(out, -1):
                level[out] = cand
                depth = max(depth, cand)
            indegree[out] -= 1
            if indegree[out] == 0:
                queue.append(out)

    return NetlistStats(
        num_instances=netlist.num_instances,
        num_sequential=len(netlist.sequential_instances()),
        num_nets=netlist.num_nets,
        cell_histogram=dict(histogram),
        max_fanout=max(fanouts, default=0),
        mean_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        logic_depth=depth,
    )
