"""Gate-level structural netlist: instances, nets, ports.

The netlist is the *logical* view of a design; placement lives in
:mod:`repro.layout`.  A :class:`Net` connects exactly one driver (an
instance output pin or an input port) to any number of sinks (instance
input pins or output ports).  The GDSII-Guard threat model forbids the
attacker from modifying existing connectivity, so the netlist object keeps
an explicit modification counter that layout operators assert unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import NetlistError
from repro.tech.library import CellLibrary, PinDirection, StdCell


class PortDirection(enum.Enum):
    """Direction of a top-level port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Port:
    """A top-level I/O port of the design."""

    name: str
    direction: PortDirection
    is_clock: bool = False


@dataclass(frozen=True)
class PinRef:
    """A reference to one instance pin: ``(instance_name, pin_name)``."""

    instance: str
    pin: str

    def __str__(self) -> str:
        return f"{self.instance}/{self.pin}"


class Net:
    """A signal net: one driver, many sinks.

    Attributes:
        name: Net name, unique within the netlist.
        driver_pin: Driving instance pin, if driven by an instance.
        driver_port: Driving input port, if driven from the boundary.
        sink_pins: Instance input pins listening to the net.
        sink_ports: Output ports listening to the net.
    """

    __slots__ = ("name", "driver_pin", "driver_port", "sink_pins", "sink_ports")

    def __init__(self, name: str) -> None:
        self.name = name
        self.driver_pin: Optional[PinRef] = None
        self.driver_port: Optional[str] = None
        self.sink_pins: List[PinRef] = []
        self.sink_ports: List[str] = []

    @property
    def has_driver(self) -> bool:
        """Whether the net has any driver."""
        return self.driver_pin is not None or self.driver_port is not None

    @property
    def num_sinks(self) -> int:
        """Total number of sinks (pins plus ports)."""
        return len(self.sink_pins) + len(self.sink_ports)

    @property
    def fanout(self) -> int:
        """Alias for :attr:`num_sinks`."""
        return self.num_sinks

    def __repr__(self) -> str:
        return f"Net({self.name!r}, driver={self.driver_pin or self.driver_port}, fanout={self.fanout})"


class Instance:
    """A placed-or-placeable occurrence of a standard-cell master.

    Attributes:
        name: Instance name, unique within the netlist.
        master: The :class:`~repro.tech.library.StdCell` this instantiates.
        connections: Pin name → net name for every connected pin.

    Whether an instance may be moved by placement operators is a *layout*
    property (see :attr:`repro.layout.Layout.fixed`), not a netlist one.
    """

    __slots__ = ("name", "master", "connections")

    def __init__(self, name: str, master: StdCell) -> None:
        self.name = name
        self.master = master
        self.connections: Dict[str, str] = {}

    @property
    def is_sequential(self) -> bool:
        """Whether the master is a flip-flop/latch."""
        return self.master.is_sequential

    @property
    def is_filler(self) -> bool:
        """Whether the master is a non-functional filler."""
        return self.master.is_filler

    @property
    def width_sites(self) -> int:
        """Master width in placement sites."""
        return self.master.width_sites

    def net_of(self, pin_name: str) -> Optional[str]:
        """Net connected to ``pin_name``, or ``None``."""
        return self.connections.get(pin_name)

    def __repr__(self) -> str:
        return f"Instance({self.name!r}, {self.master.name})"


class Netlist:
    """A flat gate-level netlist.

    Construction is incremental: add ports, add instances, create nets,
    connect pins.  :meth:`validate` checks global consistency; generators
    and readers call it before handing the netlist to the layout substrate.
    """

    def __init__(self, name: str, library: CellLibrary) -> None:
        self.name = name
        self.library = library
        self._instances: Dict[str, Instance] = {}
        self._nets: Dict[str, Net] = {}
        self._ports: Dict[str, Port] = {}
        #: bumped on every structural mutation; layout operators assert
        #: this is unchanged to enforce the threat model's "no netlist
        #: modification" rule.
        self.mod_count = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_port(self, name: str, direction: PortDirection, is_clock: bool = False) -> Port:
        """Declare a top-level port."""
        if name in self._ports:
            raise NetlistError(f"duplicate port {name!r}")
        port = Port(name=name, direction=direction, is_clock=is_clock)
        self._ports[name] = port
        self.mod_count += 1
        return port

    def add_instance(self, name: str, master: str | StdCell) -> Instance:
        """Instantiate ``master`` (by name or object) as ``name``."""
        if name in self._instances:
            raise NetlistError(f"duplicate instance {name!r}")
        cell = master if isinstance(master, StdCell) else self.library.cell(master)
        inst = Instance(name, cell)
        self._instances[name] = inst
        self.mod_count += 1
        return inst

    def add_net(self, name: str) -> Net:
        """Create an empty net."""
        if name in self._nets:
            raise NetlistError(f"duplicate net {name!r}")
        net = Net(name)
        self._nets[name] = net
        self.mod_count += 1
        return net

    def connect(self, instance_name: str, pin_name: str, net_name: str) -> None:
        """Attach instance pin to net, respecting pin direction."""
        inst = self.instance(instance_name)
        net = self.net(net_name)
        pin = inst.master.pin(pin_name)
        if pin_name in inst.connections:
            raise NetlistError(f"pin {instance_name}/{pin_name} already connected")
        ref = PinRef(instance_name, pin_name)
        if pin.direction is PinDirection.OUTPUT:
            if net.has_driver:
                raise NetlistError(
                    f"net {net_name!r} already driven; cannot add driver {ref}"
                )
            net.driver_pin = ref
        else:
            net.sink_pins.append(ref)
        inst.connections[pin_name] = net_name
        self.mod_count += 1

    def connect_port(self, port_name: str, net_name: str) -> None:
        """Attach a top-level port to a net."""
        port = self.port(port_name)
        net = self.net(net_name)
        if port.direction is PortDirection.INPUT:
            if net.has_driver:
                raise NetlistError(
                    f"net {net_name!r} already driven; cannot add port {port_name}"
                )
            net.driver_port = port_name
        else:
            net.sink_ports.append(port_name)
        self.mod_count += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def instance(self, name: str) -> Instance:
        """Look up an instance by name."""
        try:
            return self._instances[name]
        except KeyError:
            raise NetlistError(f"unknown instance {name!r}") from None

    def net(self, name: str) -> Net:
        """Look up a net by name."""
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(f"unknown net {name!r}") from None

    def port(self, name: str) -> Port:
        """Look up a port by name."""
        try:
            return self._ports[name]
        except KeyError:
            raise NetlistError(f"unknown port {name!r}") from None

    def has_instance(self, name: str) -> bool:
        """Whether an instance called ``name`` exists."""
        return name in self._instances

    @property
    def instances(self) -> Iterator[Instance]:
        """Iterate over all instances."""
        return iter(self._instances.values())

    @property
    def nets(self) -> Iterator[Net]:
        """Iterate over all nets."""
        return iter(self._nets.values())

    @property
    def ports(self) -> Iterator[Port]:
        """Iterate over all ports."""
        return iter(self._ports.values())

    @property
    def num_instances(self) -> int:
        """Number of instances."""
        return len(self._instances)

    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self._nets)

    @property
    def num_ports(self) -> int:
        """Number of ports."""
        return len(self._ports)

    def instance_names(self) -> List[str]:
        """All instance names, in insertion order."""
        return list(self._instances.keys())

    def sequential_instances(self) -> List[Instance]:
        """All flip-flop/latch instances."""
        return [i for i in self._instances.values() if i.is_sequential]

    def functional_instances(self) -> List[Instance]:
        """All non-filler instances."""
        return [i for i in self._instances.values() if not i.is_filler]

    def clock_nets(self) -> Set[str]:
        """Names of nets driven by clock input ports."""
        result: Set[str] = set()
        for net in self._nets.values():
            if net.driver_port is not None and self._ports[net.driver_port].is_clock:
                result.add(net.name)
        return result

    def fanin_instances(self, instance_name: str) -> List[str]:
        """Names of instances driving the inputs of ``instance_name``."""
        inst = self.instance(instance_name)
        result: List[str] = []
        for pin_name, net_name in inst.connections.items():
            if inst.master.pin(pin_name).direction is PinDirection.INPUT:
                drv = self._nets[net_name].driver_pin
                if drv is not None:
                    result.append(drv.instance)
        return result

    def fanout_instances(self, instance_name: str) -> List[str]:
        """Names of instances fed by the outputs of ``instance_name``."""
        inst = self.instance(instance_name)
        result: List[str] = []
        for pin_name, net_name in inst.connections.items():
            if inst.master.pin(pin_name).direction is PinDirection.OUTPUT:
                for sink in self._nets[net_name].sink_pins:
                    result.append(sink.instance)
        return result

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check global consistency; raise :class:`NetlistError` on failure.

        Rules: every net has a driver and at least one sink (single-pin
        nets are malformed), every functional instance has all pins
        connected, and every referenced name resolves.
        """
        for net in self._nets.values():
            if not net.has_driver:
                raise NetlistError(f"net {net.name!r} has no driver")
            if net.num_sinks == 0:
                raise NetlistError(f"net {net.name!r} has no sinks")
            for ref in [net.driver_pin, *net.sink_pins]:
                if ref is None:
                    continue
                if ref.instance not in self._instances:
                    raise NetlistError(f"net {net.name!r} references {ref}")
        for inst in self._instances.values():
            if inst.is_filler:
                continue
            for pin in inst.master.pins:
                if pin.name not in inst.connections:
                    raise NetlistError(
                        f"instance {inst.name!r} pin {pin.name!r} unconnected"
                    )

    def copy(self) -> "Netlist":
        """Deep structural copy (shared library, fresh everything else).

        Used by design-time defenses (BISA/Ba) that legitimately append
        logic: they extend a *copy*, leaving the original design intact.
        """
        other = Netlist(self.name, self.library)
        for port in self._ports.values():
            other.add_port(port.name, port.direction, is_clock=port.is_clock)
        for net in self._nets.values():
            other.add_net(net.name)
        for inst in self._instances.values():
            other.add_instance(inst.name, inst.master)
        for inst in self._instances.values():
            for pin_name, net_name in inst.connections.items():
                other.connect(inst.name, pin_name, net_name)
        for net in self._nets.values():
            if net.driver_port is not None:
                other.connect_port(net.driver_port, net.name)
            for port_name in net.sink_ports:
                other.connect_port(port_name, net.name)
        return other

    def signature(self) -> Tuple[int, int, int, int]:
        """A cheap structural fingerprint: (insts, nets, ports, mod_count).

        Layout operators snapshot this before and after to prove they did
        not touch the logical design.
        """
        return (len(self._instances), len(self._nets), len(self._ports), self.mod_count)
