"""Gate-level structural netlist model."""

from repro.netlist.netlist import Instance, Net, Netlist, PinRef, Port, PortDirection
from repro.netlist.verilog import read_structural_verilog, write_structural_verilog

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "PinRef",
    "Port",
    "PortDirection",
    "read_structural_verilog",
    "write_structural_verilog",
]
