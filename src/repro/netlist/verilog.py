"""Minimal structural-Verilog serialization for :class:`Netlist`.

Supports exactly the subset the generators emit: one flat module, wire
declarations, and named-port-association instantiations.  This is enough
to round-trip every benchmark design and to hand layouts to external
viewers; it is not a general Verilog parser.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import SerializationError
from repro.netlist.netlist import Netlist, PortDirection
from repro.tech.library import CellLibrary

_IDENT = r"[A-Za-z_][A-Za-z0-9_\$\[\]\.]*"
_INSTANCE_RE = re.compile(
    rf"^\s*(?P<master>{_IDENT})\s+(?P<name>{_IDENT})\s*\((?P<conns>.*)\)\s*;\s*$"
)
_CONN_RE = re.compile(rf"\.(?P<pin>{_IDENT})\s*\(\s*(?P<net>{_IDENT})\s*\)")


def write_structural_verilog(netlist: Netlist) -> str:
    """Render ``netlist`` as flat structural Verilog text."""
    lines: List[str] = []
    port_names = [p.name for p in netlist.ports]
    lines.append(f"module {netlist.name} ({', '.join(port_names)});")
    for port in netlist.ports:
        kw = "input" if port.direction is PortDirection.INPUT else "output"
        lines.append(f"  {kw} {port.name};")
    for net in netlist.nets:
        if net.name not in {p.name for p in netlist.ports}:
            lines.append(f"  wire {net.name};")
    for inst in netlist.instances:
        conns = ", ".join(
            f".{pin}({net})" for pin, net in sorted(inst.connections.items())
        )
        lines.append(f"  {inst.master.name} {inst.name} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def read_structural_verilog(text: str, library: CellLibrary) -> Netlist:
    """Parse text produced by :func:`write_structural_verilog`.

    Port nets are created implicitly (a port and its net share a name, as
    the writer emits them).  Raises :class:`SerializationError` on any
    construct outside the supported subset.
    """
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith("module "):
        raise SerializationError("expected 'module' header")
    header = lines[0]
    m = re.match(rf"module\s+(?P<name>{_IDENT})\s*\((?P<ports>.*)\)\s*;", header)
    if not m:
        raise SerializationError(f"malformed module header: {header!r}")
    netlist = Netlist(m.group("name"), library)

    port_dirs: Dict[str, PortDirection] = {}
    instances: List[re.Match] = []
    wires: List[str] = []
    for line in lines[1:]:
        if line == "endmodule":
            break
        if line.startswith("input "):
            name = line[len("input ") :].rstrip(";").strip()
            port_dirs[name] = PortDirection.INPUT
        elif line.startswith("output "):
            name = line[len("output ") :].rstrip(";").strip()
            port_dirs[name] = PortDirection.OUTPUT
        elif line.startswith("wire "):
            wires.append(line[len("wire ") :].rstrip(";").strip())
        else:
            inst = _INSTANCE_RE.match(line)
            if not inst:
                raise SerializationError(f"unsupported construct: {line!r}")
            instances.append(inst)

    for name, direction in port_dirs.items():
        is_clock = direction is PortDirection.INPUT and (
            name == "clk" or name.startswith("clk_") or name.endswith("_clk")
        )
        netlist.add_port(name, direction, is_clock=is_clock)
        netlist.add_net(name)
        if direction is PortDirection.INPUT:
            netlist.connect_port(name, name)
    for wire in wires:
        netlist.add_net(wire)

    for m_inst in instances:
        master = m_inst.group("master")
        name = m_inst.group("name")
        netlist.add_instance(name, master)
        for conn in _CONN_RE.finditer(m_inst.group("conns")):
            netlist.connect(name, conn.group("pin"), conn.group("net"))

    # Output ports listen to their same-named nets.
    for name, direction in port_dirs.items():
        if direction is PortDirection.OUTPUT:
            netlist.connect_port(name, name)
    return netlist
