"""Power analysis (leakage + internal + switching)."""

from repro.power.power import PowerReport, analyze_power

__all__ = ["PowerReport", "analyze_power"]
