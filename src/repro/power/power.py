"""Total-power analysis: leakage, internal, and switching components.

The paper's hard constraint is ``Power(L_opt) ≤ β_power · Power(L_base)``
on *total* power.  The model:

* **leakage** — sum of per-cell leakage (µW), including fillers.
* **internal** — per-cell internal energy × toggle rate × clock frequency.
* **switching** — ½ α C V² f over every net's wire + pin capacitance.

Activity factors: data nets toggle with ``data_activity`` (default 0.15),
the clock net with activity 1.0 (two edges per cycle → factor 2 folded in).
Units: energy fJ, capacitance fF, V volts, f GHz → power in µW, reported
in mW.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.layout.layout import Layout
from repro.timing.constraints import TimingConstraints
from repro.timing.delay import DelayCalculator

#: Supply voltage of the 45 nm process (V).
VDD = 1.1

#: Default data-net toggle activity (toggles per clock cycle).
DATA_ACTIVITY = 0.15


@dataclass(frozen=True)
class PowerReport:
    """Per-component power, all in mW.

    Attributes:
        leakage: Static leakage power.
        internal: Cell-internal dynamic power.
        switching: Net-switching dynamic power.
    """

    leakage: float
    internal: float
    switching: float

    @property
    def total(self) -> float:
        """Total power (mW)."""
        return self.leakage + self.internal + self.switching


def analyze_power(
    layout: Layout,
    constraints: TimingConstraints,
    routing: Optional[object] = None,
    data_activity: float = DATA_ACTIVITY,
) -> PowerReport:
    """Compute the power report of a placed (optionally routed) layout."""
    netlist = layout.netlist
    freq_ghz = 1.0 / constraints.clock_period
    dc = DelayCalculator(layout, routing)
    clock_nets = netlist.clock_nets()

    leakage_uw = 0.0
    internal_uw = 0.0
    for inst in netlist.instances:
        leakage_uw += inst.master.power.leakage
        if inst.is_filler:
            continue
        activity = 1.0 if inst.is_sequential else data_activity
        internal_uw += inst.master.power.internal_energy * activity * freq_ghz

    switching_uw = 0.0
    for net in netlist.nets:
        if net.num_sinks == 0:
            continue
        load_ff = dc.net_load(net)
        # clock toggles twice per cycle; data nets at the activity factor
        activity = 2.0 if net.name in clock_nets else data_activity
        energy_fj = 0.5 * load_ff * VDD * VDD
        switching_uw += energy_fj * activity * freq_ghz

    return PowerReport(
        leakage=leakage_uw / 1000.0,
        internal=internal_uw / 1000.0,
        switching=switching_uw / 1000.0,
    )
