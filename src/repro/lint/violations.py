"""Structured lint diagnostics: severities, violations, reports.

A :class:`Violation` is one rule finding with a stable rule id, a
severity, a human message, a location (ordered key/value pairs such as
``row=3, site=17``) and a fix hint.  A :class:`LintReport` aggregates the
findings of one engine run and knows how to render itself as text or JSON
and how to turn a ``--fail-on`` threshold into an exit code.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons mean "at least"."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: Union[str, "Severity"]) -> "Severity":
        """Parse a severity name (``warn``/``warning``/``error``/``info``)."""
        if isinstance(text, Severity):
            return text
        key = text.strip().lower()
        aliases = {
            "info": cls.INFO,
            "warn": cls.WARNING,
            "warning": cls.WARNING,
            "error": cls.ERROR,
        }
        if key not in aliases:
            raise ValueError(
                f"unknown severity {text!r}; choose from info/warning/error"
            )
        return aliases[key]

    def label(self) -> str:
        """Lower-case display name."""
        return self.name.lower()


@dataclass(frozen=True)
class Violation:
    """One rule finding on one design object.

    Attributes:
        rule_id: Stable rule identifier (e.g. ``"L001"``).
        severity: Finding severity (may differ from the rule default).
        message: One-line human description.
        location: Ordered ``(key, value)`` pairs locating the finding
            (row/site/instance/net/layer...).
        hint: Actionable fix hint inherited from the rule.
    """

    rule_id: str
    severity: Severity
    message: str
    location: Tuple[Tuple[str, object], ...] = ()
    hint: Optional[str] = None

    def location_dict(self) -> Dict[str, object]:
        """Location pairs as a dict (insertion-ordered)."""
        return dict(self.location)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation with stable key order."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label(),
            "message": self.message,
            "location": self.location_dict(),
            "hint": self.hint,
        }

    def format(self) -> str:
        """``[L001] error: message (row=3, site=17)``."""
        loc = ""
        if self.location:
            loc = " (" + ", ".join(f"{k}={v}" for k, v in self.location) + ")"
        return f"[{self.rule_id}] {self.severity.label()}: {self.message}{loc}"


@dataclass
class LintReport:
    """All findings of one lint run.

    Attributes:
        subject: Name of the linted design/layout.
        violations: Findings in deterministic (rule id, emission) order.
        rules_run: Ids of the rules that executed.
        rules_skipped: Rule id → reason, for rules suppressed because a
            structural dependency already failed (cascade suppression).
    """

    subject: str
    violations: List[Violation] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()
    rules_skipped: Dict[str, str] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        """Number of error-severity findings."""
        return self.count_at_least(Severity.ERROR)

    @property
    def warnings(self) -> int:
        """Number of warning-severity findings (exactly WARNING)."""
        return sum(1 for v in self.violations if v.severity is Severity.WARNING)

    @property
    def is_clean(self) -> bool:
        """Whether the run produced no findings at all."""
        return not self.violations

    def count_at_least(self, severity: Severity) -> int:
        """Findings at or above ``severity``."""
        return sum(1 for v in self.violations if v.severity >= severity)

    def rule_ids(self) -> List[str]:
        """Sorted distinct ids of the rules that fired."""
        return sorted({v.rule_id for v in self.violations})

    def by_rule(self, rule_id: str) -> List[Violation]:
        """Findings of one rule."""
        return [v for v in self.violations if v.rule_id == rule_id]

    def exit_code(self, fail_on: Union[str, Severity] = Severity.ERROR) -> int:
        """CLI exit code: 1 when findings at/above ``fail_on`` exist."""
        return 1 if self.count_at_least(Severity.parse(fail_on)) else 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation with stable key order."""
        return {
            "subject": self.subject,
            "rules_run": list(self.rules_run),
            "rules_skipped": dict(sorted(self.rules_skipped.items())),
            "counts": {
                "error": self.errors,
                "warning": self.warnings,
                "total": len(self.violations),
            },
            "violations": [v.as_dict() for v in self.violations],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize :meth:`as_dict` as JSON text."""
        return json.dumps(self.as_dict(), indent=indent)

    def format_text(self, verbose: bool = False) -> str:
        """Human-readable multi-line rendering."""
        lines: List[str] = []
        if self.is_clean:
            lines.append(
                f"{self.subject}: clean "
                f"({len(self.rules_run)} rules, 0 violations)"
            )
        else:
            for v in self.violations:
                lines.append(v.format())
                if verbose and v.hint:
                    lines.append(f"    hint: {v.hint}")
            lines.append(
                f"{self.subject}: {self.errors} error(s), "
                f"{self.warnings} warning(s) "
                f"({len(self.rules_run)} rules run)"
            )
        for rule_id, reason in sorted(self.rules_skipped.items()):
            lines.append(f"[{rule_id}] skipped: {reason}")
        return "\n".join(lines)


def merge_reports(subject: str, reports: Sequence[LintReport]) -> LintReport:
    """Concatenate several reports under one subject (used by sweeps)."""
    merged = LintReport(subject=subject)
    seen_rules: List[str] = []
    for r in reports:
        merged.violations.extend(r.violations)
        for rid in r.rules_run:
            if rid not in seen_rules:
                seen_rules.append(rid)
        for rid, reason in r.rules_skipped.items():
            merged.rules_skipped.setdefault(rid, reason)
    merged.rules_run = tuple(seen_rules)
    return merged
