"""The lint engine: run the rule catalog over a design database.

:func:`run_lint` executes the selected rules in id order, applies
cascade suppression (a derived rule is skipped once one of its declared
structural dependencies emitted an error), folds observability counters,
and returns a :class:`~repro.lint.violations.LintReport`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro import obs
from repro.layout.layout import Layout, Placement
from repro.lint.rules import LintContext, Rule, select_rules
from repro.lint.violations import LintReport, Severity


def run_lint(
    layout: Layout,
    routing: Optional[object] = None,
    assets: Optional[Sequence[str]] = None,
    reference_placements: Optional[Mapping[str, Placement]] = None,
    rules: Optional[Sequence[str]] = None,
    subject: Optional[str] = None,
    thresh_er: int = 20,
) -> LintReport:
    """Lint one layout (plus optional routing/asset context).

    Args:
        layout: The design database to analyze (never mutated).
        routing: Routing result; rules that need it are skipped without
            one (recorded in ``rules_skipped``).
        assets: Security-critical instance names for the frozen-asset
            rule.
        reference_placements: Placement each fixed cell must still hold.
        rules: Rule selectors (ids or names); ``None`` runs the whole
            catalog.
        subject: Display name for the report (defaults to the netlist
            name).
        thresh_er: Exploitable-region threshold carried into the context.

    Returns:
        The aggregated :class:`LintReport`, violations in deterministic
        (rule id, emission) order.
    """
    ctx = LintContext(
        layout=layout,
        routing=routing,
        assets=assets,
        reference_placements=reference_placements,
        thresh_er=thresh_er,
    )
    report = LintReport(subject=subject or layout.netlist.name)
    failed_rules: set = set()
    ran: list = []
    for r in select_rules(rules):
        skip_reason = _skip_reason(r, ctx, failed_rules)
        if skip_reason is not None:
            report.rules_skipped[r.rule_id] = skip_reason
            continue
        found = r.run(ctx)
        ran.append(r.rule_id)
        if any(v.severity >= Severity.ERROR for v in found):
            failed_rules.add(r.rule_id)
        report.violations.extend(found)
    report.rules_run = tuple(ran)
    obs.count("lint.runs")
    if report.violations:
        obs.count("lint.violations", len(report.violations))
        obs.count("lint.errors", report.errors)
    return report


def _skip_reason(r: Rule, ctx: LintContext, failed: set) -> Optional[str]:
    """Why ``r`` should not run, or ``None`` to run it."""
    if r.requires_routing and ctx.routing is None:
        return "no routing in context"
    broken = sorted(d for d in r.depends_on if d in failed)
    if broken:
        return (
            "suppressed: structural rule(s) "
            + ", ".join(broken)
            + " already failed"
        )
    return None
