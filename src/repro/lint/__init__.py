"""``repro.lint`` — the rule-based layout DRC/invariant analyzer.

A pluggable static-verification pass over the design database: every
invariant the GDSII-Guard operators must preserve (row legality,
blockages, frozen security assets, track capacities, netlist integrity,
gap-accounting conservation, DEF round-trip fixed point) expressed as a
:class:`~repro.lint.rules.Rule` with a stable id, a severity, and a fix
hint, emitting structured :class:`~repro.lint.violations.Violation`
diagnostics.

Entry points:

* :func:`~repro.lint.engine.run_lint` — library API;
* ``repro lint <design>`` — CLI with text/JSON output and a
  ``--fail-on`` exit-code gate;
* ``GDSIIGuard(..., check_invariants=True)`` — paranoid in-flow mode
  re-validating the layout after every ECO operator;
* the incremental/chaos test harnesses use it as their legality oracle.

The codebase-level determinism lint (AST rules over the repository's own
sources) lives in ``tools/repro_lint.py``, not here — this package lints
*designs*, that tool lints *code*.
"""

from repro.lint.engine import run_lint
from repro.lint.rules import (
    BLOCKAGE,
    CELL_OVERLAP,
    DANGLING_NET,
    DEF_ROUNDTRIP,
    FROZEN_ASSETS,
    GAP_CONSERVATION,
    PIN_CONNECTIVITY,
    PLACEMENT_BOUNDS,
    TRACK_CAPACITY,
    LintContext,
    Rule,
    all_rules,
    get_rule,
    select_rules,
)
from repro.lint.violations import LintReport, Severity, Violation, merge_reports

__all__ = [
    "run_lint",
    "LintContext",
    "Rule",
    "all_rules",
    "get_rule",
    "select_rules",
    "LintReport",
    "Severity",
    "Violation",
    "merge_reports",
    "CELL_OVERLAP",
    "PLACEMENT_BOUNDS",
    "BLOCKAGE",
    "FROZEN_ASSETS",
    "GAP_CONSERVATION",
    "DANGLING_NET",
    "PIN_CONNECTIVITY",
    "TRACK_CAPACITY",
    "DEF_ROUNDTRIP",
]
