"""The layout DRC/invariant rule catalog.

Every rule has a stable id, a default severity, a description, and a fix
hint; the registry keeps them in id order so engine output is
deterministic.  Rules receive a :class:`LintContext` (the layout plus
optional routing / security-asset / reference-placement context) and an
``emit`` callback; they never raise on a corrupt design — corruption is
what they exist to report.

Cascade suppression: derived rules (gap accounting, DEF round-trip)
declare ``depends_on`` structural rules.  When a dependency emitted an
error the derived rule is skipped — its input is already known-corrupt,
and re-diagnosing the same damage under a second id would bury the root
cause (the same reason compilers suppress cascaded errors).

Rule catalog:

========  ==================  ========  =========================================
id        name                severity  checks
========  ==================  ========  =========================================
L001      cell-overlap        error     row overlap, occupancy/placement desync
L002      placement-bounds    error     off-row/off-grid cells, master width
L003      blockage            error     hard-blockage breach; soft over-density
L004      frozen-assets       error     assets placed; fixed cells immobile
L005      gap-conservation    error     free + used sites == capacity, gap graph
N001      dangling-net        error     nets with no driver or no sinks
N002      pin-connectivity    error     multi-driven nets, unconnected pins
R001      track-capacity      warning   per-layer gcell overflow (error past DRC
                                        margin)
S001      def-roundtrip       error     DEF serialization fixed point
========  ==================  ========  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.drc.checker import OVERFLOW_MARGIN, OVERFLOW_RATIO
from repro.errors import ReproError
from repro.layout.layout import Layout, Placement
from repro.lint.violations import Severity, Violation

#: Stable rule identifiers.
CELL_OVERLAP = "L001"
PLACEMENT_BOUNDS = "L002"
BLOCKAGE = "L003"
FROZEN_ASSETS = "L004"
GAP_CONSERVATION = "L005"
DANGLING_NET = "N001"
PIN_CONNECTIVITY = "N002"
TRACK_CAPACITY = "R001"
DEF_ROUNDTRIP = "S001"

#: Tolerance for soft-blockage density comparisons (densities are ratios
#: of small integer site counts; this absorbs float division noise only).
_DENSITY_EPS = 1e-9

#: R001 warning tier: overflow the detailed router still absorbs (below
#: the DRC hard threshold) is only worth flagging once it approaches the
#: cliff.  Mild overflow — a fraction of a track, routine after a warm
#: re-route — is by the congestion model not a defect at all.
TRACK_SOFT_RATIO = 1.3
TRACK_SOFT_MARGIN = 4.0

EmitFn = Callable[..., None]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    Attributes:
        rule_id: Stable identifier (sorts the execution order).
        name: Short slug, usable as a ``--rules`` selector.
        severity: Default severity of this rule's findings.
        description: What the rule checks.
        hint: Actionable fix hint attached to findings.
        requires_routing: Skip (not fail) when no routing is in context.
        depends_on: Rule ids whose error findings suppress this rule.
    """

    rule_id: str
    name: str
    severity: Severity
    description: str
    hint: str
    check: Callable[["LintContext", EmitFn], None]
    requires_routing: bool = False
    depends_on: Tuple[str, ...] = ()

    def run(self, ctx: "LintContext") -> List[Violation]:
        """Execute the rule, returning its findings in emission order."""
        out: List[Violation] = []

        def emit(
            message: str,
            severity: Optional[Severity] = None,
            hint: Optional[str] = None,
            **location: object,
        ) -> None:
            out.append(
                Violation(
                    rule_id=self.rule_id,
                    severity=severity or self.severity,
                    message=message,
                    location=tuple(sorted(location.items())),
                    hint=hint or self.hint,
                )
            )

        self.check(ctx, emit)
        return out


@dataclass
class LintContext:
    """Everything a rule may inspect.

    Attributes:
        layout: The design database under analysis (never mutated).
        routing: Routing result for track-capacity checks (optional).
        assets: Security-critical cells for the frozen-asset rule
            (optional).
        reference_placements: Placements the fixed cells must still hold
            (optional; captured when the cells were frozen).
        thresh_er: Exploitable-region threshold carried for context-aware
            reporting (not a pass/fail input today).
    """

    layout: Layout
    routing: Optional[object] = None
    assets: Optional[Sequence[str]] = None
    reference_placements: Optional[Mapping[str, Placement]] = None
    thresh_er: int = 20


_REGISTRY: Dict[str, Rule] = {}


def rule(
    rule_id: str,
    name: str,
    severity: Severity,
    description: str,
    hint: str,
    requires_routing: bool = False,
    depends_on: Tuple[str, ...] = (),
) -> Callable[[Callable[[LintContext, EmitFn], None]], Callable]:
    """Register a check function as a lint rule."""

    def deco(fn: Callable[[LintContext, EmitFn], None]) -> Callable:
        if rule_id in _REGISTRY:
            raise ReproError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            description=description,
            hint=hint,
            check=fn,
            requires_routing=requires_routing,
            depends_on=depends_on,
        )
        return fn

    return deco


def all_rules() -> List[Rule]:
    """Every registered rule in id order."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(selector: str) -> Rule:
    """Look up one rule by id or name."""
    if selector in _REGISTRY:
        return _REGISTRY[selector]
    for r in _REGISTRY.values():
        if r.name == selector:
            return r
    raise ReproError(
        f"unknown lint rule {selector!r}; known: "
        + ", ".join(f"{r.rule_id}/{r.name}" for r in all_rules())
    )


def select_rules(selectors: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve ``--rules`` selectors (ids or names) to rules, id-ordered."""
    if not selectors:
        return all_rules()
    chosen = {get_rule(s).rule_id for s in selectors}
    return [r for r in all_rules() if r.rule_id in chosen]


# ---------------------------------------------------------------------- #
# structural placement rules
# ---------------------------------------------------------------------- #


@rule(
    CELL_OVERLAP,
    "cell-overlap",
    Severity.ERROR,
    "Cells in a row must not overlap, and the row occupancy structures "
    "must agree with the placement map (no desync, no ghosts).",
    "re-legalize the affected rows (repro.place.legalize) or rebuild the "
    "layout from its DEF; a desync means a mutation bypassed the Layout "
    "API.",
)
def _check_cell_overlap(ctx: LintContext, emit: EmitFn) -> None:
    layout = ctx.layout
    seen = 0
    for occ in layout.occupancy:
        prev_end = 0
        prev_name = ""
        for i, p in enumerate(occ.placements):
            if occ.starts[i] != p.start:
                emit(
                    f"row index desynchronized at {p.name!r}",
                    row=occ.row.index,
                    instance=p.name,
                )
            if p.start < prev_end:
                emit(
                    f"{p.name!r} overlaps {prev_name!r}",
                    row=occ.row.index,
                    site=p.start,
                    instance=p.name,
                )
            pl = layout.placements.get(p.name)
            if pl is None or pl.row != occ.row.index or pl.start != p.start:
                emit(
                    f"placement map desynchronized at {p.name!r}",
                    row=occ.row.index,
                    instance=p.name,
                )
            prev_end = max(prev_end, p.end)
            prev_name = p.name
            seen += 1
    if seen != len(layout.placements):
        ghosts = sorted(
            set(layout.placements)
            - {p.name for occ in layout.occupancy for p in occ.placements}
        )
        emit(
            f"placement map contains {len(layout.placements) - seen} "
            f"ghost entries: {ghosts[:5]}",
        )


@rule(
    PLACEMENT_BOUNDS,
    "placement-bounds",
    Severity.ERROR,
    "Every cell must sit on-grid inside its row and occupy exactly its "
    "master's width in sites.",
    "move the cell back inside the core, or fix the width bookkeeping to "
    "match the library master.",
)
def _check_placement_bounds(ctx: LintContext, emit: EmitFn) -> None:
    layout = ctx.layout
    netlist = layout.netlist
    for occ in layout.occupancy:
        for p in occ.placements:
            if p.start < 0 or p.end > occ.row.num_sites:
                emit(
                    f"{p.name!r} occupies sites [{p.start}, {p.end}) outside "
                    f"row capacity {occ.row.num_sites}",
                    row=occ.row.index,
                    instance=p.name,
                )
            if p.width < 1:
                emit(
                    f"{p.name!r} has non-positive width {p.width}",
                    row=occ.row.index,
                    instance=p.name,
                )
            if not netlist.has_instance(p.name):
                emit(
                    f"placed cell {p.name!r} does not exist in the netlist",
                    row=occ.row.index,
                    instance=p.name,
                )
                continue
            inst = netlist.instance(p.name)
            if inst.width_sites != p.width:
                emit(
                    f"{p.name!r} occupies {p.width} sites but master "
                    f"{inst.master.name} is {inst.width_sites} sites wide",
                    row=occ.row.index,
                    instance=p.name,
                )


@rule(
    BLOCKAGE,
    "blockage",
    Severity.ERROR,
    "No cell may intersect a hard placement blockage; soft blockages "
    "must keep local density at or below their cap (warning).",
    "move or re-legalize the offending cells out of the blocked region.",
)
def _check_blockage(ctx: LintContext, emit: EmitFn) -> None:
    layout = ctx.layout
    core = layout.core
    for name in sorted(layout.blockages):
        b = layout.blockages[name]
        if not core.contains_rect(b.rect):
            emit(
                f"blockage {b.name!r} extends outside the core",
                severity=Severity.WARNING,
                blockage=b.name,
            )
        if b.is_hard:
            for inst in sorted(layout.instances_in_rect(b.rect)):
                emit(
                    f"{inst!r} intersects hard blockage {b.name!r}",
                    blockage=b.name,
                    instance=inst,
                )
        else:
            density = layout.region_density(b.rect)
            if density > b.max_density + _DENSITY_EPS:
                emit(
                    f"soft blockage {b.name!r} density {density:.3f} exceeds "
                    f"cap {b.max_density:.3f}",
                    severity=Severity.WARNING,
                    blockage=b.name,
                )


@rule(
    FROZEN_ASSETS,
    "frozen-assets",
    Severity.ERROR,
    "Every security asset must exist and be placed; every fixed "
    "(frozen) cell must be placed and must not have moved from its "
    "reference placement.",
    "restore the frozen cell to its reference site — operators must "
    "route around Layout.fixed, never through it.",
)
def _check_frozen_assets(ctx: LintContext, emit: EmitFn) -> None:
    layout = ctx.layout
    for name in sorted(ctx.assets or ()):
        if not layout.netlist.has_instance(name):
            emit(f"asset {name!r} is not in the netlist", instance=name)
        elif not layout.is_placed(name):
            emit(f"asset {name!r} is not placed", instance=name)
    for name in sorted(layout.fixed):
        if not layout.is_placed(name):
            emit(f"fixed cell {name!r} is not placed", instance=name)
            continue
        if ctx.reference_placements is not None:
            ref = ctx.reference_placements.get(name)
            if ref is None:
                continue
            cur = layout.placement(name)
            if cur != ref:
                emit(
                    f"fixed cell {name!r} moved from row {ref.row} site "
                    f"{ref.start} to row {cur.row} site {cur.start}",
                    instance=name,
                    row=cur.row,
                    site=cur.start,
                )


@rule(
    GAP_CONSERVATION,
    "gap-conservation",
    Severity.ERROR,
    "Site accounting must conserve: per row, used + free sites equal the "
    "row capacity; the gap graph's total weight equals the core's free "
    "sites; the row list agrees with the occupancy structures.",
    "the occupancy bookkeeping diverged from the row geometry — rebuild "
    "the layout rather than patching counters.",
    depends_on=(CELL_OVERLAP, PLACEMENT_BOUNDS),
)
def _check_gap_conservation(ctx: LintContext, emit: EmitFn) -> None:
    layout = ctx.layout
    if len(layout.rows) != len(layout.occupancy):
        emit(
            f"{len(layout.rows)} rows but {len(layout.occupancy)} occupancy "
            "records"
        )
        return
    total_free = 0
    for row, occ in zip(layout.rows, layout.occupancy):
        if row.num_sites != occ.row.num_sites or row.index != occ.row.index:
            emit(
                f"row {row.index} geometry desynchronized from its "
                f"occupancy ({row.num_sites} vs {occ.row.num_sites} sites)",
                row=row.index,
            )
            continue
        used = occ.used_sites()
        free = sum(len(iv) for iv in occ.free_intervals())
        if used + free != row.num_sites:
            emit(
                f"row {row.index}: used {used} + free {free} != capacity "
                f"{row.num_sites}",
                row=row.index,
            )
        total_free += free
    graph_weight = sum(c.weight for c in layout.gap_graph().components())
    if graph_weight != total_free:
        emit(
            f"gap graph weight {graph_weight} != free sites {total_free}",
        )


# ---------------------------------------------------------------------- #
# netlist rules
# ---------------------------------------------------------------------- #


@rule(
    DANGLING_NET,
    "dangling-net",
    Severity.ERROR,
    "Every net must have exactly one driver and at least one sink, and "
    "every pin it references must resolve to a real instance.",
    "reconnect or remove the dangling net; single-pin nets are malformed "
    "in this netlist model.",
)
def _check_dangling_net(ctx: LintContext, emit: EmitFn) -> None:
    netlist = ctx.layout.netlist
    for net in netlist.nets:
        if not net.has_driver:
            emit(f"net {net.name!r} has no driver", net=net.name)
        if net.num_sinks == 0:
            emit(f"net {net.name!r} has no sinks", net=net.name)
        for ref in [net.driver_pin, *net.sink_pins]:
            if ref is not None and not netlist.has_instance(ref.instance):
                emit(
                    f"net {net.name!r} references missing instance "
                    f"{ref.instance!r}",
                    net=net.name,
                    instance=ref.instance,
                )


@rule(
    PIN_CONNECTIVITY,
    "pin-connectivity",
    Severity.ERROR,
    "No net may have two drivers, and every pin of a functional "
    "instance must be connected.",
    "a multi-driven net means two outputs fight; disconnect one driver. "
    "Unconnected inputs float and break timing/power analysis.",
)
def _check_pin_connectivity(ctx: LintContext, emit: EmitFn) -> None:
    netlist = ctx.layout.netlist
    for net in netlist.nets:
        if net.driver_pin is not None and net.driver_port is not None:
            emit(
                f"net {net.name!r} is multi-driven: pin {net.driver_pin} "
                f"and port {net.driver_port!r}",
                net=net.name,
            )
    for inst in netlist.instances:
        if inst.is_filler:
            continue
        for pin in inst.master.pins:
            if pin.name not in inst.connections:
                emit(
                    f"pin {inst.name}/{pin.name} is unconnected",
                    instance=inst.name,
                    pin=pin.name,
                )


# ---------------------------------------------------------------------- #
# routing rules
# ---------------------------------------------------------------------- #


@rule(
    TRACK_CAPACITY,
    "track-capacity",
    Severity.WARNING,
    "Per-layer gcell track usage should stay within capacity; overflow "
    "beyond the DRC margin (the detailed-routing absorption threshold) "
    "is an error.",
    "rip-up and re-route the congested region, or relax the RWS scale "
    "on the overflowing layer.",
    requires_routing=True,
)
def _check_track_capacity(ctx: LintContext, emit: EmitFn) -> None:
    grid = ctx.routing.grid  # type: ignore[union-attr]
    hard = np.maximum(
        grid.capacity * OVERFLOW_RATIO, grid.capacity + OVERFLOW_MARGIN
    )
    soft = np.maximum(
        grid.capacity * TRACK_SOFT_RATIO, grid.capacity + TRACK_SOFT_MARGIN
    )
    for layer, ix, iy in np.argwhere(grid.usage > soft):
        usage = float(grid.usage[layer, ix, iy])
        cap = float(grid.capacity[layer, ix, iy])
        severe = usage > float(hard[layer, ix, iy])
        emit(
            f"metal{int(layer) + 1} gcell ({int(ix)}, {int(iy)}) uses "
            f"{usage:.1f} of {cap:.1f} tracks"
            + (" (beyond DRC margin)" if severe else ""),
            severity=Severity.ERROR if severe else Severity.WARNING,
            layer=int(layer) + 1,
            gcell_x=int(ix),
            gcell_y=int(iy),
        )


# ---------------------------------------------------------------------- #
# serialization rules
# ---------------------------------------------------------------------- #


@rule(
    DEF_ROUNDTRIP,
    "def-roundtrip",
    Severity.ERROR,
    "Serializing the layout to DEF and parsing it back must reach a "
    "fixed point (identical text, identical placements).",
    "a non-idempotent DEF round trip means the writer and parser "
    "disagree — check for unescaped names or lossy formatting.",
    depends_on=(CELL_OVERLAP, PLACEMENT_BOUNDS, GAP_CONSERVATION),
)
def _check_def_roundtrip(ctx: LintContext, emit: EmitFn) -> None:
    from repro.layout.def_io import layout_from_def, layout_to_def

    layout = ctx.layout
    try:
        text = layout_to_def(layout)
        rebuilt = layout_from_def(text, layout.netlist, layout.technology)
        text2 = layout_to_def(rebuilt)
    except ReproError as exc:
        emit(f"DEF round trip failed: {exc}")
        return
    if text != text2:
        for i, (a, b) in enumerate(zip(text.splitlines(), text2.splitlines())):
            if a != b:
                emit(
                    f"DEF round trip is not a fixed point: line {i + 1} "
                    f"{a!r} became {b!r}",
                    line=i + 1,
                )
                return
        emit(
            "DEF round trip is not a fixed point: "
            f"{len(text.splitlines())} lines became "
            f"{len(text2.splitlines())}"
        )
        return
    if dict(rebuilt.placements) != dict(layout.placements):
        emit("DEF round trip changed placements")
    if rebuilt.fixed != layout.fixed:
        emit("DEF round trip changed the fixed-cell set")
