"""The :class:`DeltaEvaluator` — one stateful route/STA/security pipeline.

The evaluator owns the incremental state for **one** layout lineage: the
routing journal of the last evaluation, an :class:`~repro.timing.sta.
IncrementalSTA` instance, and an :class:`~repro.security.exploitable.
IncrementalExploitableScanner`.  Each :meth:`DeltaEvaluator.evaluate`
call snapshots the layout's placements, diffs them against the previous
snapshot to derive a :class:`~repro.incremental.delta.LayoutDelta`
(robust even when the caller mutates the layout in place), and then runs

1. warm-start global routing (rip up and re-route only nets whose pins
   moved or whose congestion probes touched changed grid bins),
2. delta-STA (re-propagate only the affected timing cones), and
3. delta-security (re-scan only rows whose gap structure changed).

Every result is equal to the corresponding full recompute by
construction; ``tests/incremental/test_differential.py`` enforces this
against the full-recompute oracle with zero tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro import obs
from repro.incremental.delta import LayoutDelta
from repro.layout.layout import Layout, Placement
from repro.route.ndr import NonDefaultRule
from repro.route.router import RouteJournal, RoutingResult, global_route
from repro.security.assets import SecurityAssets
from repro.security.exploitable import (
    DEFAULT_THRESH_ER,
    ExploitableReport,
    IncrementalExploitableScanner,
)
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import IncrementalSTA, STAResult

#: Minimum estimated reusable-net fraction for a warm start to be worth
#: the probe-recording overhead; below it the evaluator routes fresh.
_WARM_START_THRESHOLD = 0.25


@dataclass
class DeltaEvalResult:
    """One incremental evaluation's outputs.

    Attributes:
        routing: The (warm-started) routing result, journal attached.
        ndr: The non-default rule the routing used.
        sta: STA result — bitwise equal to a fresh :func:`~repro.timing.
            sta.run_sta` on the same layout/routing.
        security: Exploitable-region report — equal to a fresh
            :func:`~repro.security.exploitable.find_exploitable_regions`.
        delta: The placement delta this evaluation applied.
    """

    routing: RoutingResult
    ndr: NonDefaultRule
    sta: STAResult
    security: ExploitableReport
    delta: LayoutDelta


class DeltaEvaluator:
    """Incremental route→STA→security evaluator for one layout lineage.

    Args:
        layout: The layout to evaluate (may be mutated in place between
            calls — the evaluator diffs placements itself).
        constraints: Timing constraints for STA.
        assets: Security assets for the exploitable-region scan.
        thresh_er: Exploitable-region site threshold.
        warm_journal: Optional routing journal of a previous evaluation
            of the *same placements* (e.g. the flow baseline), letting
            even the first evaluation warm-start its routing.
    """

    def __init__(
        self,
        layout: Layout,
        constraints: TimingConstraints,
        assets: SecurityAssets,
        thresh_er: int = DEFAULT_THRESH_ER,
        warm_journal: Optional[RouteJournal] = None,
    ) -> None:
        self.layout = layout
        self.constraints = constraints
        self.assets = assets
        self.thresh_er = thresh_er
        self._journal: Optional[RouteJournal] = warm_journal
        self._placements: Optional[Dict[str, Placement]] = None
        self._sta: Optional[IncrementalSTA] = None
        self._scanner: Optional[IncrementalExploitableScanner] = None

    def _reuse_estimate(
        self, ndr: NonDefaultRule, moved_nets: Set[str]
    ) -> float:
        """Upper-bound fraction of journaled nets a warm start can reuse.

        A journaled net is certainly ripped up when it probed a layer
        whose track demand changed or when one of its pins moved; the
        survivors are an optimistic bound (bin collisions can still dirty
        them during replay).
        """
        journal = self._journal
        if journal is None or not journal.entries:
            return 0.0
        changed = {
            layer
            for layer in range(1, ndr.num_layers + 1)
            if ndr.track_demand(layer) != journal.ndr.track_demand(layer)
        }
        reusable = sum(
            1
            for name, entry in journal.entries.items()
            if name not in moved_nets and not (entry.probe_layers & changed)
        )
        return reusable / len(journal.entries)

    def evaluate(
        self,
        ndr: Optional[NonDefaultRule] = None,
        layout: Optional[Layout] = None,
    ) -> DeltaEvalResult:
        """Evaluate the current layout state under ``ndr``.

        Args:
            ndr: Layer-scale rule for routing (default rule when None).
            layout: Replacement layout object of the same netlist; when
                omitted the evaluator re-reads the layout it was built
                with (which the caller may have mutated in place).

        Returns:
            A :class:`DeltaEvalResult` equal to a full recompute.
        """
        if layout is not None:
            self.layout = layout
        layout = self.layout
        if ndr is None:
            ndr = NonDefaultRule.default(layout.technology.num_layers)

        snapshot = dict(layout.placements)
        if self._placements is None:
            delta = LayoutDelta.empty()
        else:
            delta = _diff_placements(self._placements, snapshot)
        self._placements = snapshot

        # Warm-starting pays only when enough journaled nets survive the
        # NDR/placement change; when the estimate says most nets would be
        # ripped up anyway, a plain fresh route (no probe recording) is
        # cheaper.  Both paths produce identical routing — the journal
        # stays valid across fresh routes because the replay re-checks
        # pin positions and layer scales itself.
        moved_nets = (
            delta.dirty_nets(layout.netlist) if not delta.is_empty else set()
        )
        warm = None
        record = self._journal is None
        if self._journal is not None:
            if self._reuse_estimate(ndr, moved_nets) >= _WARM_START_THRESHOLD:
                warm = self._journal
                record = True

        # The flow.* spans keep the per-stage profile comparable between
        # the incremental and full pipelines; the incremental.* spans
        # isolate the delta engine's own cost.
        with obs.timed("flow.route"), obs.timed("incremental.route"):
            routing = global_route(
                layout, ndr=ndr, warm_start=warm, record_journal=record
            )
        if routing.journal is not None:
            self._journal = routing.journal
        obs.count(
            "incremental.route.warm" if warm is not None
            else "incremental.route.fresh"
        )

        with obs.timed("flow.sta"), obs.timed("incremental.sta"):
            if self._sta is None:
                self._sta = IncrementalSTA(
                    layout, self.constraints, routing=routing
                )
                sta = self._sta.result
            else:
                sta = self._sta.update(routing=routing, layout=layout)

        with obs.timed("flow.security"), obs.timed("incremental.security"):
            if self._scanner is None:
                self._scanner = IncrementalExploitableScanner(
                    layout,
                    sta,
                    self.assets,
                    thresh_er=self.thresh_er,
                    routing=routing,
                )
                security = self._scanner.report
            else:
                security = self._scanner.update(
                    sta,
                    routing=routing,
                    layout=layout,
                    dirty_rows=delta.dirty_rows(),
                )

        obs.count("incremental.evaluations")
        return DeltaEvalResult(
            routing=routing, ndr=ndr, sta=sta, security=security, delta=delta
        )


def _diff_placements(
    old: Dict[str, Placement], new: Dict[str, Placement]
) -> LayoutDelta:
    """Placement-dict diff (both directions) as a :class:`LayoutDelta`."""
    moved: Dict[str, tuple] = {}
    for name, pl in new.items():
        prev = old.get(name)
        if prev != pl:
            moved[name] = (prev, pl)
    for name, prev in old.items():
        if name not in new:
            moved[name] = (prev, None)
    return LayoutDelta(moved=moved)
