"""The :class:`LayoutDelta` — what changed between two placement states.

A delta records per-instance old/new placements.  From it every
incremental consumer derives its own dirt: the router re-decides nets
whose pins moved, the STA engine invalidates the fan-in/fan-out cones of
those nets, and the exploitable-region scanner re-scans the rows whose
occupancy changed (plus the reach of any asset whose position changed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.layout.layout import Layout, Placement
from repro.netlist.netlist import Netlist


@dataclass
class LayoutDelta:
    """A placement change set between an *old* and a *new* layout state.

    Attributes:
        moved: Instance name → ``(old, new)`` placement.  ``None`` on
            either side means the instance was unplaced in that state.
    """

    moved: Dict[str, Tuple[Optional[Placement], Optional[Placement]]] = field(
        default_factory=dict
    )

    @classmethod
    def empty(cls) -> "LayoutDelta":
        """The no-op delta (NDR-only re-evaluations use this)."""
        return cls()

    @classmethod
    def between(cls, old: Layout, new: Layout) -> "LayoutDelta":
        """Diff two layouts of the same netlist."""
        moved: Dict[str, Tuple[Optional[Placement], Optional[Placement]]] = {}
        old_pl = old.placements
        new_pl = new.placements
        for name, pl in new_pl.items():
            prev = old_pl.get(name)
            if prev != pl:
                moved[name] = (prev, pl)
        for name, prev in old_pl.items():
            if name not in new_pl:
                moved[name] = (prev, None)
        return cls(moved=moved)

    @classmethod
    def of_instances(cls, layout: Layout, names: Iterable[str]) -> "LayoutDelta":
        """Delta marking ``names`` as moved, with their current placement
        as the *new* state (old state unknown → treated as dirty)."""
        moved: Dict[str, Tuple[Optional[Placement], Optional[Placement]]] = {}
        for name in names:
            new = layout.placements.get(name)
            moved[name] = (None, new)
        return cls(moved=moved)

    @property
    def is_empty(self) -> bool:
        """Whether nothing moved."""
        return not self.moved

    def __len__(self) -> int:
        return len(self.moved)

    @property
    def instances(self) -> Set[str]:
        """Names of all instances that changed placement."""
        return set(self.moved)

    def dirty_rows(self) -> Set[int]:
        """Row indices whose occupancy changed (old and new rows)."""
        rows: Set[int] = set()
        for old, new in self.moved.values():
            if old is not None:
                rows.add(old.row)
            if new is not None:
                rows.add(new.row)
        return rows

    def dirty_nets(self, netlist: Netlist) -> Set[str]:
        """Nets with at least one pin on a moved instance.

        These nets' pin positions — hence HPWL estimates, routed shapes,
        and wire parasitics — may all have changed.
        """
        nets: Set[str] = set()
        for name in self.moved:
            inst = netlist.instance(name)
            nets.update(inst.connections.values())
        return nets

    def merge(self, other: "LayoutDelta") -> "LayoutDelta":
        """Compose two deltas applied in sequence (self then other)."""
        moved = dict(self.moved)
        for name, (old, new) in other.moved.items():
            if name in moved:
                moved[name] = (moved[name][0], new)
            else:
                moved[name] = (old, new)
        return LayoutDelta(moved=moved)
