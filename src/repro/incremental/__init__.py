"""``repro.incremental`` — delta evaluation for the GA inner loop.

The explorer's hot path evaluates hundreds of :class:`~repro.core.params.
FlowConfig` candidates against one baseline design.  A full evaluation
re-runs the entire flow — ECO placement, global route, STA graph
propagation, exploitable-region scan — even though most candidates differ
from an already-evaluated one only in a handful of genes.  This package
makes re-evaluation proportional to the *change*:

* :class:`~repro.incremental.delta.LayoutDelta` — the change schema: which
  instances moved (old/new placement), which rows and nets that dirties.
* :class:`~repro.incremental.engine.DeltaEvaluator` — a stateful evaluator
  holding the routed/timed/scanned state of one layout; ``evaluate()``
  applies a placement delta and/or a new set of RWS layer scales and
  returns routing, STA, and security results **guaranteed equal** to a
  full recompute (see below).
* The per-domain incremental primitives live next to their full-compute
  siblings: :class:`repro.timing.sta.IncrementalSTA`,
  :func:`repro.route.router.global_route` (``warm_start=``), and
  :class:`repro.security.exploitable.IncrementalExploitableScanner`.

Oracle equivalence
------------------
Every incremental result equals the full recompute *by construction*, not
by approximation: each domain recomputes exactly the values whose inputs
changed, using the same formulas on the same floats, and leaves untouched
values cached.  ``tests/incremental/test_differential.py`` enforces this
with randomized move/scale sequences checked against the full-recompute
oracle with zero tolerance.
"""

from repro.incremental.delta import LayoutDelta
from repro.incremental.engine import DeltaEvalResult, DeltaEvaluator

__all__ = ["LayoutDelta", "DeltaEvalResult", "DeltaEvaluator"]
