"""Geometric primitives used throughout the layout substrate.

Coordinates are floats in micrometres (µm) unless a function explicitly
deals in *sites* (integer placement-grid units).  The placement grid is
defined by :class:`repro.tech.Technology`; this module is intentionally
unit-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other`` — the routing metric."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_distance(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An immutable axis-aligned rectangle: ``[xlo, xhi) × [ylo, yhi)``.

    Degenerate rectangles (zero width or height) are permitted; they have
    zero area and intersect nothing.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(
                f"malformed Rect: ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Geometric centre of the rectangle."""
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    def contains_point(self, p: Point, strict: bool = False) -> bool:
        """Whether ``p`` lies inside the rectangle.

        With ``strict=False`` (default) the low edges are inclusive and the
        high edges exclusive, matching half-open interval semantics.  With
        ``strict=True`` all edges are exclusive.
        """
        if strict:
            return self.xlo < p.x < self.xhi and self.ylo < p.y < self.yhi
        return self.xlo <= p.x < self.xhi and self.ylo <= p.y < self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the interiors of the two rectangles overlap."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping region, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of the union of the two rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy shifted by ``(dx, dy)``."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def inflated(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side (clamped valid)."""
        xlo = self.xlo - margin
        ylo = self.ylo - margin
        xhi = self.xhi + margin
        yhi = self.yhi + margin
        if xhi < xlo:
            xlo = xhi = (xlo + xhi) / 2.0
        if yhi < ylo:
            ylo = yhi = (ylo + yhi) / 2.0
        return Rect(xlo, ylo, xhi, yhi)

    def manhattan_distance_to_point(self, p: Point) -> float:
        """L1 distance from ``p`` to the closest point of the rectangle.

        Zero when ``p`` is inside.  This is the distance metric used for
        the *exploitable distance* test between empty sites and
        security-critical cells.
        """
        dx = max(self.xlo - p.x, 0.0, p.x - self.xhi)
        dy = max(self.ylo - p.y, 0.0, p.y - self.yhi)
        return dx + dy

    def manhattan_distance_to_rect(self, other: "Rect") -> float:
        """L1 gap between two rectangles (zero when they touch/overlap)."""
        dx = max(self.xlo - other.xhi, 0.0, other.xlo - self.xhi)
        dy = max(self.ylo - other.yhi, 0.0, other.ylo - self.yhi)
        return dx + dy


def bounding_box(points: Iterable[Point]) -> Rect:
    """Smallest :class:`Rect` enclosing ``points``.

    Raises ``ValueError`` on an empty iterable.
    """
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box() of an empty point set")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def half_perimeter_wirelength(points: Iterable[Point]) -> float:
    """Half-perimeter wirelength (HPWL) of a point set.

    The standard placement-stage estimate of the routed length of a net
    connecting ``points``.  Zero for fewer than two points.
    """
    pts = list(points)
    if len(pts) < 2:
        return 0.0
    box = bounding_box(pts)
    return box.width + box.height


class Interval:
    """A half-open integer interval ``[lo, hi)`` over placement sites.

    Used for free-space bookkeeping inside a core row.  Mutable on purpose:
    the row occupancy structures split and merge intervals frequently.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        if hi < lo:
            raise ValueError(f"malformed Interval [{lo}, {hi})")
        self.lo = int(lo)
        self.hi = int(hi)

    def __len__(self) -> int:
        return self.hi - self.lo

    def __contains__(self, site: int) -> bool:
        return self.lo <= site < self.hi

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval) and self.lo == other.lo and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Interval({self.lo}, {self.hi})"

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one site."""
        return self.lo < other.hi and other.lo < self.hi

    def touches_or_overlaps(self, other: "Interval") -> bool:
        """Whether the intervals overlap or are directly adjacent."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Shared sites, or ``None`` when disjoint (adjacency is disjoint)."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi <= lo:
            return None
        return Interval(lo, hi)


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping/adjacent intervals into a sorted disjoint list.

    Empty intervals are dropped.
    """
    items = sorted(
        (iv for iv in intervals if len(iv) > 0), key=lambda iv: (iv.lo, iv.hi)
    )
    merged: List[Interval] = []
    for iv in items:
        if merged and iv.lo <= merged[-1].hi:
            merged[-1].hi = max(merged[-1].hi, iv.hi)
        else:
            merged.append(Interval(iv.lo, iv.hi))
    return merged


def subtract_intervals(base: Interval, holes: Iterable[Interval]) -> Iterator[Interval]:
    """Yield the parts of ``base`` not covered by any of ``holes``."""
    cursor = base.lo
    for hole in merge_intervals(holes):
        if hole.hi <= cursor:
            continue
        if hole.lo >= base.hi:
            break
        if hole.lo > cursor:
            yield Interval(cursor, min(hole.lo, base.hi))
        cursor = max(cursor, hole.hi)
        if cursor >= base.hi:
            return
    if cursor < base.hi:
        yield Interval(cursor, base.hi)
