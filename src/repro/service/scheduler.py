"""The asyncio job orchestrator behind ``repro serve``.

One :class:`Scheduler` owns the bounded priority queue, the worker
slots, the daemon-wide shared evaluation cache, and the on-disk job
journal.  All of its state is mutated **only on the event loop** — job
execution happens on worker threads (``asyncio.to_thread``), but those
threads receive plain values and return plain values; progress updates
hop back onto the loop via ``call_soon_threadsafe``.

Lifecycle guarantees:

* **Backpressure** — submissions beyond ``queue_limit`` raise
  :class:`~repro.errors.JobQueueFull` (HTTP 429 + ``Retry-After``).
* **Retry** — a job whose run raises a library error transitions to
  ``retrying`` and re-runs with ``resume=True`` (its explorer
  checkpoint makes the continuation bitwise-exact); after
  ``max_job_retries`` job-level attempts it lands in ``failed`` with
  the error message.
* **Cancel** — ``DELETE /jobs/<id>``: a queued job is dropped
  immediately; a running one gets its stop event set and finishes as
  ``cancelled`` at the next generation boundary, checkpoint preserved
  for a later resumed submission.
* **Drain** — SIGTERM stops dispatching, fires every running job's stop
  event, waits for the boundary checkpoints, and journals the in-flight
  jobs as ``interrupted``; a restart with ``--resume`` re-enqueues all
  unfinished jobs (``resume=True``) and finishes them bitwise
  identically to an uninterrupted daemon.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro import obs
from repro.errors import (
    ExplorationCancelled,
    JobQueueFull,
    ReproError,
    ServiceError,
    UnknownJob,
)
from repro.resilience.supervisor import SupervisionConfig
from repro.service.cache import SharedEvalCache
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.queue import BoundedPriorityQueue
from repro.service.runner import (
    run_attack_job,
    run_explore_job,
    run_harden_job,
)
from repro.service.store import JobStore

__all__ = ["Scheduler", "SchedulerConfig"]

logger = logging.getLogger("repro.service")


@dataclass(frozen=True)
class SchedulerConfig:
    """Orchestration knobs.

    Attributes:
        workers: Concurrent job slots (each slot runs one job's whole
            exploration; per-evaluation parallelism inside a job comes
            from the job spec's ``processes``).
        queue_limit: Pending-job bound before 429 backpressure.
        retry_after_s: ``Retry-After`` hint handed to rejected clients.
        max_job_retries: Job-level re-runs (resume from checkpoint)
            before a failing job is marked ``failed``.
        supervision: Per-evaluation supervision knobs forwarded to each
            job's explorer (``None`` = production defaults).
    """

    workers: int = 2
    queue_limit: int = 64
    retry_after_s: float = 1.0
    max_job_retries: int = 1
    supervision: Optional[SupervisionConfig] = None


@dataclass
class _RunningJob:
    """Loop-side bookkeeping for one in-flight job."""

    record: JobRecord
    stop_event: threading.Event = field(default_factory=threading.Event)
    task: Optional["asyncio.Task[None]"] = None
    drain_stop: bool = False


class Scheduler:
    """Priority-queue job orchestration over a bounded slot pool."""

    def __init__(
        self,
        store: JobStore,
        guard_factory: Any,
        config: SchedulerConfig = SchedulerConfig(),
    ) -> None:
        self.store = store
        self.guard_factory = guard_factory
        self.config = config
        self.queue = BoundedPriorityQueue(config.queue_limit)
        self.shared_cache = SharedEvalCache()
        self.records: Dict[str, JobRecord] = {}
        self._running: Dict[str, _RunningJob] = {}
        self._next_id = 1
        self.draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        # Journal writes from coroutines go through this FIFO lock so
        # snapshots of one record land in the order they were taken.
        self._journal_lock = asyncio.Lock()
        self._save_tasks: Set["asyncio.Task[None]"] = set()

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #

    def _new_job_id(self) -> str:
        job_id = f"job-{self._next_id:06d}"
        self._next_id += 1
        return job_id

    def submit(self, spec: JobSpec) -> JobRecord:
        """Validate, journal, and enqueue one job (raises on rejects)."""
        if self.draining:
            raise ServiceError("service is draining; resubmit after restart")
        if hasattr(self.guard_factory, "validate"):
            self.guard_factory.validate(spec.design)
        if spec.resume_from is not None and not (
            self.store.checkpoint_dir(spec.resume_from).exists()
        ):
            raise ServiceError(
                f"resume_from job {spec.resume_from!r} has no checkpoint "
                f"directory in this daemon's state dir"
            )
        if self.queue.full:
            obs.count("service.jobs_rejected")
            raise JobQueueFull(
                f"job queue is full ({self.queue.limit} pending); "
                f"retry later"
            )
        record = JobRecord(job_id=self._new_job_id(), spec=spec)
        self.records[record.job_id] = record
        self.queue.push(record)
        self.store.save(record)
        obs.count("service.jobs_submitted")
        self._refresh_gauges()
        self._idle.clear()
        self._maybe_dispatch()
        return record

    def restore(self) -> List[JobRecord]:
        """Reload the journal; re-enqueue every unfinished job.

        Jobs that were queued, running, retrying, cancelling, or
        interrupted when the previous daemon died are resubmitted with
        ``resume=True`` so their checkpoints continue bitwise; terminal
        jobs stay queryable (including their results).
        """
        resurrected = []
        for record in self.store.load_all():
            self.records[record.job_id] = record
            seq = int(record.job_id.rsplit("-", 1)[1])
            self._next_id = max(self._next_id, seq + 1)
            if record.state in JobState.TERMINAL:
                continue
            if record.state != JobState.QUEUED:
                record.transition(JobState.QUEUED)
            record.spec = dataclasses.replace(record.spec, resume=True)
            self.queue.push(record)
            self.store.save(record)
            resurrected.append(record)
            obs.count("service.jobs_resumed")
        if resurrected:
            self._idle.clear()
            self._maybe_dispatch()
        self._refresh_gauges()
        return resurrected

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def get(self, job_id: str) -> JobRecord:
        record = self.records.get(job_id)
        if record is None:
            raise UnknownJob(f"unknown job {job_id!r}")
        return record

    def list_jobs(self) -> List[JobRecord]:
        return [self.records[k] for k in sorted(self.records)]

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in JobState.ALL}
        for record in self.records.values():
            out[record.state] += 1
        return out

    async def wait_idle(self) -> None:
        """Block until no job is queued or running (tests, drain)."""
        await self._idle.wait()

    # ------------------------------------------------------------------ #
    # cancellation / drain
    # ------------------------------------------------------------------ #

    def cancel(self, job_id: str) -> JobRecord:
        record = self.get(job_id)
        if record.is_terminal:
            raise ServiceError(
                f"job {job_id} is already {record.state}"
            )
        running = self._running.get(job_id)
        if running is None:
            # still queued: drop it before a slot picks it up
            self.queue.drop(job_id)
            record.transition(JobState.CANCELLED)
            self.store.save(record)
            obs.count("service.jobs_cancelled")
            self._refresh_gauges()
            self._check_idle()
        else:
            record.transition(JobState.CANCELLING)
            self.store.save(record)
            running.stop_event.set()
        return record

    async def drain(self) -> None:
        """Graceful SIGTERM path: checkpoint and journal everything."""
        self.draining = True
        obs.count("service.drains")
        for running in self._running.values():
            running.drain_stop = True
            running.stop_event.set()
        tasks = [
            r.task for r in self._running.values() if r.task is not None
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._save_tasks:
            # Outstanding progress snapshots must be durable before the
            # daemon reports itself drained.
            await asyncio.gather(
                *list(self._save_tasks), return_exceptions=True
            )
        self._refresh_gauges()
        logger.info(
            "drained: %d jobs journaled for resume",
            sum(
                1 for r in self.records.values()
                if r.state in JobState.RESUMABLE
            ),
        )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _maybe_dispatch(self) -> None:
        while (
            not self.draining
            and len(self._running) < self.config.workers
        ):
            record = self.queue.pop()
            if record is None:
                break
            running = _RunningJob(record=record)
            self._running[record.job_id] = running
            running.task = asyncio.get_running_loop().create_task(
                self._run_job(running)
            )
        self._refresh_gauges()

    async def _save_off_loop(self, record: JobRecord) -> None:
        """Journal ``record`` without stalling the event loop.

        The snapshot is serialized here on the loop (no worker thread
        ever reads the live record), then written + fsynced on a thread
        behind the journal lock so concurrent snapshots of one record
        land in the order they were taken.
        """
        text = self.store.snapshot(record)
        async with self._journal_lock:
            await asyncio.to_thread(
                self.store.write_snapshot, record.job_id, text
            )

    def _spawn_save(self, record: JobRecord) -> None:
        """Fire-and-forget journal write from a loop callback."""
        task = asyncio.get_running_loop().create_task(
            self._save_off_loop(record)
        )
        self._save_tasks.add(task)
        task.add_done_callback(self._reap_save)

    def _reap_save(self, task: "asyncio.Task[None]") -> None:
        self._save_tasks.discard(task)
        if not task.cancelled() and task.exception() is not None:
            logger.warning(
                "progress journal write failed: %s", task.exception()
            )

    async def _run_job(self, running: _RunningJob) -> None:
        record = running.record
        loop = asyncio.get_running_loop()

        def progress(update: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._on_progress, record, update)

        record.transition(JobState.RUNNING)
        await self._save_off_loop(record)
        while True:
            record.attempts += 1
            spec = record.spec
            try:
                result = await asyncio.to_thread(
                    self._execute, spec, record.job_id,
                    running.stop_event, progress,
                )
            except ExplorationCancelled as exc:
                if running.drain_stop:
                    record.transition(JobState.INTERRUPTED)
                    obs.count("service.jobs_interrupted")
                else:
                    record.transition(JobState.CANCELLED)
                    obs.count("service.jobs_cancelled")
                record.progress["cancelled_after_generation"] = (
                    exc.generation
                )
                break
            except ReproError as exc:
                if record.attempts <= self.config.max_job_retries:
                    logger.warning(
                        "job %s attempt %d failed (%s); retrying from "
                        "checkpoint", record.job_id, record.attempts, exc,
                    )
                    record.transition(JobState.RETRYING)
                    await self._save_off_loop(record)
                    obs.count("service.jobs_retried")
                    # the checkpoint written before the failure makes
                    # the re-run a bitwise continuation
                    record.spec = dataclasses.replace(spec, resume=True)
                    record.transition(JobState.RUNNING)
                    await self._save_off_loop(record)
                    continue
                record.error = f"{type(exc).__name__}: {exc}"
                record.transition(JobState.FAILED)
                obs.count("service.jobs_failed")
                break
            else:
                record.result = result
                record.resilience = dict(result.get("resilience") or {})
                record.transition(JobState.DONE)
                obs.count("service.jobs_done")
                break
        await self._save_off_loop(record)
        self._running.pop(record.job_id, None)
        self._refresh_gauges()
        self._maybe_dispatch()
        self._check_idle()

    def _execute(
        self,
        spec: JobSpec,
        job_id: str,
        stop_event: threading.Event,
        progress: Callable[[Dict[str, Any]], None],
    ) -> dict:
        """Thread-side: build the guard and run the job (no loop state).

        Each execution gets a **fresh guard** — concurrent jobs on the
        same design must not share mutable evaluator state (incremental
        caches), or the differential bitwise contract would hinge on
        interleaving.  Cross-job reuse happens only through the
        immutable shared evaluation cache.
        """
        # Cancel handoff: a resume_from job continues the *referenced*
        # job's checkpoint lineage instead of starting its own.
        checkpoint_owner = spec.resume_from or job_id
        if spec.kind == "attack":
            targets = self.guard_factory.build_attack(spec)
            with obs.timed(
                "service.job", kind=spec.kind, design=spec.design
            ):
                return run_attack_job(
                    spec,
                    targets,
                    checkpoint_dir=self.store.checkpoint_dir(
                        checkpoint_owner
                    ),
                    stop_event=stop_event,
                    progress=progress,
                    supervision=self.config.supervision,
                )
        handle = self.guard_factory.build(spec.design)
        with obs.timed("service.job", kind=spec.kind, design=spec.design):
            if spec.kind == "harden":
                return run_harden_job(spec, handle)
            return run_explore_job(
                spec,
                handle,
                checkpoint_dir=self.store.checkpoint_dir(checkpoint_owner),
                shared_cache=self.shared_cache,
                stop_event=stop_event,
                progress=progress,
                supervision=self.config.supervision,
            )

    # ------------------------------------------------------------------ #
    # loop-side bookkeeping
    # ------------------------------------------------------------------ #

    def _on_progress(self, record: JobRecord, update: Dict[str, Any]) -> None:
        record.progress.update(update)
        self._spawn_save(record)

    def _check_idle(self) -> None:
        if not self._running and len(self.queue) == 0:
            self._idle.set()

    def _refresh_gauges(self) -> None:
        if not obs.is_enabled():
            return
        obs.gauge_set("service.queue_depth", len(self.queue))
        obs.gauge_set("service.running_jobs", len(self._running))
        cache = self.shared_cache.stats()
        obs.gauge_set("service.cache_entries", cache["entries"])
        obs.gauge_set("service.cache_seeded", cache["seeded"])
        obs.gauge_set("service.cache_harvested", cache["harvested"])
