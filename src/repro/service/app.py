"""Daemon wiring: scheduler + HTTP server + signals (``repro serve``).

:class:`ServiceApp` owns one event loop's worth of serving: it builds
the :class:`~repro.service.scheduler.Scheduler` over a state directory,
binds the HTTP front-end, optionally resurrects journaled jobs
(``--resume``), and installs SIGTERM/SIGINT handlers that drain
gracefully — running jobs checkpoint at their next generation boundary
and are journaled ``interrupted``, queued jobs stay journaled
``queued``, and a restarted daemon finishes all of them bitwise
identically to an uninterrupted one.

:class:`ServiceThread` runs the same app on a background thread for
in-process tests (and the smoke-load tool): enter the context manager,
talk to ``base_url``, exit to drain and join.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import threading
from types import TracebackType
from typing import Any, Optional

from repro import __version__, obs
from repro.service.http import ServiceHTTP
from repro.service.runner import DesignGuardFactory
from repro.service.scheduler import Scheduler, SchedulerConfig
from repro.service.store import JobStore

__all__ = ["ServiceApp", "ServiceThread"]

logger = logging.getLogger("repro.service")


class ServiceApp:
    """One serving instance: store + scheduler + HTTP server."""

    def __init__(
        self,
        state_dir: str,
        guard_factory: Optional[Any] = None,
        config: SchedulerConfig = SchedulerConfig(),
        host: str = "127.0.0.1",
        port: int = 0,
        resume: bool = False,
    ) -> None:
        self.store = JobStore(state_dir)
        self.scheduler = Scheduler(
            self.store,
            guard_factory or DesignGuardFactory(),
            config=config,
        )
        self.http = ServiceHTTP(self.scheduler, version=__version__)
        self.host = host
        self.port = port
        self.resume = resume
        self._shutdown = asyncio.Event()

    @property
    def base_url(self) -> str:
        return f"http://{self.http.host}:{self.http.port}"

    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the server and (optionally) resurrect journaled jobs."""
        if not obs.is_enabled():
            obs.enable()
        await self.http.start(self.host, self.port)
        if self.resume:
            # One-shot journal resurrection before any client can
            # connect; nothing else runs on the loop yet.
            resurrected = self.scheduler.restore()  # repro-lint: disable=ASY101 startup-only, pre-serving
            if resurrected:
                logger.info(
                    "resumed %d unfinished job(s): %s",
                    len(resurrected),
                    ", ".join(r.job_id for r in resurrected),
                )

    def request_shutdown(self) -> None:
        """Thread/signal-safe shutdown trigger."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Serve, then on shutdown stop intake and drain running jobs."""
        await self.start()
        await self._shutdown.wait()
        logger.info("shutting down: draining %s", self.base_url)
        await self.http.stop()
        await self.scheduler.drain()

    # ------------------------------------------------------------------ #

    def run(self) -> int:
        """Blocking entry point with signal handling (the CLI path)."""

        async def main() -> None:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self._shutdown.set)
            await self.serve_until_shutdown()

        asyncio.run(main())
        return 0


class ServiceThread:
    """Run a :class:`ServiceApp` on a daemon thread (tests, tools).

    Usage::

        with ServiceThread(app) as base_url:
            ...  # HTTP against base_url
        # exiting drains the scheduler and joins the thread
    """

    def __init__(
        self, app: ServiceApp, startup_timeout_s: float = 10.0
    ) -> None:
        self.app = app
        self.startup_timeout_s = startup_timeout_s
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None

    def __enter__(self) -> str:
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(self.startup_timeout_s):
            raise RuntimeError("service thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(
                f"service thread failed to start: {self._error}"
            ) from self._error
        return self.app.base_url

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.app.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=60.0)

    def _main(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.app.start()
            except BaseException as exc:
                self._error = exc
                self._started.set()
                raise
            self._started.set()
            await self.app._shutdown.wait()
            logger.info("shutting down: draining %s", self.app.base_url)
            await self.app.http.stop()
            await self.app.scheduler.drain()

        asyncio.run(main())
