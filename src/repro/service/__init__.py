"""``repro.service`` — the long-lived job-orchestration layer.

Everything below this package turns the one-shot CLI flow into a
served workload: a daemon (``repro serve``) accepts harden/explore jobs
over a JSON-over-HTTP API, multiplexes them across a bounded worker
pool, shares the explorer's evaluation memo cache between jobs on the
same design, applies backpressure when the queue is full, and drains
gracefully (checkpointing in-flight generations) on SIGTERM.

Module map:

* :mod:`repro.service.jobs`      — job specs, records, state machine.
* :mod:`repro.service.queue`     — the bounded priority queue.
* :mod:`repro.service.cache`     — cross-job shared evaluation cache.
* :mod:`repro.service.store`     — on-disk job journal (resume source).
* :mod:`repro.service.runner`    — synchronous per-job execution.
* :mod:`repro.service.scheduler` — the asyncio orchestrator.
* :mod:`repro.service.http`      — stdlib asyncio HTTP front-end.
* :mod:`repro.service.app`       — daemon wiring + signal handling.
* :mod:`repro.service.client`    — thin urllib client for the CLI.
* :mod:`repro.service.testing`   — deterministic fake evaluators.

The serving contract mirrors the rest of the repo: a job submitted
through the service yields a Pareto front **bitwise identical** to the
same-seed ``repro explore`` CLI run (``tests/service/`` enforces this
differentially, including under concurrent mixed-priority load and
mid-job cancel/resume).
"""

from repro.service.cache import SharedEvalCache
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.queue import BoundedPriorityQueue
from repro.service.scheduler import Scheduler, SchedulerConfig

__all__ = [
    "BoundedPriorityQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "Scheduler",
    "SchedulerConfig",
    "SharedEvalCache",
]
