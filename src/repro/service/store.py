"""On-disk job journal: the daemon's crash-survivable memory.

Layout of one state directory::

    <state_dir>/
      jobs/<job_id>.json          # JobRecord journal entries (atomic)
      checkpoints/<job_id>/       # per-job explorer run directory

Every state transition rewrites the job's journal file with the same
tmp+fsync+rename discipline as :mod:`repro.resilience.checkpoint`, so a
killed daemon never leaves a torn record.  On restart, ``load_all``
returns every journaled record; the scheduler re-enqueues the
non-terminal ones (with ``resume=True`` so their explorer checkpoints
continue bitwise) and keeps the terminal ones queryable.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ServiceError
from repro.service.jobs import JobRecord

__all__ = ["JobStore"]

JOURNAL_SCHEMA_VERSION = 1

#: Per-process sequence for tmp-file names: combined with pid and
#: thread id it makes every in-flight journal write target a distinct
#: tmp path, so concurrent savers of the *same* record can never
#: truncate each other's half-written file (``os.replace`` then keeps
#: whichever snapshot lands last, each one self-consistent).
_TMP_SEQ = itertools.count()


class JobStore:
    """Atomic per-job JSON journal in one state directory."""

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.checkpoints_dir = self.state_dir / "checkpoints"
        try:
            self.jobs_dir.mkdir(parents=True, exist_ok=True)
            self.checkpoints_dir.mkdir(parents=True, exist_ok=True)
            probe = self.state_dir / f".write-probe-{os.getpid()}"
            probe.write_text("")
            probe.unlink()
        except OSError as exc:
            raise ServiceError(
                f"service state directory {self.state_dir} is not "
                f"writable ({exc}); pass a writable --state-dir"
            ) from exc

    # -- paths ----------------------------------------------------------- #

    def journal_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.checkpoints_dir / job_id

    # -- persistence ------------------------------------------------------ #

    def save(self, record: JobRecord) -> None:
        self.write_snapshot(record.job_id, self.snapshot(record))

    def snapshot(self, record: JobRecord) -> str:
        """Serialize ``record``'s current state (no I/O).

        Splitting serialization from the write lets the scheduler take
        the snapshot on the event loop — where the record is mutated —
        and push only the finished text to a worker thread, so the
        threaded write never reads the live object.
        """
        body = record.to_journal()
        body["schema_version"] = JOURNAL_SCHEMA_VERSION
        return json.dumps(body, indent=2, sort_keys=True) + "\n"

    def write_snapshot(self, job_id: str, text: str) -> None:
        """Atomically replace ``job_id``'s journal with ``text``."""
        path = self.journal_path(job_id)
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}"
            f".{threading.get_ident()}.{next(_TMP_SEQ)}"
        )
        try:
            with open(tmp, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise ServiceError(
                f"cannot journal job {job_id} to {path}: {exc}"
            ) from exc
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    def load(self, job_id: str) -> Optional[JobRecord]:
        path = self.journal_path(job_id)
        if not path.exists():
            return None
        return self._read(path)

    def load_all(self) -> List[JobRecord]:
        """Every journaled record, ordered by job id (submission order)."""
        records: Dict[str, JobRecord] = {}
        for path in sorted(self.jobs_dir.glob("*.json")):
            record = self._read(path)
            records[record.job_id] = record
        return [records[k] for k in sorted(records)]

    def _read(self, path: Path) -> JobRecord:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"corrupt job journal {path} ({exc}); delete it or "
                f"start a fresh --state-dir"
            ) from exc
        if not isinstance(payload, dict):
            raise ServiceError(f"job journal {path} is not a JSON object")
        version = payload.get("schema_version")
        if version != JOURNAL_SCHEMA_VERSION:
            raise ServiceError(
                f"job journal {path} has schema version {version!r} but "
                f"this build reads {JOURNAL_SCHEMA_VERSION}; start a "
                f"fresh --state-dir"
            )
        return JobRecord.from_journal(payload)
