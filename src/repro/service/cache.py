"""Cross-job shared evaluation cache.

The explorer memoizes flow evaluations per run (chromosome → objectives)
— but a service runs *many* explorations over the same designs, and an
evaluation is a pure function of ``(design, flow configuration)``.  This
cache hoists the memo table to the daemon: before a job starts, its
explorer is pre-warmed with every known result for its design key; when
it finishes, newly paid-for evaluations are harvested back.

Key structure: ``design_key → {config_key → (objectives, violation)}``
where ``design_key`` identifies the evaluated design (the guard
factory's fingerprint — design name + content hash for real designs)
and ``config_key`` is the explorer's canonical chromosome key.

Determinism: pre-warming never changes results — the memoized value *is*
what the evaluation would have produced — so a warm-cache job still
yields a Pareto front bitwise identical to its cold CLI twin (the
differential suite asserts exactly this).  Harvest happens at job end,
never mid-flight, so a running explorer's memo table is never mutated
under it.  A lock guards the maps because jobs finish on worker threads.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

__all__ = ["SharedEvalCache"]

#: config_key → (objectives, violation) — the explorer's memo value.
EvalMap = Dict[tuple, Tuple[tuple, float]]


class SharedEvalCache:
    """Daemon-wide evaluation memo, keyed by (design-key, config-key)."""

    def __init__(self) -> None:
        self._by_design: Dict[str, EvalMap] = {}
        self._lock = threading.Lock()
        self.seeded = 0    # entries handed to starting jobs
        self.harvested = 0  # new entries absorbed from finished jobs

    def snapshot_for(self, design_key: str) -> EvalMap:
        """A copy of the memo map for one design (job pre-warm)."""
        with self._lock:
            known = self._by_design.get(design_key)
            entries = dict(known) if known else {}
            self.seeded += len(entries)
            return entries

    def absorb(self, design_key: str, evaluated: EvalMap) -> int:
        """Fold a finished job's memo table in; returns new-entry count."""
        with self._lock:
            known = self._by_design.setdefault(design_key, {})
            fresh = 0
            for key, value in evaluated.items():
                if key not in known:
                    known[key] = value
                    fresh += 1
            self.harvested += fresh
            return fresh

    def stats(self) -> dict:
        with self._lock:
            return {
                "designs": len(self._by_design),
                "entries": sum(
                    len(m) for m in self._by_design.values()
                ),
                "seeded": self.seeded,
                "harvested": self.harvested,
            }
