"""The bounded priority queue feeding the scheduler's worker slots.

Ordering: higher ``priority`` first, FIFO within a priority level (a
monotonic sequence number breaks ties, so two equal-priority jobs run
in submission order — the differential tests rely on the determinism).

Bounded: ``push`` on a full queue raises
:class:`~repro.errors.JobQueueFull`; the HTTP layer maps that to
``429 Too Many Requests`` with a ``Retry-After`` header.  The queue is
only ever touched from the scheduler's event loop, so it needs no lock.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

from repro.errors import JobQueueFull
from repro.service.jobs import JobRecord

__all__ = ["BoundedPriorityQueue"]


class BoundedPriorityQueue:
    """A max-priority, FIFO-within-priority queue with a hard bound."""

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._seq = 0
        # heapq is a min-heap: negate priority for "larger runs earlier".
        self._heap: List[Tuple[int, int, JobRecord]] = []
        self._dropped: set = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._dropped)

    @property
    def full(self) -> bool:
        return len(self) >= self.limit

    def push(self, record: JobRecord) -> None:
        """Enqueue ``record`` or raise :class:`JobQueueFull`."""
        if self.full:
            raise JobQueueFull(
                f"job queue is full ({self.limit} pending); retry later"
            )
        heapq.heappush(self._heap, (-record.spec.priority, self._seq, record))
        self._seq += 1

    def pop(self) -> Optional[JobRecord]:
        """The highest-priority pending record, or ``None`` when empty."""
        while self._heap:
            _, _, record = heapq.heappop(self._heap)
            if record.job_id in self._dropped:
                self._dropped.discard(record.job_id)
                continue
            return record
        return None

    def drop(self, job_id: str) -> bool:
        """Lazily remove a queued job (cancellation of a pending job)."""
        for _, _, record in self._heap:
            if record.job_id == job_id and job_id not in self._dropped:
                self._dropped.add(job_id)
                return True
        return False

    def pending(self) -> Iterable[JobRecord]:
        """Pending records in pop order (for drain persistence)."""
        live = [
            entry for entry in self._heap
            if entry[2].job_id not in self._dropped
        ]
        return [record for _, _, record in sorted(live)]
