"""Stdlib asyncio JSON-over-HTTP front-end for the scheduler.

A deliberately small HTTP/1.1 server (``asyncio.start_server`` + a
hand-rolled request parser) — no third-party web framework, matching the
repo's no-new-hard-deps rule.  Every response is JSON; connections are
``Connection: close`` (the API is poll-style, not streaming).

Routes::

    GET    /healthz            liveness + queue/job counts
    GET    /metrics            obs registry dump + service gauges
    POST   /jobs               submit a job (JobSpec JSON body)
    GET    /jobs               list job summaries
    GET    /jobs/<id>          full status, progress, front-so-far
    GET    /jobs/<id>/result   final result (409 until done)
    DELETE /jobs/<id>          cancel (checkpoint handoff)

Error mapping: malformed requests → 400, unknown jobs → 404, results
not ready / cancel of a finished job → 409, full queue → 429 with a
``Retry-After`` header (the backpressure contract).
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.errors import JobQueueFull, ServiceError, UnknownJob
from repro.service.jobs import JobSpec
from repro.service.scheduler import Scheduler

__all__ = ["ServiceHTTP"]

logger = logging.getLogger("repro.service")

_MAX_BODY = 1 << 20  # 1 MiB of JSON is far beyond any legal job spec
_MAX_HEADER = 64 * 1024


class _HttpError(Exception):
    """Internal: carries (status, message, headers) to the writer."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServiceHTTP:
    """The asyncio server wrapping one :class:`Scheduler`."""

    def __init__(self, scheduler: Scheduler, version: str = "") -> None:
        self.scheduler = scheduler
        self.version = version
        self._server: Optional[asyncio.AbstractServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        logger.info("listening on http://%s:%d", self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._respond(
                    writer, exc.status, {"error": exc.message}, exc.headers
                )
                return
            # Submit/cancel journal their record synchronously on the
            # loop: the write must be durable before the response is on
            # the wire, or an ack'd job could vanish in a crash.
            status, payload, headers = self._route(method, path, body)  # repro-lint: disable=ASY101 durability before response is the API contract
            await self._respond(writer, status, payload, headers)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[dict]]:
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except asyncio.IncompleteReadError as exc:
            raise _HttpError(400, "truncated request") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "request header too large") from exc
        except asyncio.TimeoutError as exc:
            raise _HttpError(400, "request timed out") from exc
        if len(raw) > _MAX_HEADER:
            raise _HttpError(413, "request header too large")
        head, _, _ = raw.partition(b"\r\n")
        parts = head.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {head!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in raw.split(b"\r\n")[1:]:
            if not line:
                continue
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Optional[dict] = None
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError as exc:
                raise _HttpError(400, "bad Content-Length") from exc
            if n > _MAX_BODY:
                raise _HttpError(413, "request body too large")
            data = await reader.readexactly(n) if n else b""
            if data:
                try:
                    body = json.loads(data)
                except json.JSONDecodeError as exc:
                    raise _HttpError(
                        400, f"request body is not valid JSON ({exc})"
                    ) from exc
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def _route(
        self, method: str, path: str, body: Optional[dict]
    ) -> Tuple[int, Any, Dict[str, str]]:
        obs.count("service.http_requests")
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._healthz(), {}
            if path == "/metrics" and method == "GET":
                return 200, self._metrics(), {}
            if path == "/jobs":
                if method == "POST":
                    return self._submit(body)
                if method == "GET":
                    return 200, {
                        "jobs": [
                            r.summary()
                            for r in self.scheduler.list_jobs()
                        ]
                    }, {}
                raise _HttpError(405, f"{method} not allowed on {path}")
            if path.startswith("/jobs/"):
                return self._job_route(method, path)
            raise _HttpError(404, f"no route for {path}")
        except _HttpError as exc:
            obs.count("service.http_errors")
            return exc.status, {"error": exc.message}, exc.headers
        except JobQueueFull as exc:
            obs.count("service.http_errors")
            return 429, {"error": str(exc)}, {
                "Retry-After": str(
                    max(1, int(self.scheduler.config.retry_after_s))
                )
            }
        except UnknownJob as exc:
            obs.count("service.http_errors")
            return 404, {"error": str(exc)}, {}
        except ServiceError as exc:
            obs.count("service.http_errors")
            return 400, {"error": str(exc)}, {}
        # The terminal 500 surface: anything unclassified must become a
        # response, never kill the connection handler.
        except Exception as exc:  # repro-lint: disable=DET201
            logger.exception("internal error handling %s %s", method, path)
            obs.count("service.http_errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    def _submit(
        self, body: Optional[dict]
    ) -> Tuple[int, Any, Dict[str, str]]:
        if body is None:
            raise _HttpError(400, "POST /jobs needs a JSON body")
        spec = JobSpec.from_payload(body)
        record = self.scheduler.submit(spec)
        return 201, {"job": record.to_payload()}, {}

    def _job_route(
        self, method: str, path: str
    ) -> Tuple[int, Any, Dict[str, str]]:
        parts = path.strip("/").split("/")
        # parts[0] == "jobs"
        if len(parts) == 2:
            job_id = parts[1]
            if method == "GET":
                record = self.scheduler.get(job_id)
                return 200, {"job": record.to_payload()}, {}
            if method == "DELETE":
                record = self.scheduler.get(job_id)
                if record.is_terminal:
                    raise _HttpError(
                        409, f"job {job_id} is already {record.state}"
                    )
                record = self.scheduler.cancel(job_id)
                return 200, {"job": record.to_payload()}, {}
            raise _HttpError(405, f"{method} not allowed on {path}")
        if len(parts) == 3 and parts[2] == "result":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            record = self.scheduler.get(parts[1])
            if record.result is None:
                raise _HttpError(
                    409,
                    f"job {record.job_id} is {record.state}; no result "
                    f"yet",
                )
            return 200, {
                "id": record.job_id,
                "state": record.state,
                "result": record.result,
            }, {}
        raise _HttpError(404, f"no route for {path}")

    # ------------------------------------------------------------------ #
    # read-only endpoints
    # ------------------------------------------------------------------ #

    def _healthz(self) -> dict:
        return {
            "status": "draining" if self.scheduler.draining else "ok",
            "version": self.version,
            "queue": {
                "depth": len(self.scheduler.queue),
                "limit": self.scheduler.queue.limit,
            },
            "workers": self.scheduler.config.workers,
            "jobs": self.scheduler.counts(),
        }

    def _metrics(self) -> dict:
        return {
            "service": {
                "queue": {
                    "depth": len(self.scheduler.queue),
                    "limit": self.scheduler.queue.limit,
                },
                "jobs": self.scheduler.counts(),
                "cache": self.scheduler.shared_cache.stats(),
            },
            "metrics": obs.get_metrics().snapshot(),
        }
