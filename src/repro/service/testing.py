"""Deterministic fake evaluators for service tests and smoke loads.

These are the canonical fakes the chaos/differential suites (and
``repro serve --guard fake``) run against: millisecond-scale, fully
deterministic, and computed with plain arithmetic on the genome — never
``hash()``, which would couple results to ``PYTHONHASHSEED`` and break
every bitwise assertion.  They live in the package (not in ``tests/``)
so a *subprocess* daemon can use them: the killed-daemon chaos test and
the CI smoke-load job both start ``repro serve --guard fake`` and need
the fake evaluator importable from the installed package.

``FakeGuard`` implements exactly the slice of the ``GDSIIGuard``
protocol the explorer and supervisor touch: ``run(config)`` returning
an object with ``objectives`` and ``constraint_violation``, plus the
constraint attributes (``n_drc``/``beta_power``/``baseline_power``) and
the ``incremental`` flag.
"""

from __future__ import annotations

import os
import time
from typing import Any, List, Tuple

from repro import obs
from repro.core.params import FlowConfig
from repro.redteam.surface import AttackAttempt, AttemptOutcome
from repro.resilience import faults
from repro.service.jobs import JobSpec
from repro.service.runner import GuardHandle

__all__ = [
    "FakeResult",
    "FakeGuard",
    "ObsFakeGuard",
    "FakeAttackSurface",
    "FakeGuardFactory",
]

#: RWS gene count the fake parameter space uses everywhere.
FAKE_NUM_LAYERS = 3


class FakeResult:
    """Minimal stand-in for FlowResult: objectives + a violation hook."""

    def __init__(
        self, objectives: Tuple[float, ...], violation: float = 0.0
    ) -> None:
        self.objectives = objectives
        self._violation = violation

    def constraint_violation(
        self, n_drc: int, beta_power: float, base_power: float
    ) -> float:
        return self._violation


class FakeGuard:
    """Deterministic millisecond-scale evaluator with the guard protocol.

    Computes on ``config.canonical()`` — the evaluator must be invariant
    over canonical equivalence classes (a CS config ignores its LDA
    genes), exactly like the real flow.  The shared evaluation cache is
    keyed canonically, so a fake that read don't-care genes would let a
    warm cache serve a *different class representative's* objectives and
    break the bitwise differential contract.
    """

    n_drc = 20
    beta_power = 1.2
    baseline_power = 1.0
    incremental = True

    #: Optional per-evaluation sleep.  Changes *when* results arrive,
    #: never *what* they are, so bitwise oracles still hold — chaos
    #: tests widen their kill windows with it (in a daemon subprocess,
    #: via the ``REPRO_FAKE_EVAL_SLEEP_S`` environment knob).
    eval_sleep_s = 0.0

    def run(self, config: FlowConfig) -> FakeResult:
        if self.eval_sleep_s > 0:
            time.sleep(self.eval_sleep_s)
        c = config.canonical()
        s = (
            0.1 * c.lda_n
            + 0.01 * c.lda_n_iter
            + sum(c.rws_scales)
        ) * (1.0 if c.op_select == "CS" else 0.9)
        return FakeResult((round(s % 1.0, 6), round((s * 7) % 2.0, 6)))


class ObsFakeGuard(FakeGuard):
    """FakeGuard that emits an obs counter and honors flow-level faults,
    so tests can assert partial metric deltas survive injected failures."""

    def run(self, config: FlowConfig) -> FakeResult:
        obs.count("fake.evals")
        faults.maybe_flow_fault()
        return super().run(config)


class FakeAttackSurface:
    """Deterministic millisecond-scale attack surface for campaign tests.

    Success is plain arithmetic on the attempt seed (which is itself a
    sha256 digest of the attempt coordinates, so ``seed % 997`` is a
    uniform-enough coin): an attempt succeeds when its coin clears the
    surface's ``resistance``.  A hardened fake is simply a surface with
    higher resistance, which keeps the CI gate's hardened-vs-baseline
    success-rate comparison meaningful on the fake tier.  Outcome dicts
    carry the full real-surface schema so report renderers and goldens
    exercise identical shapes.
    """

    n_drc = 0
    beta_power = 0.0
    baseline_power = 1.0

    def __init__(self, target_id: str, resistance: float = 0.25) -> None:
        self.target_id = target_id
        self.resistance = resistance

    def run(self, attempt: AttackAttempt) -> AttemptOutcome:
        obs.count("fake.attacks")
        faults.maybe_flow_fault()
        coin = (attempt.seed % 997) / 997.0
        success = coin >= self.resistance
        sites = attempt.point.thresh_er + attempt.seed % 17
        gates = len(attempt.point.trojan_spec().gate_masters)
        outcome = {
            "target": attempt.target,
            "spec_id": attempt.point.spec_id,
            "attempt": attempt.attempt,
            "seed": attempt.seed,
            "success": success,
            "reason": (
                "fake implant seated" if success
                else "fake region resisted"
            ),
            "region_sites": sites if success else 0,
            "gates_placed": gates if success else 0,
            "tap_length_um": float(attempt.seed % 23) if success else 0.0,
            "region_distance_um": float(attempt.seed % 31),
            "tns_delta": -float(attempt.seed % 13) / 10.0 if success
            else None,
            "drc_delta": attempt.seed % 3 if success else None,
        }
        return AttemptOutcome(outcome)


class FakeGuardFactory:
    """Guard factory serving :class:`ObsFakeGuard` for any design name.

    The design key embeds the name so two fake "designs" never share
    cache entries; the guard honors injected faults so served chaos
    scenarios exercise the same recovery paths as direct explorations.
    """

    def __init__(self, guard_cls: "type[FakeGuard]" = ObsFakeGuard) -> None:
        self.guard_cls = guard_cls
        # `repro serve --guard fake` runs in a subprocess, so chaos
        # tests pass the throttle through the environment.
        self.eval_sleep_s = float(
            os.environ.get("REPRO_FAKE_EVAL_SLEEP_S", "0") or 0.0
        )

    def validate(self, design: str) -> None:
        pass  # any non-empty name is a valid fake design

    def build(self, design: str) -> GuardHandle:
        guard = self.guard_cls()
        if self.eval_sleep_s > 0:
            guard.eval_sleep_s = self.eval_sleep_s
        return GuardHandle(
            guard=guard,
            design_key=f"fake:{design}",
            num_layers=FAKE_NUM_LAYERS,
        )

    def build_attack(self, spec: JobSpec) -> List[Tuple[str, Any]]:
        """Fake campaign targets: baseline, plus a tougher hardened
        surface whenever the spec carries a flow configuration."""
        targets: List[Tuple[str, Any]] = [
            ("baseline", FakeAttackSurface("baseline", resistance=0.25))
        ]
        if spec.config is not None:
            targets.append(
                ("hardened", FakeAttackSurface("hardened", resistance=0.6))
            )
        return targets
