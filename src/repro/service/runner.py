"""Synchronous per-job execution (runs inside a worker slot thread).

The runner is the bridge between a :class:`~repro.service.jobs.JobSpec`
and the existing flow machinery: it builds the design's guard through a
pluggable :class:`GuardFactory`, wires a
:class:`~repro.optimize.explorer.ParetoExplorer` with the job's
checkpoint directory, cancellation probe, and progress hook, pre-warms
the explorer's memo table from the daemon-wide shared cache, and encodes
the final Pareto front with the same codec the checkpoints use — so a
service result is byte-comparable against a direct CLI run.

Nothing here touches scheduler state: the runner receives plain values
and returns (or raises) plain values, keeping every mutation of the
:class:`~repro.service.jobs.JobRecord` on the event loop.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.params import FlowConfig, ParameterSpace
from repro.errors import ServiceError
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import Individual, NSGA2Config
from repro.redteam.campaign import AttackCampaign
from repro.redteam.grid import AttackGrid
from repro.resilience.checkpoint import (
    decode_flow_config,
    encode_flow_config,
)
from repro.resilience.supervisor import SupervisionConfig
from repro.service.cache import SharedEvalCache
from repro.service.jobs import JobSpec

__all__ = [
    "GuardHandle",
    "DesignGuardFactory",
    "encode_front",
    "run_explore_job",
    "run_harden_job",
    "run_attack_job",
]


@dataclass
class GuardHandle:
    """What a guard factory hands the runner for one design.

    Attributes:
        guard: The evaluator (``GDSIIGuard`` or a protocol-compatible
            fake) bound to the design's baseline.
        design_key: Shared-cache key — must change whenever the design
            content changes, so stale evaluations can never be served.
        num_layers: RWS gene count of the design's parameter space.
    """

    guard: Any
    design_key: str
    num_layers: int


class DesignGuardFactory:
    """Builds real benchmark designs (the production factory)."""

    def validate(self, design: str) -> None:
        from repro.bench.designs import DESIGN_NAMES

        if design not in DESIGN_NAMES:
            raise ServiceError(
                f"unknown design {design!r}; pick one of "
                f"{', '.join(DESIGN_NAMES)}"
            )

    def build(self, design: str) -> GuardHandle:
        from repro.bench.designs import build_design
        from repro.core.flow import GDSIIGuard

        self.validate(design)
        d = build_design(design)
        guard = GDSIIGuard(
            d.layout,
            d.constraints,
            d.assets,
            baseline_routing=d.routing,
        )
        # Cheap content fingerprint: a changed generator or technology
        # shifts cell count / period, invalidating the cache key.
        fingerprint = (
            f"{len(d.layout.placements)}:{d.constraints.clock_period:.6f}"
        )
        return GuardHandle(
            guard=guard,
            design_key=f"{design}:{fingerprint}",
            num_layers=d.technology.num_layers,
        )

    def build_attack(self, spec: JobSpec) -> List[Tuple[str, Any]]:
        """Build the campaign targets for an attack job.

        Always includes the unhardened ``baseline``; when the spec
        carries a flow configuration, the design is hardened with it
        and attacked as a second ``hardened`` target — the pairing the
        CI gate's hardened-vs-baseline comparison consumes.
        """
        from repro.bench.designs import build_design
        from repro.core.flow import GDSIIGuard
        from repro.redteam.surface import LayoutAttackSurface
        from repro.timing.sta import run_sta

        self.validate(spec.design)
        d = build_design(spec.design)
        targets: List[Tuple[str, Any]] = [
            (
                "baseline",
                LayoutAttackSurface(
                    "baseline", d.layout, d.sta, d.assets,
                    routing=d.routing, constraints=d.constraints,
                ),
            )
        ]
        if spec.config is not None:
            guard = GDSIIGuard(
                d.layout, d.constraints, d.assets,
                baseline_routing=d.routing,
            )
            hardened = guard.run(decode_flow_config(dict(spec.config)))
            sta = run_sta(
                hardened.layout, d.constraints, routing=hardened.routing
            )
            targets.append(
                (
                    "hardened",
                    LayoutAttackSurface(
                        "hardened", hardened.layout, sta, d.assets,
                        routing=hardened.routing,
                        constraints=d.constraints,
                    ),
                )
            )
        return targets


# ---------------------------------------------------------------------- #
# result encoding
# ---------------------------------------------------------------------- #


def _encode_individual(ind: Individual) -> dict:
    return {
        "genome": encode_flow_config(ind.genome),
        "objectives": list(ind.objectives),
        "violation": ind.violation,
    }


def _front_sort_key(entry: dict) -> tuple:
    g = entry["genome"]
    return (
        entry["objectives"],
        entry["violation"],
        g["op_select"],
        g["lda_n"],
        g["lda_n_iter"],
        g["rws_scales"],
    )


def encode_front(individuals: List[Individual]) -> List[dict]:
    """Order-independent, bitwise-comparable Pareto-front encoding."""
    entries = [_encode_individual(i) for i in individuals]
    entries.sort(key=_front_sort_key)
    return entries


# ---------------------------------------------------------------------- #
# job execution
# ---------------------------------------------------------------------- #


def run_explore_job(
    spec: JobSpec,
    handle: GuardHandle,
    checkpoint_dir: Path,
    shared_cache: Optional[SharedEvalCache] = None,
    stop_event: Optional[threading.Event] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    supervision: Optional[SupervisionConfig] = None,
) -> dict:
    """Run one exploration job to completion (or cancellation).

    Raises :class:`~repro.errors.ExplorationCancelled` when
    ``stop_event`` fires at a generation boundary — the checkpoint in
    ``checkpoint_dir`` is durable by then, so the scheduler can hand it
    to a later resume.
    """

    def on_generation(generation: int, population: List[Individual]) -> None:
        if progress is None:
            return
        front = [i for i in population if i.rank == 0 and i.feasible]
        progress(
            {
                "generation": generation,
                "generations": spec.generations,
                "front_size": len(front),
                "front": encode_front(front),
            }
        )

    explorer = ParetoExplorer(
        handle.guard,
        space=ParameterSpace(handle.num_layers),
        config=NSGA2Config(
            population_size=spec.population,
            generations=spec.generations,
            seed=spec.seed,
        ),
        processes=spec.processes,
        checkpoint_dir=checkpoint_dir,
        resume=spec.resume,
        supervision=supervision or SupervisionConfig(),
        should_stop=(stop_event.is_set if stop_event is not None else None),
        on_generation=on_generation,
    )
    if shared_cache is not None:
        # Pre-warm: memoized values equal what an evaluation would
        # compute, so warm results stay bitwise identical to cold ones.
        explorer._cache.update(
            shared_cache.snapshot_for(handle.design_key)
        )
    try:
        result = explorer.explore()
    finally:
        if shared_cache is not None:
            shared_cache.absorb(handle.design_key, explorer._cache)
    res = result.resilience.as_dict() if result.resilience else {}
    return {
        "kind": "explore",
        "design": spec.design,
        "seed": spec.seed,
        "population": spec.population,
        "generations": spec.generations,
        "front": encode_front(result.pareto_front),
        "evaluations": result.evaluations,
        "cache_requests": result.cache_requests,
        "cache_hits": result.cache_hits,
        "resumed_from": result.resumed_from,
        "resilience": res,
    }


def run_harden_job(spec: JobSpec, handle: GuardHandle) -> dict:
    """Run one fixed-configuration harden job."""
    config = _harden_config(spec, handle)
    result = handle.guard.run(config)
    violation = result.constraint_violation(
        n_drc=handle.guard.n_drc,
        beta_power=handle.guard.beta_power,
        base_power=handle.guard.baseline_power,
    )
    return {
        "kind": "harden",
        "design": spec.design,
        "config": encode_flow_config(config),
        "objectives": list(result.objectives),
        "violation": violation,
    }


def _harden_config(spec: JobSpec, handle: GuardHandle) -> FlowConfig:
    if spec.config is not None:
        return decode_flow_config(dict(spec.config))
    return ParameterSpace(handle.num_layers).default()


def run_attack_job(
    spec: JobSpec,
    targets: List[Tuple[str, Any]],
    checkpoint_dir: Path,
    stop_event: Optional[threading.Event] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    supervision: Optional[SupervisionConfig] = None,
) -> dict:
    """Run one red-team attack campaign to completion (or cancellation).

    Batches map onto the scheduler's generation-based progress/cancel
    machinery one-to-one: the campaign checkpoints after every batch and
    raises :class:`~repro.errors.ExplorationCancelled` when
    ``stop_event`` fires at a batch boundary, so cancel, drain, retry,
    and ``resume_from`` handoff all behave exactly as for explore jobs.
    """

    def on_batch(batch: int, total: int, row: Dict[str, Any]) -> None:
        if progress is None:
            return
        progress(
            {
                # completed-batch count, so a finished campaign reads N/N
                "generation": batch + 1,
                "generations": total,
                "target": row["target"],
                "spec_id": row["spec_id"],
                "successes": row["successes"],
                "attempts": row["attempts"],
            }
        )

    campaign = AttackCampaign(
        targets,
        AttackGrid.preset(spec.grid),
        attempts=spec.attempts,
        seed=spec.seed,
        processes=spec.processes,
        checkpoint_dir=checkpoint_dir,
        resume=spec.resume,
        supervision=supervision or SupervisionConfig(),
        should_stop=(stop_event.is_set if stop_event is not None else None),
        on_batch=on_batch,
    )
    result = campaign.run()
    res = result.resilience.as_dict() if result.resilience else {}
    return {
        "kind": "attack",
        "design": spec.design,
        "seed": spec.seed,
        "grid": spec.grid,
        "attempts": spec.attempts,
        "summary": result.summary(),
        "resumed_from": result.resumed_from,
        "resilience": res,
    }
