"""Job specs, records, and the job state machine.

A :class:`JobSpec` is what a client submits (``POST /jobs``); a
:class:`JobRecord` is everything the service tracks about it: the state
history, progress (generation + Pareto-front-so-far), resilience
counters, and the final result payload.  Records serialize to JSON so
the :mod:`repro.service.store` journal can persist them and a restarted
daemon (``repro serve --resume``) can pick unfinished jobs back up.

State machine::

    queued ──▶ running ──▶ done
      │          │  ▲  ╲──▶ failed
      │          ▼  │
      │       retrying        (job-level retry; explorer checkpoint
      │          │             makes the re-run bitwise-continuable)
      ▼          ▼
    cancelled ◀─ cancelling   (DELETE /jobs/<id>; checkpoint handoff)

``interrupted`` is the journal-only state a draining daemon leaves
behind: on restart those jobs are re-enqueued with ``resume=True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError

__all__ = ["JobSpec", "JobRecord", "JobState", "JOB_KINDS"]

JOB_KINDS = ("explore", "harden", "attack")


class JobState:
    """String constants for the job lifecycle (not an Enum so records
    JSON-serialize without a codec and the API surface stays plain)."""

    QUEUED = "queued"
    RUNNING = "running"
    RETRYING = "retrying"
    CANCELLING = "cancelling"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    INTERRUPTED = "interrupted"

    #: States with nothing left to run.
    TERMINAL = (DONE, FAILED, CANCELLED)
    #: Journal states a restarted daemon must re-enqueue.
    RESUMABLE = (QUEUED, RUNNING, RETRYING, CANCELLING, INTERRUPTED)
    ALL = TERMINAL + RESUMABLE


def _now() -> float:
    """Wall-clock job timestamps (service layer only, not core flow).

    The single sanctioned clock read in the service tree: timestamps
    are operator telemetry on the journal envelope and are excluded
    from the bitwise resume/replay comparisons.
    """
    return time.time()  # repro-lint: disable=DET104 journal-envelope telemetry, excluded from replay diffs


@dataclass(frozen=True)
class JobSpec:
    """What a client asked for.

    Attributes:
        kind: ``"explore"`` (NSGA-II front), ``"harden"`` (one fixed
            flow configuration), or ``"attack"`` (red-team campaign).
        design: Benchmark design name (or a name the daemon's guard
            factory understands — ``repro serve --guard fake`` accepts
            anything).
        priority: Larger runs earlier; FIFO within equal priority.
        seed: GA seed (explore) — the differential contract is keyed on
            it.
        population / generations: GA budget for explore jobs.
        processes: Supervised worker processes per evaluation batch
            (0 = inline serial evaluation inside the job slot).
        resume: Continue from this job's checkpoint directory if one
            exists (set automatically for jobs resurrected by
            ``--resume``).
        resume_from: Job id whose checkpoint lineage to continue — the
            cancel handoff: ``DELETE`` a running job, then resubmit the
            same spec with ``resume_from`` set to its id and the new
            job picks up at the cancelled job's last durable generation
            (implies ``resume``).
        config: Optional fixed flow configuration for harden jobs
            (``op_select``/``lda_n``/``lda_n_iter``/``rws_scales``);
            ``None`` hardens with the parameter-space default.  Attack
            jobs reuse it as the flow configuration to harden the
            second campaign target with (``None`` attacks the baseline
            layout only).
        attempts: Seeded insertion attempts per grid spec (attack jobs).
        grid: Named attack-grid preset (attack jobs).
    """

    kind: str = "explore"
    design: str = ""
    priority: int = 0
    seed: int = 0
    population: int = 8
    generations: int = 3
    processes: int = 0
    resume: bool = False
    resume_from: Optional[str] = None
    config: Optional[dict] = None
    attempts: int = 4
    grid: str = "quick"

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"job kind {self.kind!r} not in {JOB_KINDS}"
            )
        if self.resume_from and not self.resume:
            object.__setattr__(self, "resume", True)
        if not self.design:
            raise ServiceError("job spec needs a design name")
        if self.population < 2:
            raise ServiceError("population must be >= 2")
        if self.generations < 0:
            raise ServiceError("generations must be >= 0")
        if self.processes < 0:
            raise ServiceError("processes must be >= 0")
        if self.attempts < 1:
            raise ServiceError("attempts must be >= 1")
        if not self.grid:
            raise ServiceError("job spec needs an attack grid name")

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "design": self.design,
            "priority": self.priority,
            "seed": self.seed,
            "population": self.population,
            "generations": self.generations,
            "processes": self.processes,
            "resume": self.resume,
            "resume_from": self.resume_from,
            "config": dict(self.config) if self.config else None,
            "attempts": self.attempts,
            "grid": self.grid,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ServiceError("job spec must be a JSON object")
        unknown = set(payload) - {
            "kind", "design", "priority", "seed", "population",
            "generations", "processes", "resume", "resume_from",
            "config", "attempts", "grid",
        }
        if unknown:
            raise ServiceError(
                f"unknown job spec fields: {', '.join(sorted(unknown))}"
            )
        config = payload.get("config")
        if config is not None and not isinstance(config, dict):
            raise ServiceError("job spec 'config' must be a JSON object")
        try:
            return cls(
                kind=str(payload.get("kind", "explore")),
                design=str(payload.get("design", "")),
                priority=int(payload.get("priority", 0)),
                seed=int(payload.get("seed", 0)),
                population=int(payload.get("population", 8)),
                generations=int(payload.get("generations", 3)),
                processes=int(payload.get("processes", 0)),
                resume=bool(payload.get("resume", False)),
                resume_from=(
                    str(payload["resume_from"])
                    if payload.get("resume_from") else None
                ),
                config=config,
                attempts=int(payload.get("attempts", 4)),
                grid=str(payload.get("grid", "quick")),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job spec: {exc}") from exc


@dataclass
class JobRecord:
    """Everything the service knows about one job.

    ``history`` is the full state trail (``[state, timestamp]`` pairs)
    — chaos tests assert the exact transition sequence against it.
    ``progress`` is refreshed at every generation boundary with the
    generation index and the Pareto-front-so-far.  ``result`` is the
    final payload ``GET /jobs/<id>/result`` serves.
    """

    job_id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    history: List[Tuple[str, float]] = field(default_factory=list)
    submitted_at: float = field(default_factory=_now)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    progress: Dict[str, Any] = field(default_factory=dict)
    result: Optional[dict] = None
    resilience: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.history:
            self.history.append((self.state, self.submitted_at))

    # -- state machine ------------------------------------------------- #

    def transition(self, state: str) -> None:
        if state not in JobState.ALL:
            raise ServiceError(f"unknown job state {state!r}")
        if self.state in JobState.TERMINAL:
            raise ServiceError(
                f"job {self.job_id} is {self.state}; cannot move to "
                f"{state}"
            )
        stamp = _now()
        self.state = state
        self.history.append((state, stamp))
        if state == JobState.RUNNING and self.started_at is None:
            self.started_at = stamp
        if state in JobState.TERMINAL:
            self.finished_at = stamp

    @property
    def states(self) -> List[str]:
        """The transition trail without timestamps (test-friendly)."""
        return [s for s, _ in self.history]

    @property
    def is_terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    # -- codec ---------------------------------------------------------- #

    def to_payload(self) -> dict:
        return {
            "id": self.job_id,
            "spec": self.spec.to_payload(),
            "state": self.state,
            "history": [[s, t] for s, t in self.history],
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "progress": dict(self.progress),
            "resilience": dict(self.resilience),
            "has_result": self.result is not None,
        }

    def summary(self) -> dict:
        """The ``GET /jobs`` listing row."""
        return {
            "id": self.job_id,
            "kind": self.spec.kind,
            "design": self.spec.design,
            "priority": self.spec.priority,
            "seed": self.spec.seed,
            "state": self.state,
            "generation": self.progress.get("generation"),
        }

    def to_journal(self) -> dict:
        """The persisted form (adds the result so resume can serve it)."""
        body = self.to_payload()
        body["result"] = self.result
        return body

    @classmethod
    def from_journal(cls, payload: dict) -> "JobRecord":
        try:
            record = cls(
                job_id=str(payload["id"]),
                spec=JobSpec.from_payload(payload["spec"]),
                state=str(payload["state"]),
                history=[(str(s), float(t)) for s, t in payload["history"]],
                submitted_at=float(payload["submitted_at"]),
                started_at=payload.get("started_at"),
                finished_at=payload.get("finished_at"),
                attempts=int(payload.get("attempts", 0)),
                error=payload.get("error"),
                progress=dict(payload.get("progress") or {}),
                result=payload.get("result"),
                resilience=dict(payload.get("resilience") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"malformed job journal entry: {exc}"
            ) from exc
        if record.state not in JobState.ALL:
            raise ServiceError(
                f"job {record.job_id} has unknown state "
                f"{record.state!r} in the journal"
            )
        return record
