"""Thin stdlib HTTP client for the service (``repro submit``/``jobs``).

Wraps ``urllib.request`` — no dependencies — and maps the service's
error contract back into exceptions: 429 raises
:class:`~repro.errors.JobQueueFull` carrying the ``Retry-After`` hint,
every other non-2xx raises :class:`~repro.errors.ServiceError` with the
server's message.  ``submit`` can transparently honor backpressure by
retrying after the advertised delay.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.errors import JobQueueFull, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """JSON client bound to one daemon base URL."""

    def __init__(
        self, base_url: str, timeout_s: float = 30.0
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
    ) -> Dict[str, Any]:
        data = (
            json.dumps(body).encode() if body is not None else None
        )
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as exc:
            detail = self._error_detail(exc)
            if exc.code == 429:
                retry_after = exc.headers.get("Retry-After", "1")
                err = JobQueueFull(detail)
                err.retry_after_s = float(retry_after)
                raise err from exc
            raise ServiceError(f"{exc.code}: {detail}") from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(exc.read().decode() or "{}")
            return str(payload.get("error", exc.reason))
        except (json.JSONDecodeError, OSError):
            return str(exc.reason)

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(
        self,
        spec: dict,
        honor_backpressure: bool = False,
        max_backpressure_retries: int = 10,
    ) -> dict:
        """``POST /jobs``; optionally wait out 429s as advertised."""
        attempts = 0
        while True:
            try:
                return self._request("POST", "/jobs", body=spec)["job"]
            except JobQueueFull as exc:
                attempts += 1
                if (
                    not honor_backpressure
                    or attempts > max_backpressure_retries
                ):
                    raise
                time.sleep(getattr(exc, "retry_after_s", 1.0))

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")["result"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")["job"]

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.05,
        until_states: Optional[tuple] = None,
    ) -> dict:
        """Poll until the job reaches a terminal (or requested) state."""
        from repro.service.jobs import JobState

        states = until_states or JobState.TERMINAL
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.job(job_id)
            if record["state"] in states:
                return record
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout_s}s waiting for job "
                    f"{job_id} (still {record['state']})"
                )
            time.sleep(poll_s)
