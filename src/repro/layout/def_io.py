"""DEF-like text serialization of layouts.

The format is a small, line-oriented dialect of DEF carrying exactly what
:class:`~repro.layout.Layout` owns: core dimensions, component placements
(in row/site units), fixed markers, partial blockages, and port pin
positions.  The netlist travels separately (structural Verilog, see
:mod:`repro.netlist.verilog`), mirroring the real DEF/Verilog split.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import SerializationError
from repro.geometry import Point, Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.tech.technology import Technology


def layout_to_def(layout: Layout) -> str:
    """Render a layout as DEF-like text."""
    lines = [
        f"DESIGN {layout.netlist.name}",
        f"CORE ROWS {layout.num_rows} SITES {layout.sites_per_row}",
    ]
    for name, pl in sorted(layout.placements.items()):
        fixed = " FIXED" if name in layout.fixed else ""
        lines.append(f"COMPONENT {name} ROW {pl.row} SITE {pl.start}{fixed}")
    for b in layout.blockages.values():
        r = b.rect
        lines.append(
            f"BLOCKAGE {b.name} RECT {r.xlo} {r.ylo} {r.xhi} {r.yhi} "
            f"DENSITY {b.max_density}"
        )
    for port, p in sorted(layout.port_positions.items()):
        lines.append(f"PIN {port} AT {p.x} {p.y}")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def layout_from_def(
    text: str, netlist: Netlist, technology: Technology
) -> Layout:
    """Parse :func:`layout_to_def` output back into a :class:`Layout`."""
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith("DESIGN "):
        raise SerializationError("expected DESIGN header")
    design = lines[0].split()[1]
    if design != netlist.name:
        raise SerializationError(
            f"DEF is for design {design!r}, netlist is {netlist.name!r}"
        )
    if len(lines) < 2 or not lines[1].startswith("CORE "):
        raise SerializationError("expected CORE line")
    core_tokens = lines[1].split()
    try:
        num_rows = int(core_tokens[2])
        sites_per_row = int(core_tokens[4])
    except (IndexError, ValueError) as exc:
        raise SerializationError(f"malformed CORE line: {lines[1]!r}") from exc

    layout = Layout(netlist, technology, num_rows=num_rows, sites_per_row=sites_per_row)
    for line in lines[2:]:
        if line == "END DESIGN":
            break
        tokens = line.split()
        kind = tokens[0]
        try:
            if kind == "COMPONENT":
                name = tokens[1]
                row = int(tokens[3])
                site = int(tokens[5])
                layout.place(name, row, site)
                if tokens[-1] == "FIXED":
                    layout.fixed.add(name)
            elif kind == "BLOCKAGE":
                rect = Rect(
                    float(tokens[3]),
                    float(tokens[4]),
                    float(tokens[5]),
                    float(tokens[6]),
                )
                layout.add_blockage(
                    PlacementBlockage(
                        name=tokens[1], rect=rect, max_density=float(tokens[8])
                    )
                )
            elif kind == "PIN":
                layout.port_positions[tokens[1]] = Point(
                    float(tokens[3]), float(tokens[4])
                )
            else:
                raise SerializationError(f"unknown record {kind!r}")
        except (IndexError, ValueError) as exc:
            raise SerializationError(f"malformed line: {line!r}") from exc
    layout.validate()
    return layout


def save_def(layout: Layout, path: Union[str, Path]) -> None:
    """Write a layout to ``path`` as DEF-like text."""
    Path(path).write_text(layout_to_def(layout))


def load_def(
    path: Union[str, Path], netlist: Netlist, technology: Technology
) -> Layout:
    """Read a layout previously written by :func:`save_def`."""
    return layout_from_def(Path(path).read_text(), netlist, technology)
