"""Gap graph: the paper's undirected model of empty sites (§III-B-1).

A *gap* (the paper's vertex ``v``) is a maximal run of contiguous free
sites in one row; its weight ``w(v)`` is the number of sites.  Two gaps are
connected iff they sit in adjacent rows and overlap in x (some of their
sites are vertically aligned).  A *component* ``C`` is a connected subgraph;
``w(C)`` is the sum of its gaps' weights.  Components with
``w(C) >= thresh_er`` are exploitable regions (before the exploitable-
distance filter applied by :mod:`repro.security.exploitable`).

Connectivity is computed with union-find; tests cross-check against a DFS
oracle (networkx), matching the paper's DFS formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Interval


@dataclass(frozen=True)
class Gap:
    """One maximal free interval: the gap graph's vertex.

    Attributes:
        row: Row index.
        lo: First free site (inclusive).
        hi: One past the last free site.
    """

    row: int
    lo: int
    hi: int

    @property
    def weight(self) -> int:
        """Number of free sites, the paper's ``w(v)``."""
        return self.hi - self.lo

    @property
    def interval(self) -> Interval:
        """The gap's site interval."""
        return Interval(self.lo, self.hi)

    def x_overlaps(self, other: "Gap") -> bool:
        """Whether the two gaps share at least one x (site column)."""
        return self.lo < other.hi and other.lo < self.hi


@dataclass
class GapComponent:
    """A connected component of the gap graph (the paper's ``C``)."""

    gaps: List[Gap] = field(default_factory=list)

    @property
    def weight(self) -> int:
        """Total free sites, the paper's ``w(C)``."""
        return sum(g.weight for g in self.gaps)

    def rows(self) -> List[int]:
        """Sorted distinct row indices the component spans."""
        return sorted({g.row for g in self.gaps})

    def bounding_sites(self) -> Tuple[int, int]:
        """(min lo, max hi) over all gaps — x extent in sites."""
        return (min(g.lo for g in self.gaps), max(g.hi for g in self.gaps))


class _UnionFind:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


class GapGraph:
    """The gap graph of a set of rows.

    Built from per-row gap lists (``rows_gaps[i]`` = sorted gaps of row i).
    Exposes component queries keyed by gap, as Algorithm 1 requires
    (``compo(v)``).
    """

    def __init__(self, rows_gaps: Sequence[Sequence[Gap]]) -> None:
        self._gaps: List[Gap] = [g for row in rows_gaps for g in row]
        self._rows_gaps: List[List[Gap]] = [list(row) for row in rows_gaps]
        self._index: Dict[Gap, int] = {g: i for i, g in enumerate(self._gaps)}
        self._uf = _UnionFind(len(self._gaps))
        self._link_adjacent_rows()
        self._component_weight: Dict[int, int] = {}
        for i, g in enumerate(self._gaps):
            root = self._uf.find(i)
            self._component_weight[root] = self._component_weight.get(root, 0) + g.weight

    @classmethod
    def from_free_intervals(
        cls, intervals_per_row: Sequence[Sequence[Interval]]
    ) -> "GapGraph":
        """Build from :meth:`RowOccupancy.free_intervals` output per row."""
        rows_gaps = [
            [Gap(row=r, lo=iv.lo, hi=iv.hi) for iv in ivs]
            for r, ivs in enumerate(intervals_per_row)
        ]
        return cls(rows_gaps)

    def _link_adjacent_rows(self) -> None:
        """Union gaps in adjacent rows that overlap in x (two-pointer scan)."""
        for r in range(len(self._rows_gaps) - 1):
            lower = self._rows_gaps[r]
            upper = self._rows_gaps[r + 1]
            i = j = 0
            while i < len(lower) and j < len(upper):
                a, b = lower[i], upper[j]
                if a.x_overlaps(b):
                    self._uf.union(self._index[a], self._index[b])
                if a.hi <= b.hi:
                    i += 1
                else:
                    j += 1

    @property
    def gaps(self) -> List[Gap]:
        """All gaps (vertices) of the graph."""
        return list(self._gaps)

    def row_gaps(self, row: int) -> List[Gap]:
        """Gaps of one row, left to right."""
        return list(self._rows_gaps[row])

    def component_weight_of(self, gap: Gap) -> int:
        """The paper's ``w(compo(v))`` for vertex ``gap``."""
        root = self._uf.find(self._index[gap])
        return self._component_weight[root]

    def component_of(self, gap: Gap) -> GapComponent:
        """Materialize the component containing ``gap``."""
        root = self._uf.find(self._index[gap])
        members = [
            g for i, g in enumerate(self._gaps) if self._uf.find(i) == root
        ]
        return GapComponent(gaps=members)

    def components(self) -> List[GapComponent]:
        """All connected components."""
        by_root: Dict[int, GapComponent] = {}
        for i, g in enumerate(self._gaps):
            by_root.setdefault(self._uf.find(i), GapComponent()).gaps.append(g)
        return list(by_root.values())

    def exploitable_components(self, thresh_er: int) -> List[GapComponent]:
        """Components whose weight reaches ``thresh_er``."""
        return [c for c in self.components() if c.weight >= thresh_er]

    def same_component(self, a: Gap, b: Gap) -> bool:
        """Whether two gaps share a component."""
        return self._uf.find(self._index[a]) == self._uf.find(self._index[b])
