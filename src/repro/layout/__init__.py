"""Physical layout substrate: rows, site occupancy, blockages, layouts."""

from repro.layout.rows import CoreRow, RowOccupancy, RowPlacement
from repro.layout.gaps import Gap, GapComponent, GapGraph
from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout, Placement
from repro.layout.def_io import load_def, save_def, layout_to_def, layout_from_def

__all__ = [
    "CoreRow",
    "RowOccupancy",
    "RowPlacement",
    "Gap",
    "GapComponent",
    "GapGraph",
    "PlacementBlockage",
    "Layout",
    "Placement",
    "load_def",
    "save_def",
    "layout_to_def",
    "layout_from_def",
]
