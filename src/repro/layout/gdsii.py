"""GDSII-like stream writer — the tapeout artifact the paper is named for.

Writes a layout as a GDSII stream file: the real record structure (HEADER,
BGNLIB, LIBNAME, UNITS, BGNSTR/STRNAME, BOUNDARY/SREF elements, ENDSTR,
ENDLIB) with big-endian record framing, so standard GDSII viewers can open
the result.  The geometry written is the placement view: one structure per
cell master (its outline on a "device" layer), one SREF per placed
instance, plus the core outline — which is exactly the information the
paper's threat model says the foundry-side attacker starts from.

Timestamps are fixed (2023-07-09, the paper's DAC week) so output is
byte-reproducible.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.layout.layout import Layout

# GDSII record types / data types
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_SREF = 0x0A00
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_SNAME = 0x1206
_ENDEL = 0x1100
_ENDLIB = 0x0400

#: layer numbers used in the stream
OUTLINE_LAYER = 235  # core outline
DEVICE_LAYER = 1  # cell outlines

#: fixed timestamp: 2023-07-09 00:00:00 (DAC 2023 week), ×2 for mod/access
_TIMESTAMP = (2023, 7, 9, 0, 0, 0) * 2

#: database unit: 1 nm in user units of µm
_DB_PER_UM = 1000


def _record(rec_type: int, payload: bytes = b"") -> bytes:
    """Frame one GDSII record (big-endian length + type)."""
    length = 4 + len(payload)
    if length % 2:
        payload += b"\0"
        length += 1
    return struct.pack(">HH", length, rec_type) + payload


def _ascii(rec_type: int, text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\0"
    return _record(rec_type, data)


def _int16s(rec_type: int, values: Tuple[int, ...]) -> bytes:
    return _record(rec_type, struct.pack(f">{len(values)}h", *values))


def _int32s(rec_type: int, values: List[int]) -> bytes:
    return _record(rec_type, struct.pack(f">{len(values)}i", *values))


def _real8(value: float) -> bytes:
    """GDSII 8-byte excess-64 real."""
    if value == 0:
        return b"\0" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    data = struct.pack(">Q", mantissa)
    return bytes([sign | exponent]) + data[1:]


def _rect_xy(xlo: float, ylo: float, xhi: float, yhi: float) -> List[int]:
    """Closed 5-point boundary in database units."""
    pts = [
        (xlo, ylo),
        (xhi, ylo),
        (xhi, yhi),
        (xlo, yhi),
        (xlo, ylo),
    ]
    out: List[int] = []
    for x, y in pts:
        out.append(int(round(x * _DB_PER_UM)))
        out.append(int(round(y * _DB_PER_UM)))
    return out


def layout_to_gdsii(layout: Layout) -> bytes:
    """Serialize the layout's placement view as a GDSII stream."""
    tech = layout.technology
    out = bytearray()
    out += _record(_HEADER, struct.pack(">h", 600))
    out += _int16s(_BGNLIB, _TIMESTAMP)
    out += _ascii(_LIBNAME, layout.netlist.name.upper()[:32] or "DESIGN")
    # UNITS: user unit = 1e-3 (µm in mm?) — conventional: 1 db unit = 1e-9 m
    out += _record(_UNITS, _real8(1.0 / _DB_PER_UM) + _real8(1e-9))

    # One structure per distinct master used.
    masters: Dict[str, int] = {}
    for name in layout.placements:
        inst = layout.netlist.instance(name)
        masters.setdefault(inst.master.name, inst.width_sites)
    for master_name, width_sites in sorted(masters.items()):
        out += _int16s(_BGNSTR, _TIMESTAMP)
        out += _ascii(_STRNAME, master_name)
        out += _record(_BOUNDARY)
        out += _int16s(_LAYER, (DEVICE_LAYER,))
        out += _int16s(_DATATYPE, (0,))
        out += _int32s(
            _XY,
            _rect_xy(0, 0, width_sites * tech.site_width, tech.row_height),
        )
        out += _record(_ENDEL)
        out += _record(_ENDSTR)

    # Top structure: core outline + one SREF per placed instance.
    out += _int16s(_BGNSTR, _TIMESTAMP)
    out += _ascii(_STRNAME, "TOP")
    core = layout.core
    out += _record(_BOUNDARY)
    out += _int16s(_LAYER, (OUTLINE_LAYER,))
    out += _int16s(_DATATYPE, (0,))
    out += _int32s(_XY, _rect_xy(core.xlo, core.ylo, core.xhi, core.yhi))
    out += _record(_ENDEL)
    for name in sorted(layout.placements):
        pl = layout.placement(name)
        inst = layout.netlist.instance(name)
        x = pl.start * tech.site_width
        y = pl.row * tech.row_height
        out += _record(_SREF)
        out += _ascii(_SNAME, inst.master.name)
        out += _int32s(
            _XY, [int(round(x * _DB_PER_UM)), int(round(y * _DB_PER_UM))]
        )
        out += _record(_ENDEL)
    out += _record(_ENDSTR)
    out += _record(_ENDLIB)
    return bytes(out)


def save_gdsii(layout: Layout, path: Union[str, Path]) -> None:
    """Write the layout's GDSII stream to ``path``."""
    Path(path).write_bytes(layout_to_gdsii(layout))


def parse_structure_names(stream: bytes) -> List[str]:
    """Minimal reader: the STRNAME records of a GDSII stream (for tests)."""
    names: List[str] = []
    i = 0
    while i + 4 <= len(stream):
        (length, rec_type) = struct.unpack(">HH", stream[i : i + 4])
        if length < 4:
            break
        payload = stream[i + 4 : i + length]
        if rec_type == _STRNAME:
            names.append(payload.rstrip(b"\0").decode("ascii"))
        i += length
        if rec_type == _ENDLIB:
            break
    return names
