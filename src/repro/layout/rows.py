"""Core rows and per-row site occupancy.

A core row is a horizontal strip of placement sites.  Occupancy is kept as
a list of non-overlapping :class:`RowPlacement` records sorted by start
site; lookups use binary search.  This representation makes the queries the
Cell-Shift operator needs — "gap intervals of this row", "cell immediately
right of site s" — O(log n), and single-cell moves O(n) worst case (list
splice), which is plenty for the design sizes the benchmark suite builds.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import LayoutError
from repro.geometry import Interval


@dataclass(frozen=True)
class CoreRow:
    """Geometry of one core row.

    Attributes:
        index: 0-based row index, bottom row first.
        origin_x: x coordinate of site 0 (µm).
        y: y coordinate of the row's bottom edge (µm).
        num_sites: Number of placement sites in the row.
    """

    index: int
    origin_x: float
    y: float
    num_sites: int

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise LayoutError(f"row {self.index}: num_sites must be >= 1")


@dataclass
class RowPlacement:
    """One placed instance inside a row: sites ``[start, start+width)``."""

    name: str
    start: int
    width: int

    @property
    def end(self) -> int:
        """One past the last occupied site."""
        return self.start + self.width


class RowOccupancy:
    """Mutable site occupancy of a single core row."""

    def __init__(self, row: CoreRow) -> None:
        self.row = row
        self._starts: List[int] = []  # parallel to _items, sorted
        self._items: List[RowPlacement] = []
        #: bumped on every occupancy mutation; the vectorized kernels key
        #: their per-row bitmap caches on (occupancy, version).
        self.version = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def placements(self) -> List[RowPlacement]:
        """Placements sorted by start site (the internal list; don't mutate)."""
        return self._items

    @property
    def starts(self) -> List[int]:
        """Start-site index parallel to :attr:`placements` (don't mutate)."""
        return self._starts

    def used_sites(self) -> int:
        """Total number of occupied sites."""
        return sum(p.width for p in self._items)

    def _index_at_or_after(self, site: int) -> int:
        """Index of the first placement whose start is >= ``site``."""
        return bisect.bisect_left(self._starts, site)

    def placement_of(self, name: str, start_hint: Optional[int] = None) -> RowPlacement:
        """Find the placement record for instance ``name``.

        ``start_hint`` (its known start site) makes the lookup O(log n).
        """
        if start_hint is not None:
            i = bisect.bisect_left(self._starts, start_hint)
            if i < len(self._items) and self._items[i].name == name:
                return self._items[i]
        for p in self._items:
            if p.name == name:
                return p
        raise LayoutError(f"instance {name!r} not in row {self.row.index}")

    def can_place(self, start: int, width: int) -> bool:
        """Whether sites ``[start, start+width)`` are inside the row and free."""
        if start < 0 or start + width > self.row.num_sites or width < 1:
            return False
        i = self._index_at_or_after(start)
        if i < len(self._items) and self._items[i].start < start + width:
            return False
        if i > 0 and self._items[i - 1].end > start:
            return False
        return True

    def place(self, name: str, start: int, width: int) -> RowPlacement:
        """Occupy sites ``[start, start+width)`` for instance ``name``."""
        if not self.can_place(start, width):
            raise LayoutError(
                f"cannot place {name!r} at row {self.row.index} sites "
                f"[{start}, {start + width}): occupied or out of row"
            )
        p = RowPlacement(name=name, start=start, width=width)
        i = self._index_at_or_after(start)
        self._starts.insert(i, start)
        self._items.insert(i, p)
        self.version += 1
        return p

    def remove(self, name: str, start_hint: Optional[int] = None) -> RowPlacement:
        """Vacate the sites of instance ``name`` and return its record."""
        p = self.placement_of(name, start_hint)
        i = bisect.bisect_left(self._starts, p.start)
        del self._starts[i]
        del self._items[i]
        self.version += 1
        return p

    def move(self, name: str, new_start: int, start_hint: Optional[int] = None) -> None:
        """Move instance ``name`` to ``new_start`` within this row."""
        p = self.placement_of(name, start_hint)
        old_start = p.start
        if new_start == old_start:
            return
        i = bisect.bisect_left(self._starts, old_start)
        del self._starts[i]
        del self._items[i]
        if not self.can_place(new_start, p.width):
            # restore before failing
            self._starts.insert(i, old_start)
            self._items.insert(i, p)
            raise LayoutError(
                f"cannot move {name!r} to row {self.row.index} site {new_start}"
            )
        p.start = new_start
        j = self._index_at_or_after(new_start)
        self._starts.insert(j, new_start)
        self._items.insert(j, p)
        self.version += 1

    def cell_right_of(self, site: int) -> Optional[RowPlacement]:
        """First placement starting at or after ``site``."""
        i = self._index_at_or_after(site)
        if i < len(self._items):
            return self._items[i]
        return None

    def cell_left_of(self, site: int) -> Optional[RowPlacement]:
        """Last placement ending at or before ``site``."""
        i = self._index_at_or_after(site)
        # _items[i-1] starts before `site`; walk left until one ends <= site
        j = i - 1
        while j >= 0:
            if self._items[j].end <= site:
                return self._items[j]
            j -= 1
        return None

    def occupant_at(self, site: int) -> Optional[RowPlacement]:
        """Placement covering ``site``, or ``None`` when the site is free."""
        i = bisect.bisect_right(self._starts, site) - 1
        if i >= 0 and self._items[i].start <= site < self._items[i].end:
            return self._items[i]
        return None

    def free_intervals(self) -> List[Interval]:
        """Maximal free gaps of the row, left to right."""
        gaps: List[Interval] = []
        cursor = 0
        for p in self._items:
            if p.start > cursor:
                gaps.append(Interval(cursor, p.start))
            cursor = p.end
        if cursor < self.row.num_sites:
            gaps.append(Interval(cursor, self.row.num_sites))
        return gaps

    def free_sites(self) -> int:
        """Total number of free sites in the row."""
        return self.row.num_sites - self.used_sites()

    def largest_gap(self) -> int:
        """Width of the widest free gap (0 when the row is full)."""
        gaps = self.free_intervals()
        return max((len(g) for g in gaps), default=0)

    def check_invariants(self) -> None:
        """Assert internal consistency; used by tests and debug builds."""
        prev_end = 0
        for start, p in zip(self._starts, self._items):
            if start != p.start:
                raise LayoutError("row index desynchronized")
            if p.start < prev_end:
                raise LayoutError(
                    f"overlap in row {self.row.index} at site {p.start}"
                )
            if p.end > self.row.num_sites:
                raise LayoutError(f"{p.name!r} exceeds row {self.row.index}")
            prev_end = p.end
