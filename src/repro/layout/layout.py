"""The :class:`Layout`: a netlist bound to rows of placement sites.

A layout owns the core geometry (rows × sites), the placement of every
instance, partial placement blockages, and the I/O pin positions on the
core boundary.  It is the single source of truth every GDSII-Guard
operator, metric, and attacker reads and mutates.

Coordinates: site positions are ``(row, start_site)`` integers; µm
positions derive from :class:`~repro.tech.Technology`.  The core origin is
``(0, 0)`` by convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LayoutError
from repro.geometry import Interval, Point, Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.gaps import GapGraph
from repro.layout.rows import CoreRow, RowOccupancy, RowPlacement
from repro.netlist.netlist import Netlist
from repro.tech.technology import Technology


@dataclass(frozen=True)
class Placement:
    """Where one instance sits: row index and first occupied site."""

    row: int
    start: int


class Layout:
    """A placed design: rows, instance placements, blockages, IO pins."""

    def __init__(
        self,
        netlist: Netlist,
        technology: Technology,
        num_rows: int,
        sites_per_row: int,
    ) -> None:
        if num_rows < 1 or sites_per_row < 1:
            raise LayoutError("core must have at least one row and one site")
        self.netlist = netlist
        self.technology = technology
        self.rows: List[CoreRow] = [
            CoreRow(
                index=r,
                origin_x=0.0,
                y=r * technology.row_height,
                num_sites=sites_per_row,
            )
            for r in range(num_rows)
        ]
        self.occupancy: List[RowOccupancy] = [RowOccupancy(row) for row in self.rows]
        self._placements: Dict[str, Placement] = {}
        self.blockages: Dict[str, PlacementBlockage] = {}
        #: instances placement operators must not move (critical assets).
        self.fixed: Set[str] = set()
        #: port name → pin location on the core boundary (µm).
        self.port_positions: Dict[str, Point] = {}

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        """Number of core rows."""
        return len(self.rows)

    @property
    def sites_per_row(self) -> int:
        """Sites per row (uniform core)."""
        return self.rows[0].num_sites

    @property
    def core(self) -> Rect:
        """Core bounding box in µm."""
        t = self.technology
        return Rect(
            0.0,
            0.0,
            self.sites_per_row * t.site_width,
            self.num_rows * t.row_height,
        )

    @property
    def total_sites(self) -> int:
        """Total placement capacity in sites."""
        return sum(r.num_sites for r in self.rows)

    def site_origin(self, row: int, site: int) -> Point:
        """µm coordinates of the lower-left corner of ``(row, site)``."""
        t = self.technology
        return Point(site * t.site_width, row * t.row_height)

    def site_rect(self, row: int, site: int) -> Rect:
        """µm rectangle of one placement site."""
        t = self.technology
        x = site * t.site_width
        y = row * t.row_height
        return Rect(x, y, x + t.site_width, y + t.row_height)

    def point_to_site(self, p: Point) -> Tuple[int, int]:
        """(row, site) of the site containing µm point ``p`` (clamped)."""
        t = self.technology
        row = min(max(int(p.y / t.row_height), 0), self.num_rows - 1)
        site = min(max(int(p.x / t.site_width), 0), self.sites_per_row - 1)
        return row, site

    # ------------------------------------------------------------------ #
    # placement mutation
    # ------------------------------------------------------------------ #

    def place(self, instance_name: str, row: int, start: int) -> None:
        """Place an unplaced instance at ``(row, start)``."""
        if instance_name in self._placements:
            raise LayoutError(f"{instance_name!r} already placed")
        inst = self.netlist.instance(instance_name)
        if not 0 <= row < self.num_rows:
            raise LayoutError(f"row {row} out of range for {instance_name!r}")
        self.occupancy[row].place(instance_name, start, inst.width_sites)
        self._placements[instance_name] = Placement(row=row, start=start)

    def unplace(self, instance_name: str) -> Placement:
        """Remove an instance from the core; returns its old placement."""
        if instance_name in self.fixed:
            raise LayoutError(f"{instance_name!r} is fixed")
        pl = self.placement(instance_name)
        self.occupancy[pl.row].remove(instance_name, start_hint=pl.start)
        del self._placements[instance_name]
        return pl

    def move_in_row(self, instance_name: str, new_start: int) -> None:
        """Shift an instance horizontally within its row."""
        if instance_name in self.fixed:
            raise LayoutError(f"{instance_name!r} is fixed")
        pl = self.placement(instance_name)
        self.occupancy[pl.row].move(instance_name, new_start, start_hint=pl.start)
        self._placements[instance_name] = Placement(row=pl.row, start=new_start)

    def move_to(self, instance_name: str, row: int, start: int) -> None:
        """Move an instance to an arbitrary ``(row, start)``."""
        if instance_name in self.fixed:
            raise LayoutError(f"{instance_name!r} is fixed")
        pl = self.placement(instance_name)
        if pl.row == row:
            self.move_in_row(instance_name, start)
            return
        inst = self.netlist.instance(instance_name)
        if not self.occupancy[row].can_place(start, inst.width_sites):
            raise LayoutError(
                f"cannot move {instance_name!r} to row {row} site {start}"
            )
        self.occupancy[pl.row].remove(instance_name, start_hint=pl.start)
        self.occupancy[row].place(instance_name, start, inst.width_sites)
        self._placements[instance_name] = Placement(row=row, start=start)

    # ------------------------------------------------------------------ #
    # placement queries
    # ------------------------------------------------------------------ #

    def is_placed(self, instance_name: str) -> bool:
        """Whether the instance currently sits in the core."""
        return instance_name in self._placements

    def placement(self, instance_name: str) -> Placement:
        """Current placement of ``instance_name``."""
        try:
            return self._placements[instance_name]
        except KeyError:
            raise LayoutError(f"{instance_name!r} is not placed") from None

    @property
    def placements(self) -> Dict[str, Placement]:
        """Read-only view of all placements (copy not taken; don't mutate)."""
        return self._placements

    def cell_rect(self, instance_name: str) -> Rect:
        """µm bounding box of a placed instance."""
        pl = self.placement(instance_name)
        inst = self.netlist.instance(instance_name)
        t = self.technology
        x = pl.start * t.site_width
        y = pl.row * t.row_height
        return Rect(x, y, x + inst.width_sites * t.site_width, y + t.row_height)

    def cell_center(self, instance_name: str) -> Point:
        """µm centre of a placed instance (pin-location approximation)."""
        return self.cell_rect(instance_name).center

    def pin_position(self, instance_name: Optional[str], port_name: Optional[str]) -> Point:
        """Position of an instance pin (cell centre) or a port pin."""
        if instance_name is not None:
            return self.cell_center(instance_name)
        if port_name is not None:
            try:
                return self.port_positions[port_name]
            except KeyError:
                raise LayoutError(f"port {port_name!r} has no position") from None
        raise LayoutError("pin_position needs an instance or a port")

    def net_pin_points(self, net_name: str) -> List[Point]:
        """µm positions of every pin of a net (driver + sinks)."""
        net = self.netlist.net(net_name)
        points: List[Point] = []
        if net.driver_pin is not None:
            points.append(self.cell_center(net.driver_pin.instance))
        if net.driver_port is not None and net.driver_port in self.port_positions:
            points.append(self.port_positions[net.driver_port])
        for ref in net.sink_pins:
            points.append(self.cell_center(ref.instance))
        for port in net.sink_ports:
            if port in self.port_positions:
                points.append(self.port_positions[port])
        return points

    def used_sites(self) -> int:
        """Total occupied sites."""
        return sum(occ.used_sites() for occ in self.occupancy)

    def utilization(self) -> float:
        """Fraction of core sites occupied."""
        return self.used_sites() / self.total_sites

    def free_intervals_per_row(self) -> List[List[Interval]]:
        """Free gaps of every row, bottom to top."""
        return [occ.free_intervals() for occ in self.occupancy]

    def gap_graph(self) -> GapGraph:
        """Build the paper's gap graph over the whole core."""
        return GapGraph.from_free_intervals(self.free_intervals_per_row())

    def instances_in_rect(self, rect: Rect) -> List[str]:
        """Names of placed instances whose cell box intersects ``rect``."""
        t = self.technology
        row_lo = max(int(rect.ylo / t.row_height), 0)
        row_hi = min(int(rect.yhi / t.row_height) + 1, self.num_rows)
        result: List[str] = []
        for row in range(row_lo, row_hi):
            row_y = self.rows[row].y
            if row_y >= rect.yhi or row_y + t.row_height <= rect.ylo:
                continue
            for p in self.occupancy[row]:
                x_lo = p.start * t.site_width
                x_hi = p.end * t.site_width
                if x_lo < rect.xhi and rect.xlo < x_hi:
                    result.append(p.name)
        return result

    def rect_to_row_span(self, rect: Rect) -> List[Tuple[int, Interval]]:
        """Rows and site intervals covered by a µm rectangle.

        Partial site/row coverage counts as covered (conservative for
        blockage accounting).
        """
        t = self.technology
        spans: List[Tuple[int, Interval]] = []
        row_lo = max(int(rect.ylo / t.row_height + 1e-9), 0)
        row_hi = min(
            int((rect.yhi - 1e-9) / t.row_height) + 1,
            self.num_rows,
        )
        site_lo = max(int(rect.xlo / t.site_width + 1e-9), 0)
        site_hi = min(
            int((rect.xhi - 1e-9) / t.site_width) + 1,
            self.sites_per_row,
        )
        if site_hi <= site_lo:
            return spans
        for row in range(row_lo, row_hi):
            spans.append((row, Interval(site_lo, site_hi)))
        return spans

    # ------------------------------------------------------------------ #
    # blockages
    # ------------------------------------------------------------------ #

    def add_blockage(self, blockage: PlacementBlockage) -> None:
        """Register a partial placement blockage."""
        if blockage.name in self.blockages:
            raise LayoutError(f"duplicate blockage {blockage.name!r}")
        self.blockages[blockage.name] = blockage

    def clear_blockages(self) -> None:
        """Remove all placement blockages (LDA does this every iteration)."""
        self.blockages.clear()

    def blockage_density_cap(self, row: int, site: int) -> float:
        """Tightest blockage density bound covering site ``(row, site)``."""
        rect = self.site_rect(row, site)
        cap = 1.0
        for b in self.blockages.values():
            if b.rect.intersects(rect):
                cap = min(cap, b.max_density)
        return cap

    def region_density(self, rect: Rect) -> float:
        """Occupied fraction of the sites covered by ``rect``."""
        total = 0
        used = 0
        for row, iv in self.rect_to_row_span(rect):
            total += len(iv)
            occ = self.occupancy[row]
            for p in occ:
                if p.start >= iv.hi:
                    break
                lo = max(p.start, iv.lo)
                hi = min(p.end, iv.hi)
                if hi > lo:
                    used += hi - lo
        if total == 0:
            return 0.0
        return used / total

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def clone(self) -> "Layout":
        """Deep-copy the placement state; the netlist object is shared.

        Sharing the netlist is safe because the threat model (and every
        operator in this library) treats it as immutable; the clone's
        ``netlist.signature()`` must stay equal to the original's.
        """
        other = Layout.__new__(Layout)
        other.netlist = self.netlist
        other.technology = self.technology
        other.rows = self.rows  # immutable row geometry, shareable
        other.occupancy = []
        for occ in self.occupancy:
            new_occ = RowOccupancy(occ.row)
            new_occ._starts = list(occ._starts)
            new_occ._items = [
                RowPlacement(name=p.name, start=p.start, width=p.width)
                for p in occ._items
            ]
            other.occupancy.append(new_occ)
        other._placements = dict(self._placements)
        other.blockages = dict(self.blockages)
        other.fixed = set(self.fixed)
        other.port_positions = dict(self.port_positions)
        return other

    def validate(self) -> None:
        """Check placement/occupancy consistency; raise on corruption."""
        placed = 0
        for occ in self.occupancy:
            occ.check_invariants()
            for p in occ:
                pl = self._placements.get(p.name)
                if pl is None or pl.row != occ.row.index or pl.start != p.start:
                    raise LayoutError(f"placement map desynchronized at {p.name!r}")
                inst = self.netlist.instance(p.name)
                if inst.width_sites != p.width:
                    raise LayoutError(f"{p.name!r} width mismatch")
                placed += 1
        if placed != len(self._placements):
            raise LayoutError("placement map contains ghosts")

    def __repr__(self) -> str:
        return (
            f"Layout({self.netlist.name!r}, {self.num_rows} rows x "
            f"{self.sites_per_row} sites, util={self.utilization():.2f})"
        )
