"""Partial placement blockages.

A partial placement blockage caps the *placement density* inside a region:
the ECO placer will not let occupied sites exceed ``max_density`` of the
region's capacity.  The LDA operator (Algorithm 2) programs a grid of these
to steer low-density areas away from security-critical cells, exactly as
Innovus ``createPlaceBlockage -type partial`` is used by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.geometry import Rect


@dataclass(frozen=True)
class PlacementBlockage:
    """A density-capping region.

    Attributes:
        name: Unique blockage name.
        rect: Covered region in µm.
        max_density: Density upper bound in [0, 1].  1.0 is a no-op cap,
            0.0 forbids any placement in the region (a *hard* blockage).
    """

    name: str
    rect: Rect
    max_density: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_density <= 1.0:
            raise LayoutError(
                f"blockage {self.name}: max_density {self.max_density} not in [0, 1]"
            )

    @property
    def is_hard(self) -> bool:
        """Whether the blockage forbids all placement."""
        return self.max_density == 0.0
