"""GDSII-Guard core: ECO anti-Trojan operators and the hardening flow."""

from repro.core.params import (
    LDA_ITER_CHOICES,
    LDA_N_CHOICES,
    OP_CHOICES,
    RWS_SCALE_CHOICES,
    FlowConfig,
    ParameterSpace,
)
from repro.core.cell_shift import CellShiftReport, cell_shift
from repro.core.local_density import LdaReport, local_density_adjustment
from repro.core.routing_width import routing_width_scaling
from repro.core.flow import FlowResult, GDSIIGuard

__all__ = [
    "OP_CHOICES",
    "LDA_N_CHOICES",
    "LDA_ITER_CHOICES",
    "RWS_SCALE_CHOICES",
    "FlowConfig",
    "ParameterSpace",
    "CellShiftReport",
    "cell_shift",
    "LdaReport",
    "local_density_adjustment",
    "routing_width_scaling",
    "FlowResult",
    "GDSIIGuard",
]
