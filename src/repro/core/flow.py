"""The GDSII-Guard ECO flow: ``L_opt = f(L_base; x)`` (§III of the paper).

Pipeline (Fig. 2): preprocess (freeze the security-critical assets so no
operator can move or displace them) → anti-Trojan ECO placement (Cell
Shift or LDA, selected by the configuration) → anti-Trojan ECO routing
(Routing Width Scaling) → post-design metric extraction (security, TNS,
power, DRC).  A :class:`FlowResult` carries everything the multi-objective
optimizer needs: the two objectives and the two hard-constraint values,
normalized against the baseline design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro import obs
from repro.core.cell_shift import CellShiftReport, cell_shift
from repro.core.local_density import LdaReport, local_density_adjustment
from repro.core.params import FlowConfig
from repro.core.routing_width import routing_width_scaling
from repro.drc.checker import check_drc
from repro.errors import FlowError
from repro.layout.layout import Layout
from repro.power.power import analyze_power
from repro.route.router import RoutingResult, global_route
from repro.security.assets import SecurityAssets
from repro.security.exploitable import DEFAULT_THRESH_ER
from repro.security.metrics import (
    DEFAULT_ALPHA,
    SecurityMetrics,
    measure_security,
    security_score,
)
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import run_sta

#: The paper's hard-constraint defaults (§IV-A).
DEFAULT_N_DRC = 20
DEFAULT_BETA_POWER = 1.2


@dataclass
class FlowResult:
    """Everything one flow evaluation produced.

    Attributes:
        config: The evaluated parameter vector x.
        layout: The hardened layout L_opt.
        routing: Its routing result.
        security: Raw security metrics of L_opt.
        score: Normalized ``Security(L_opt)`` (lower = more secure).
        tns: Total negative slack (ns, <= 0).
        wns: Worst negative slack (ns, <= 0).
        power: Total power (mW).
        drc_count: #DRC violations.
        feasible: Whether the DRC and power hard constraints hold.
        op_report: The placement operator's report (CS or LDA).
        runtime_s: Wall-clock seconds spent in the flow.
    """

    config: FlowConfig
    layout: Layout
    routing: RoutingResult
    security: SecurityMetrics
    score: float
    tns: float
    wns: float
    power: float
    drc_count: int
    feasible: bool
    op_report: Union[CellShiftReport, LdaReport, None] = None
    runtime_s: float = 0.0

    @property
    def objectives(self) -> tuple:
        """(Security score, −TNS) — both minimized by the optimizer."""
        return (self.score, -self.tns)

    def constraint_violation(
        self,
        n_drc: int = DEFAULT_N_DRC,
        beta_power: float = DEFAULT_BETA_POWER,
        base_power: Optional[float] = None,
    ) -> float:
        """Aggregate hard-constraint violation (0 when feasible)."""
        v = max(0, self.drc_count - n_drc)
        if base_power is not None:
            v += max(0.0, self.power - beta_power * base_power) * 100.0
        return float(v)


class GDSIIGuard:
    """The hardening flow bound to one baseline design.

    Args:
        baseline: The finalized baseline layout L_base (never mutated).
        constraints: Timing specification (SDC equivalent).
        assets: Annotated security-critical cells.
        baseline_routing: Baseline routing (re-routed if omitted).
        thresh_er: Exploitable-region threshold (paper: 20, from A2).
        alpha: Site/track weighting of the security score (paper: 0.5).
        n_drc: DRC hard bound N_DRC (paper: 20).
        beta_power: Power hard bound multiplier (paper: 1.2).
    """

    def __init__(
        self,
        baseline: Layout,
        constraints: TimingConstraints,
        assets: SecurityAssets,
        baseline_routing: Optional[RoutingResult] = None,
        thresh_er: int = DEFAULT_THRESH_ER,
        alpha: float = DEFAULT_ALPHA,
        n_drc: int = DEFAULT_N_DRC,
        beta_power: float = DEFAULT_BETA_POWER,
    ) -> None:
        assets.validate_against(baseline.netlist)
        self.baseline = baseline
        self.constraints = constraints
        self.assets = assets
        self.thresh_er = thresh_er
        self.alpha = alpha
        self.n_drc = n_drc
        self.beta_power = beta_power
        self.baseline_routing = baseline_routing or global_route(baseline)
        self._baseline_sta = run_sta(
            baseline, constraints, routing=self.baseline_routing
        )
        self.baseline_security = measure_security(
            baseline,
            self._baseline_sta,
            assets,
            routing=self.baseline_routing,
            thresh_er=thresh_er,
        )
        self.baseline_power = analyze_power(
            baseline, constraints, self.baseline_routing
        ).total
        from repro.security.exploitable import exploitable_distance

        #: per-asset exploitable distances of the baseline — used by the
        #: CS operator to score where residual free space is harmless.
        self.baseline_distances = {
            name: exploitable_distance(baseline, self._baseline_sta, name)
            for name in assets
        }
        self._netlist_signature = baseline.netlist.signature()

    # ------------------------------------------------------------------ #

    def preprocess(self, layout: Layout, freeze_assets: bool = False) -> None:
        """Protect the security-critical cells (Fig. 2's preprocessing).

        Per §III-A the critical cells must not be *removed or replaced*
        during the optimization — our operators never delete or swap
        instances, and :meth:`run` asserts the netlist signature is
        untouched, which enforces exactly that invariant.  Shifting an
        asset within the layout is allowed (both ECO operators are
        placement moves, not removals); pass ``freeze_assets=True`` to
        additionally pin the assets in place.
        """
        if freeze_assets:
            for name in self.assets:
                layout.fixed.add(name)

    def run(self, config: FlowConfig) -> FlowResult:
        """Evaluate the flow at parameter vector ``config``.

        Returns:
            A :class:`FlowResult` on a fresh clone of the baseline.

        Raises:
            FlowError: If an operator structurally modified the netlist
                (threat-model invariant) or the config is malformed.
        """
        t0 = time.perf_counter()
        with obs.timed("flow.run", op=config.op_select):
            with obs.timed("flow.preprocess"):
                layout = self.baseline.clone()
                self.preprocess(layout)

            with obs.timed("flow.place_op", op=config.op_select):
                if config.op_select == "CS":
                    op_report: Union[CellShiftReport, LdaReport] = cell_shift(
                        layout,
                        thresh_er=self.thresh_er,
                        assets=self.assets,
                        distances=self.baseline_distances,
                    )
                elif config.op_select == "LDA":
                    op_report = local_density_adjustment(
                        layout,
                        self.assets,
                        n=config.lda_n,
                        n_iter=config.lda_n_iter,
                    )
                else:  # pragma: no cover - FlowConfig already validates
                    raise FlowError(f"unknown operator {config.op_select!r}")

            with obs.timed("flow.route"):
                ndr, routing = routing_width_scaling(layout, config.rws_scales)

            if layout.netlist.signature() != self._netlist_signature:
                raise FlowError(
                    "flow operator modified the netlist — threat-model violation"
                )
            layout.validate()

            with obs.timed("flow.sta"):
                sta = run_sta(layout, self.constraints, routing=routing)
            with obs.timed("flow.security"):
                security = measure_security(
                    layout,
                    sta,
                    self.assets,
                    routing=routing,
                    thresh_er=self.thresh_er,
                )
                score = security_score(
                    security, self.baseline_security, self.alpha
                )
            with obs.timed("flow.power"):
                power = analyze_power(layout, self.constraints, routing).total
            with obs.timed("flow.drc"):
                drc = check_drc(layout, routing).count
        feasible = (
            drc <= self.n_drc and power <= self.beta_power * self.baseline_power
        )
        obs.count("flow.evaluations")
        return FlowResult(
            config=config,
            layout=layout,
            routing=routing,
            security=security,
            score=score,
            tns=sta.tns,
            wns=sta.wns,
            power=power,
            drc_count=drc,
            feasible=feasible,
            op_report=op_report,
            runtime_s=time.perf_counter() - t0,
        )
