"""The GDSII-Guard ECO flow: ``L_opt = f(L_base; x)`` (§III of the paper).

Pipeline (Fig. 2): preprocess (freeze the security-critical assets so no
operator can move or displace them) → anti-Trojan ECO placement (Cell
Shift or LDA, selected by the configuration) → anti-Trojan ECO routing
(Routing Width Scaling) → post-design metric extraction (security, TNS,
power, DRC).  A :class:`FlowResult` carries everything the multi-objective
optimizer needs: the two objectives and the two hard-constraint values,
normalized against the baseline design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro import obs
from repro.core.cell_shift import CellShiftReport, cell_shift
from repro.core.local_density import LdaReport, local_density_adjustment
from repro.core.params import FlowConfig
from repro.core.routing_width import routing_width_scaling
from repro.drc.checker import check_drc
from repro.errors import FlowError
from repro.layout.layout import Layout
from repro.power.power import analyze_power
from repro.resilience import faults
from repro.route.ndr import NonDefaultRule
from repro.route.router import RoutingResult, global_route
from repro.security.assets import SecurityAssets
from repro.security.exploitable import DEFAULT_THRESH_ER
from repro.security.metrics import (
    DEFAULT_ALPHA,
    SecurityMetrics,
    measure_security,
    security_score,
)
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import run_sta

#: The paper's hard-constraint defaults (§IV-A).
DEFAULT_N_DRC = 20
DEFAULT_BETA_POWER = 1.2


@dataclass
class FlowResult:
    """Everything one flow evaluation produced.

    Attributes:
        config: The evaluated parameter vector x.
        layout: The hardened layout L_opt.
        routing: Its routing result.
        security: Raw security metrics of L_opt.
        score: Normalized ``Security(L_opt)`` (lower = more secure).
        tns: Total negative slack (ns, <= 0).
        wns: Worst negative slack (ns, <= 0).
        power: Total power (mW).
        drc_count: #DRC violations.
        feasible: Whether the DRC and power hard constraints hold.
        op_report: The placement operator's report (CS or LDA).
        runtime_s: Wall-clock seconds spent in the flow.
    """

    config: FlowConfig
    layout: Layout
    routing: RoutingResult
    security: SecurityMetrics
    score: float
    tns: float
    wns: float
    power: float
    drc_count: int
    feasible: bool
    op_report: Union[CellShiftReport, LdaReport, None] = None
    runtime_s: float = 0.0

    @property
    def objectives(self) -> tuple:
        """(Security score, −TNS) — both minimized by the optimizer."""
        return (self.score, -self.tns)

    def constraint_violation(
        self,
        n_drc: int = DEFAULT_N_DRC,
        beta_power: float = DEFAULT_BETA_POWER,
        base_power: Optional[float] = None,
    ) -> float:
        """Aggregate hard-constraint violation (0 when feasible)."""
        v = max(0, self.drc_count - n_drc)
        if base_power is not None:
            v += max(0.0, self.power - beta_power * base_power) * 100.0
        return float(v)


@dataclass
class _OpCacheEntry:
    """Per-operator-key incremental state: the deterministic placement
    result and the delta evaluator holding its routed/timed/scanned
    state."""

    layout: Layout
    op_report: Union[CellShiftReport, LdaReport]
    evaluator: "object"


class GDSIIGuard:
    """The hardening flow bound to one baseline design.

    Args:
        baseline: The finalized baseline layout L_base (never mutated).
        constraints: Timing specification (SDC equivalent).
        assets: Annotated security-critical cells.
        baseline_routing: Baseline routing (re-routed if omitted).
        thresh_er: Exploitable-region threshold (paper: 20, from A2).
        alpha: Site/track weighting of the security score (paper: 0.5).
        n_drc: DRC hard bound N_DRC (paper: 20).
        beta_power: Power hard bound multiplier (paper: 1.2).
        incremental: Evaluate via the delta engine (:mod:`repro.
            incremental`).  Both ECO placement operators are deterministic
            functions of their config genes, so candidates sharing an
            operator key reuse one placed layout and delta-evaluate only
            the RWS change; results equal the full pipeline by
            construction.  Set ``False`` to force the full recompute
            (the differential tests' oracle).
        check_invariants: Paranoid mode — re-run the :mod:`repro.lint`
            invariant rules after every ECO operator stage (placement op
            and routing, on both evaluation paths) and raise
            :class:`FlowError` on any error-severity violation.  Costs
            one full rule sweep per stage; off by default.
    """

    def __init__(
        self,
        baseline: Layout,
        constraints: TimingConstraints,
        assets: SecurityAssets,
        baseline_routing: Optional[RoutingResult] = None,
        thresh_er: int = DEFAULT_THRESH_ER,
        alpha: float = DEFAULT_ALPHA,
        n_drc: int = DEFAULT_N_DRC,
        beta_power: float = DEFAULT_BETA_POWER,
        incremental: bool = True,
        check_invariants: bool = False,
    ) -> None:
        assets.validate_against(baseline.netlist)
        self.baseline = baseline
        self.constraints = constraints
        self.assets = assets
        self.thresh_er = thresh_er
        self.alpha = alpha
        self.n_drc = n_drc
        self.beta_power = beta_power
        self.incremental = incremental
        self.check_invariants = check_invariants
        #: number of paranoid-mode lint sweeps run / violations they found
        #: (warnings included; errors raise immediately).
        self.invariant_checks = 0
        self.invariant_violations = 0
        self._op_cache: dict = {}
        if baseline_routing is None:
            baseline_routing = global_route(baseline, record_journal=True)
        self.baseline_routing = baseline_routing
        #: journal of the baseline route — lets the first evaluation of
        #: each operator key warm-start instead of routing from scratch.
        self._baseline_journal = getattr(baseline_routing, "journal", None)
        self._baseline_sta = run_sta(
            baseline, constraints, routing=self.baseline_routing
        )
        self.baseline_security = measure_security(
            baseline,
            self._baseline_sta,
            assets,
            routing=self.baseline_routing,
            thresh_er=thresh_er,
        )
        self.baseline_power = analyze_power(
            baseline, constraints, self.baseline_routing
        ).total
        from repro.security.exploitable import exploitable_distance

        #: per-asset exploitable distances of the baseline — used by the
        #: CS operator to score where residual free space is harmless.
        self.baseline_distances = {
            name: exploitable_distance(baseline, self._baseline_sta, name)
            for name in assets
        }
        self._netlist_signature = baseline.netlist.signature()

    # ------------------------------------------------------------------ #

    def preprocess(self, layout: Layout, freeze_assets: bool = False) -> None:
        """Protect the security-critical cells (Fig. 2's preprocessing).

        Per §III-A the critical cells must not be *removed or replaced*
        during the optimization — our operators never delete or swap
        instances, and :meth:`run` asserts the netlist signature is
        untouched, which enforces exactly that invariant.  Shifting an
        asset within the layout is allowed (both ECO operators are
        placement moves, not removals); pass ``freeze_assets=True`` to
        additionally pin the assets in place.
        """
        if freeze_assets:
            for name in self.assets:
                layout.fixed.add(name)

    def _apply_placement_op(
        self, layout: Layout, config: FlowConfig
    ) -> Union[CellShiftReport, LdaReport]:
        """Run the configured ECO placement operator in place."""
        if config.op_select == "CS":
            return cell_shift(
                layout,
                thresh_er=self.thresh_er,
                assets=self.assets,
                distances=self.baseline_distances,
            )
        if config.op_select == "LDA":
            return local_density_adjustment(
                layout,
                self.assets,
                n=config.lda_n,
                n_iter=config.lda_n_iter,
            )
        # pragma: no cover - FlowConfig already validates
        raise FlowError(f"unknown operator {config.op_select!r}")

    @staticmethod
    def _op_key(config: FlowConfig) -> tuple:
        """The genes that decide the placement — CS takes none, LDA two."""
        if config.op_select == "LDA":
            return ("LDA", config.lda_n, config.lda_n_iter)
        return ("CS",)

    def _lda_attract_point(self):
        """The baseline assets' centroid — LDA's attraction point.

        Every flow evaluation applies its operator to a fresh clone of
        the baseline, so the centroid LDA computes internally is the same
        for every configuration; continuing a cached ``(n, j)`` prefix
        must pass it explicitly because the prefix already moved the
        assets.
        """
        placed_assets = [a for a in self.assets if self.baseline.is_placed(a)]
        if not placed_assets:
            return None
        from repro.geometry import Point

        return Point(
            sum(self.baseline.cell_center(a).x for a in placed_assets)
            / len(placed_assets),
            sum(self.baseline.cell_center(a).y for a in placed_assets)
            / len(placed_assets),
        )

    def _materialize_op(
        self, config: FlowConfig
    ) -> tuple:
        """Produce the placed layout + report for a new operator key.

        LDA keys chain off the longest cached ``(n, j)`` prefix — the
        operator is a pure iteration on the layout state, so continuing
        ``j``'s layout for ``n_iter − j`` more cycles (with the original
        attraction point) reproduces the full run exactly.
        """
        prefix = None
        prefix_iters = 0
        if config.op_select == "LDA":
            for j in range(config.lda_n_iter - 1, 0, -1):
                prefix = self._op_cache.get(("LDA", config.lda_n, j))
                if prefix is not None:
                    prefix_iters = j
                    break
        if prefix is None:
            with obs.timed("flow.preprocess"):
                layout = self.baseline.clone()
                self.preprocess(layout)
            with obs.timed("flow.place_op", op=config.op_select):
                op_report = self._apply_placement_op(layout, config)
            return layout, op_report
        obs.count("flow.incremental.op_prefix_chains")
        with obs.timed("flow.preprocess"):
            layout = prefix.layout.clone()
        with obs.timed("flow.place_op", op=config.op_select):
            cont = local_density_adjustment(
                layout,
                self.assets,
                n=config.lda_n,
                n_iter=config.lda_n_iter - prefix_iters,
                attract_point=self._lda_attract_point(),
            )
        op_report = LdaReport(
            grid_n=config.lda_n,
            iterations=list(prefix.op_report.iterations)
            + list(cont.iterations),
        )
        return layout, op_report

    def _assert_invariants(
        self, layout: Layout, stage: str, routing=None
    ) -> None:
        """Paranoid-mode lint sweep; raise on error-severity violations.

        The frozen-cell reference is the baseline placement: fixed cells
        are frozen where the baseline put them, so any drift is an
        operator walking through :attr:`Layout.fixed`.
        """
        if not self.check_invariants:
            return
        from repro.lint.engine import run_lint
        from repro.lint.violations import Severity

        reference = {
            name: self.baseline.placement(name)
            for name in layout.fixed
            if self.baseline.is_placed(name)
        }
        with obs.timed("flow.invariant_check", at=stage):
            report = run_lint(
                layout,
                routing=routing,
                assets=self.assets,
                reference_placements=reference,
                thresh_er=self.thresh_er,
                subject=f"{layout.netlist.name}:{stage}",
            )
        self.invariant_checks += 1
        self.invariant_violations += len(report.violations)
        obs.count("flow.invariant_checks")
        if report.violations:
            obs.count("flow.invariant_violations", len(report.violations))
        if report.errors:
            first = next(
                v for v in report.violations if v.severity >= Severity.ERROR
            )
            raise FlowError(
                f"invariant violation after {stage}: {first.format()} "
                f"({report.errors} error(s) total)"
            )

    def run(self, config: FlowConfig) -> FlowResult:
        """Evaluate the flow at parameter vector ``config``.

        Returns:
            A :class:`FlowResult`.  On the full path the layout is a
            fresh clone of the baseline; on the incremental path it is
            the operator-key cache's shared layout (treat as read-only).

        Raises:
            FlowError: If an operator structurally modified the netlist
                (threat-model invariant) or the config is malformed.
        """
        if self.incremental:
            return self._run_incremental(config)
        return self._run_full(config)

    def _run_full(self, config: FlowConfig) -> FlowResult:
        """The full-recompute pipeline — the incremental path's oracle."""
        t0 = time.perf_counter()
        with obs.timed("flow.run", op=config.op_select):
            with obs.timed("flow.preprocess"):
                layout = self.baseline.clone()
                self.preprocess(layout)

            with obs.timed("flow.place_op", op=config.op_select):
                op_report = self._apply_placement_op(layout, config)
            self._assert_invariants(layout, f"place_op:{config.op_select}")

            if faults.is_active():
                faults.maybe_flow_fault()

            with obs.timed("flow.route"):
                ndr, routing = routing_width_scaling(layout, config.rws_scales)
            self._assert_invariants(layout, "route", routing=routing)

            if layout.netlist.signature() != self._netlist_signature:
                raise FlowError(
                    "flow operator modified the netlist — threat-model violation"
                )
            layout.validate()

            with obs.timed("flow.sta"):
                sta = run_sta(layout, self.constraints, routing=routing)
            with obs.timed("flow.security"):
                security = measure_security(
                    layout,
                    sta,
                    self.assets,
                    routing=routing,
                    thresh_er=self.thresh_er,
                )
                score = security_score(
                    security, self.baseline_security, self.alpha
                )
            with obs.timed("flow.power"):
                power = analyze_power(layout, self.constraints, routing).total
            with obs.timed("flow.drc"):
                drc = check_drc(layout, routing).count
        feasible = (
            drc <= self.n_drc and power <= self.beta_power * self.baseline_power
        )
        obs.count("flow.evaluations")
        return FlowResult(
            config=config,
            layout=layout,
            routing=routing,
            security=security,
            score=score,
            tns=sta.tns,
            wns=sta.wns,
            power=power,
            drc_count=drc,
            feasible=feasible,
            op_report=op_report,
            runtime_s=time.perf_counter() - t0,
        )

    def _run_incremental(self, config: FlowConfig) -> FlowResult:
        """Delta-evaluation pipeline — equal to :meth:`_run_full`.

        Candidates sharing an operator key reuse the cached placed
        layout plus its :class:`~repro.incremental.engine.DeltaEvaluator`;
        only the RWS re-route (warm-started), the affected timing cones,
        and the dirtied security rows are recomputed.
        """
        from repro.incremental.engine import DeltaEvaluator

        t0 = time.perf_counter()
        with obs.timed("flow.run", op=config.op_select):
            k = self.baseline.technology.num_layers
            if len(config.rws_scales) != k:
                raise FlowError(
                    f"RWS needs {k} layer scales, got {len(config.rws_scales)}"
                )
            key = self._op_key(config)
            entry = self._op_cache.get(key)
            if entry is None:
                obs.count("flow.incremental.op_cache_misses")
                layout, op_report = self._materialize_op(config)
                if layout.netlist.signature() != self._netlist_signature:
                    raise FlowError(
                        "flow operator modified the netlist — "
                        "threat-model violation"
                    )
                layout.validate()
                self._assert_invariants(
                    layout, f"place_op:{config.op_select}"
                )
                evaluator = DeltaEvaluator(
                    layout,
                    self.constraints,
                    self.assets,
                    thresh_er=self.thresh_er,
                    warm_journal=self._baseline_journal,
                )
                entry = _OpCacheEntry(layout, op_report, evaluator)
                self._op_cache[key] = entry
            else:
                obs.count("flow.incremental.op_cache_hits")
            layout = entry.layout

            ndr = NonDefaultRule.from_list(config.rws_scales)
            try:
                if faults.is_active():
                    faults.maybe_flow_fault()
                res = entry.evaluator.evaluate(ndr=ndr)
            except BaseException:
                # An evaluator that died mid-delta may leave the cached
                # routed/timed/scanned state half-updated; drop the entry
                # so a supervised retry rebuilds it instead of reusing
                # corrupt state.  BaseException on purpose: a
                # KeyboardInterrupt/SystemExit mid-delta corrupts the
                # cache exactly the same way, and everything is re-raised
                # unconditionally.
                self._op_cache.pop(key, None)
                raise
            self._assert_invariants(layout, "route", routing=res.routing)
            routing = res.routing
            sta = res.sta
            security = SecurityMetrics.from_report(res.security)
            score = security_score(security, self.baseline_security, self.alpha)
            with obs.timed("flow.power"):
                power = analyze_power(layout, self.constraints, routing).total
            with obs.timed("flow.drc"):
                drc = check_drc(layout, routing).count
        feasible = (
            drc <= self.n_drc and power <= self.beta_power * self.baseline_power
        )
        obs.count("flow.evaluations")
        return FlowResult(
            config=config,
            layout=layout,
            routing=routing,
            security=security,
            score=score,
            tns=sta.tns,
            wns=sta.wns,
            power=power,
            drc_count=drc,
            feasible=feasible,
            op_report=entry.op_report,
            runtime_s=time.perf_counter() - t0,
        )
