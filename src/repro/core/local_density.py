"""Dynamic Local Density Adjustment (LDA) — Algorithm 2 of the paper.

For timing-tight or low-utilization designs, aggressive cell shifting
deteriorates fragile timing.  LDA instead partitions the core into an
``N × N`` grid and programs a *partial placement blockage* in every tile,
capping its placement density at ``sigmoid((n_assets − µ)/σ)`` — tiles
rich in security-critical cells get a high cap (cells may pack tightly
around the assets, starving the attacker of nearby free sites) while
asset-free tiles get a low cap (free space is pushed away from the
assets).  A wirelength-driven incremental ECO placement then realizes the
density targets; the whole cycle repeats ``n_iter`` times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import FlowError
from repro.geometry import Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout
from repro.place.eco_place import EcoPlacementReport, eco_place
from repro.security.assets import SecurityAssets


@dataclass
class LdaReport:
    """What an LDA run did.

    Attributes:
        iterations: ECO placement reports, one per iteration.
        grid_n: The N used.
    """

    grid_n: int
    iterations: List[EcoPlacementReport] = field(default_factory=list)

    @property
    def total_moved(self) -> int:
        """Cells moved across all iterations."""
        return sum(r.num_moved for r in self.iterations)

    @property
    def total_displacement_um(self) -> float:
        """Total displacement across all iterations (µm)."""
        return sum(r.total_displacement_um for r in self.iterations)


def _sigmoid(z: float) -> float:
    """Numerically safe logistic function."""
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


def _gaussian_blur(grid: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with reflect padding (no scipy needed)."""
    if sigma <= 0:
        return grid
    radius = max(int(3 * sigma), 1)
    xs = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    kernel /= kernel.sum()

    def conv1d(arr: np.ndarray) -> np.ndarray:
        padded = np.pad(arr, ((radius, radius), (0, 0)), mode="reflect")
        out = np.zeros_like(arr)
        for k, w in enumerate(kernel):
            out += w * padded[k : k + arr.shape[0], :]
        return out

    return conv1d(conv1d(grid).T).T


def asset_density_caps(
    layout: Layout,
    assets: SecurityAssets,
    n: int,
    smoothing_sigma: Optional[float] = None,
) -> np.ndarray:
    """The paper's per-tile density upper bounds (lines 4–9 of Alg. 2).

    Counts security-critical cells per tile, *smooths* the counts
    spatially (the paper's "smoothed into a valid density value" — the
    blur spreads each asset's influence over its exploitable
    neighborhood, so the whole region around the asset bank may pack
    densely, not just the asset tiles themselves), z-scores them, and
    squashes through a sigmoid.  A zero standard deviation (uniform
    assets) yields 0.5 everywhere.

    The map is then *feasibility-biased*: a real tool treats a partial
    blockage as best-effort, but our ECO placer enforces caps as hard
    budgets, so a constant is added to the z-scores (preserving their
    ordering) until the capped capacity carries the design's occupied
    sites with ~5 % headroom.
    """
    counts = np.zeros((n, n), dtype=float)
    core = layout.core
    tile_w = core.width / n
    tile_h = core.height / n
    for name in assets:
        if not layout.is_placed(name):
            continue
        c = layout.cell_center(name)
        ix = min(int(c.x / tile_w), n - 1)
        iy = min(int(c.y / tile_h), n - 1)
        counts[ix, iy] += 1.0
    sigma_tiles = smoothing_sigma if smoothing_sigma is not None else max(n / 8.0, 0.8)
    counts = _gaussian_blur(counts, sigma_tiles)
    mu = float(counts.mean())
    sigma = float(counts.std())
    if sigma == 0.0:
        z = np.zeros_like(counts)
    else:
        z = (counts - mu) / sigma

    # Sharpen the sigmoid (gain) so asset-neighborhood tiles saturate
    # toward cap 1.0 while asset-free tiles drop well below the design
    # utilization — the density *contrast* is what drives enough eviction
    # volume to actually absorb the free space around the assets.  The
    # bias then places the map at the feasibility boundary: total capped
    # capacity = occupied sites × a small headroom.
    gain = 3.5
    util = layout.utilization()
    needed = util * 1.03
    vec_sigmoid = np.vectorize(_sigmoid)
    bias_lo, bias_hi = -4.0, 12.0
    for _ in range(48):
        bias = 0.5 * (bias_lo + bias_hi)
        caps = vec_sigmoid(gain * z + bias)
        if float(caps.mean()) < needed:
            bias_lo = bias
        else:
            bias_hi = bias
    return vec_sigmoid(gain * z + bias_hi)


def local_density_adjustment(
    layout: Layout,
    assets: SecurityAssets,
    n: int = 8,
    n_iter: int = 1,
    min_cap: float = 0.05,
    keep_blockages: bool = False,
    attract_point=None,
) -> LdaReport:
    """Run LDA on ``layout`` (mutated in place).

    Args:
        layout: A placed layout; cells in ``layout.fixed`` never move.
        assets: The security-critical cells steering the density map.
        n: Grid dimension (tiles per axis) — ``LDA::N`` of Table I.
        n_iter: Number of blockage/ECO-place cycles — ``LDA::n_iter``.
        min_cap: Floor on the tile density cap, so the sigmoid's left tail
            cannot demand a physically absurd full eviction.
        keep_blockages: Leave the last iteration's blockages registered on
            the layout (useful for inspection; the flow clears them).
        attract_point: Override for the asset-attraction point (normally
            the placed assets' centroid at call time).  Resume-style
            callers — a run continuing from an ``n_iter - j`` prefix —
            must pass the original layout's centroid so the continued
            iterations reproduce the longer run exactly.

    Returns:
        An :class:`LdaReport`.
    """
    if n < 1:
        raise FlowError("LDA grid N must be >= 1")
    if n_iter < 1:
        raise FlowError("LDA n_iter must be >= 1")
    assets.validate_against(layout.netlist)
    report = LdaReport(grid_n=n)
    core = layout.core
    tile_w = core.width / n
    tile_h = core.height / n
    # Density flow converges on the asset bank: arrivals consume the free
    # sites nearest the assets first.
    if attract_point is not None:
        attract = attract_point
    else:
        placed_assets = [a for a in assets if layout.is_placed(a)]
        if placed_assets:
            from repro.geometry import Point

            attract = Point(
                sum(layout.cell_center(a).x for a in placed_assets)
                / len(placed_assets),
                sum(layout.cell_center(a).y for a in placed_assets)
                / len(placed_assets),
            )
        else:
            attract = None
    for iteration in range(n_iter):
        layout.clear_blockages()
        caps = asset_density_caps(layout, assets, n)
        for ix in range(n):
            for iy in range(n):
                cap = max(float(caps[ix, iy]), min_cap)
                rect = Rect(
                    ix * tile_w,
                    iy * tile_h,
                    (ix + 1) * tile_w,
                    (iy + 1) * tile_h,
                )
                layout.add_blockage(
                    PlacementBlockage(
                        name=f"lda_{iteration}_{ix}_{iy}",
                        rect=rect,
                        max_density=cap,
                    )
                )
        report.iterations.append(eco_place(layout, attract_point=attract))
    if not keep_blockages:
        layout.clear_blockages()
    return report
