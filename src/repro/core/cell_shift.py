"""Cell Shift (CS) — Algorithm 1 of the paper.

CS erases exploitable regions globally by row-wise shifting of cells.  The
core row by row (bottom-up), each free-site vertex of the gap graph built
over the processed rows is checked: while its component is exploitable
(``w(compo(v)) >= Thresh_ER``), the cell adjacent to the vertex is shifted
into it, shrinking the vertex until the component drops below threshold or
the vertex disappears.  Movement is kept minimal — shifting stops as soon
as the component is no longer exploitable — to bound the timing impact.
A mirrored second pass (right-to-left visiting, rightward shifts) then
removes the regions the first pass pushed toward the core's right edge.

Implementation notes: the paper's inner loop moves one site at a time and
re-runs DFS; we move in batches of ``min(w(v), w(C) − Thresh_ER + 1)``
sites and rebuild the (union-find) gap graph between batches, which yields
the same post-condition with far fewer graph rebuilds.  Cells in
``layout.fixed`` are never moved; a vertex blocked by a fixed cell is
skipped.  See :func:`cell_shift` for the default "respace" strategy that
supersedes the literal greedy at realistic free-space ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import kernels
from repro.errors import FlowError
from repro.layout.gaps import GapGraph
from repro.layout.layout import Layout
from repro.security.exploitable import DEFAULT_THRESH_ER, find_exploitable_regions


@dataclass
class CellShiftReport:
    """What a CS run did.

    Attributes:
        moves: Number of cell relocations (a batch shift counts once).
        shifted_sites: Total shift distance in sites.
        regions_before: Exploitable-weight components before the run
            (no exploitable-distance filter — CS is distance-agnostic).
        regions_after: Same count after the run.
    """

    moves: int = 0
    shifted_sites: int = 0
    regions_before: int = 0
    regions_after: int = 0


def _graph_upto(layout: Layout, last_row: int) -> GapGraph:
    """Gap graph over rows ``0..last_row`` inclusive."""
    intervals = [
        layout.occupancy[r].free_intervals() for r in range(last_row + 1)
    ]
    return GapGraph.from_free_intervals(intervals)


def _shift_pass(
    layout: Layout,
    thresh_er: int,
    reverse: bool,
    report: CellShiftReport,
    max_batches_per_row: int,
) -> None:
    """One directional pass of Algorithm 1.

    ``reverse=False``: visit vertices left→right, shift the cell right of
    the vertex leftward.  ``reverse=True``: mirrored.
    """
    for row_idx in range(layout.num_rows):
        occ = layout.occupancy[row_idx]
        cursor = layout.sites_per_row if reverse else 0
        batches = 0
        # Rebuild the gap graph only after a shift; scanning past
        # non-exploitable vertices reuses the cached graph.
        while batches < max_batches_per_row:
            graph = _graph_upto(layout, row_idx)
            row_gaps = graph.row_gaps(row_idx)
            if reverse:
                scan = [g for g in reversed(row_gaps) if g.hi <= cursor]
            else:
                scan = [g for g in row_gaps if g.lo >= cursor]
            moved = False
            for v in scan:
                weight_c = graph.component_weight_of(v)
                if weight_c < thresh_er:
                    cursor = v.lo if reverse else v.hi
                    continue
                # the neighbor cell that can be shifted into the vertex
                if reverse:
                    neighbor = occ.cell_left_of(v.lo)
                    blocked = neighbor is None or neighbor.end != v.lo
                else:
                    neighbor = occ.cell_right_of(v.hi)
                    blocked = neighbor is None or neighbor.start != v.hi
                if blocked or neighbor.name in layout.fixed:
                    cursor = v.lo if reverse else v.hi
                    continue
                k = min(v.weight, weight_c - thresh_er + 1)
                new_start = neighbor.start + (k if reverse else -k)
                layout.move_in_row(neighbor.name, new_start)
                report.moves += 1
                report.shifted_sites += k
                batches += 1
                moved = True
                break  # graph is stale: rebuild before continuing
            if not moved:
                break


def _exploitable_sites(layout: Layout, thresh_er: int) -> int:
    """Total free sites inside exploitable-weight components."""
    return sum(
        c.weight for c in layout.gap_graph().exploitable_components(thresh_er)
    )


class _BelowGap:
    """A free gap of the row below, annotated with its component weight."""

    __slots__ = ("lo", "hi", "weight")

    def __init__(self, lo: int, hi: int, weight: int) -> None:
        self.lo = lo
        self.hi = hi
        self.weight = weight


def _below_weights(layout: Layout, row_idx: int) -> List[_BelowGap]:
    """Gaps of ``row_idx − 1`` with the weight of their full component."""
    if row_idx == 0:
        return []
    graph = _graph_upto(layout, row_idx - 1)
    return [
        _BelowGap(g.lo, g.hi, graph.component_weight_of(g))
        for g in graph.row_gaps(row_idx - 1)
    ]


class _IncrementalBelow:
    """Incremental below-row component weights for the bottom-up re-space.

    ``_respace_pass`` finalizes row ``r`` before visiting row ``r+1``, so
    the gap graph over rows ``0..r`` can be grown one row at a time instead
    of rebuilt from scratch per row (which is quadratic in rows).  The
    union-find partition — and hence every component weight — is identical
    to :func:`_graph_upto`'s regardless of union order.
    """

    __slots__ = ("parent", "size", "weight", "prev")

    def __init__(self) -> None:
        self.parent: List[int] = []
        self.size: List[int] = []
        self.weight: List[int] = []
        #: (lo, hi, node) triples of the last row added.
        self.prev: List[tuple] = []

    def _find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x

    def _union(self, a: int, b: int) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.weight[ra] += self.weight[rb]

    def add_row(self, intervals) -> None:
        """Append the next row's (final) free intervals to the graph."""
        cur = []
        for iv in intervals:
            node = len(self.parent)
            self.parent.append(node)
            self.size.append(1)
            self.weight.append(iv.hi - iv.lo)
            cur.append((iv.lo, iv.hi, node))
        prev = self.prev
        i = j = 0
        while i < len(prev) and j < len(cur):
            a, b = prev[i], cur[j]
            if a[0] < b[1] and b[0] < a[1]:
                self._union(a[2], b[2])
            if a[1] <= b[1]:
                i += 1
            else:
                j += 1
        self.prev = cur

    def below_gaps(self) -> List[_BelowGap]:
        """The last added row's gaps with their component weights."""
        return [
            _BelowGap(lo, hi, self.weight[self._find(node)])
            for lo, hi, node in self.prev
        ]


def _max_chain_gap(
    cursor: int, g_cap: int, below: List[_BelowGap], quota: int
) -> int:
    """Largest gap ``[cursor, cursor+g)`` whose merged component ≤ quota.

    A gap overlapping below-gaps b1..bk merges their components; the
    merged weight ``g + Σ w(bj)`` must stay within ``quota``.  The maximum
    is found by scanning the overlap breakpoints left to right.
    """
    if g_cap <= 0:
        return 0
    overl = [b for b in below if b.hi > cursor and b.lo < cursor + g_cap]
    acc = sum(b.weight for b in overl if b.lo <= cursor)
    future = [b for b in overl if b.lo > cursor]
    first_brk = (future[0].lo - cursor) if future else g_cap
    best = min(quota - acc, g_cap, first_brk)
    for j, b in enumerate(future):
        acc += b.weight
        nxt = (future[j + 1].lo - cursor) if j + 1 < len(future) else g_cap
        cand = min(quota - acc, g_cap, nxt)
        if cand > b.lo - cursor:
            best = max(best, cand)
    return max(best, 0)


def _dp_gap_layout(
    seg_lo: int,
    seg_hi: int,
    widths: List[int],
    below: List[_BelowGap],
    quota: int,
    gap_cap: Optional[int] = None,
) -> Optional[List[int]]:
    """Optimal gap sizes for one segment via reachability DP.

    Maximizes the total gap budget placed before the cells (minimizing the
    unconstrained leftover tail), subject to the chain budget at every gap
    position.  Returns the gap before each cell, or ``None`` when the
    segment is empty.  Intra-segment merge interactions are ignored during
    the DP (the caller re-applies merge accounting afterwards), which can
    overshoot a component by at most one quota — still far below any
    realistic threshold pile-up.
    """
    m = len(widths)
    if m == 0:
        return None
    span = seg_hi - seg_lo
    # reach[i][e] — after placing i cells, can the occupied prefix end at
    # seg_lo + e?
    reach = [bytearray(span + 1) for _ in range(m + 1)]
    reach[0][0] = 1
    gmax_cache: dict = {}

    cap = quota if gap_cap is None else min(gap_cap, quota)

    def gmax(pos: int) -> int:
        g = gmax_cache.get(pos)
        if g is None:
            g = _max_chain_gap(pos, cap, below, quota)
            gmax_cache[pos] = g
        return g

    ones = b"\x01" * (span + 1)
    for i in range(m):
        w = widths[i]
        cur = reach[i]
        nxt = reach[i + 1]
        for e in range(span + 1):
            if not cur[e]:
                continue
            pos = seg_lo + e
            top = min(gmax(pos), span - e - w)
            if top >= 0:
                # marks exactly the cells the per-g loop would set
                nxt[e + w : e + w + top + 1] = ones[: top + 1]
    final = reach[m]
    best_e = max((e for e in range(span + 1) if final[e]), default=None)
    if best_e is None:
        return None
    # Backtrack: find per-cell gaps.
    gaps: List[int] = []
    e = best_e
    for i in range(m - 1, -1, -1):
        w = widths[i]
        found = False
        for g in range(min(cap, e - w), -1, -1):
            e_prev = e - w - g
            if e_prev < 0 or not reach[i][e_prev]:
                continue
            if g > 0 and gmax(seg_lo + e_prev) < g:
                continue
            gaps.append(g)
            e = e_prev
            found = True
            break
        if not found:  # pragma: no cover - reachability guarantees a parent
            return None
    gaps.reverse()
    return gaps


def _simulate_plan(
    p_lo: int,
    p_hi: int,
    widths: List[int],
    proposed: Optional[List[int]],
    below: List[_BelowGap],
    quota: int,
    gap_cap: Optional[int] = None,
) -> tuple:
    """Realize a gap plan with live merge bookkeeping.

    When ``proposed`` is None, gaps are chosen eagerly (max admissible at
    each position); otherwise each proposed gap is clamped to what the
    live chain budget still admits.  ``below`` is mutated: every placed
    gap merges the below components it overlaps.

    Returns:
        (plan, leftover) — the realized gap before each cell and the free
        sites that could not be placed (they land after the last cell).
    """
    remaining = (p_hi - p_lo) - sum(widths)
    cursor = p_lo
    plan: List[int] = []
    cap = quota if gap_cap is None else min(gap_cap, quota)
    for i, w in enumerate(widths):
        g_cap = min(cap, remaining, p_hi - cursor)
        if proposed is not None:
            g_cap = min(g_cap, proposed[i])
        g = _max_chain_gap(cursor, g_cap, below, quota)
        if g > 0:
            overlapped = [
                b for b in below if b.hi > cursor and b.lo < cursor + g
            ]
            if overlapped:
                merged = g + sum(b.weight for b in overlapped)
                for b in overlapped:
                    b.weight = merged
        cursor += g + w
        remaining -= g
        plan.append(g)
    return plan, remaining


def _respace_pass(
    layout: Layout,
    thresh_er: int,
    report: CellShiftReport,
    direction_mode: str = "alternate",
) -> None:
    """Constructive row re-spacing (the default CS strategy).

    Processes rows bottom-up.  Within each row, movable cells are re-spaced
    (order preserved, fixed cells act as immovable barriers) so that every
    free gap holds at most ``thresh_er − 1`` sites *including* whatever
    below-row components it merges with (chain-aware budgeting) — so no
    gap-graph component can reach the threshold.  This reaches Algorithm
    1's stated post-condition directly; the literal per-vertex greedy
    provably strands the conserved free space in above-threshold blobs at
    the blocked core edges once free space exceeds a few percent.
    """
    quota = thresh_er - 1
    # At high free ratios (low utilization) strict per-row fragmentation
    # runs out of admissible columns; capping every gap at half quota lets
    # adjacent rows stack gaps pairwise within one chain budget, roughly
    # doubling the usable column capacity.
    free_ratio = 1.0 - layout.utilization()
    pair_rows = free_ratio > 0.40
    half_cap = (quota + 1) // 2
    tracker = _IncrementalBelow() if kernels.use_vector() else None
    for row_idx in range(layout.num_rows):
        occ = layout.occupancy[row_idx]
        placements = list(occ)  # sorted by start
        # Segment boundaries: core edges and fixed cells.
        segments = []
        seg_start = 0
        movable_run: List = []
        for p in placements:
            if p.name in layout.fixed:
                segments.append((seg_start, p.start, movable_run))
                seg_start = p.end
                movable_run = []
            else:
                movable_run.append(p)
        segments.append((seg_start, occ.row.num_sites, movable_run))

        if tracker is not None:
            below = tracker.below_gaps()
        else:
            below = _below_weights(layout, row_idx)
        # "alternate": adjacent rows park their gaps (and leftover tails)
        # at opposite ends — best when most rows absorb their free budget.
        # "forward": every row scans rightward, consolidating all leftover
        # tails into one right-edge channel — better at very low
        # utilization, where per-row leftovers are inevitable and parking
        # them at alternating edges saturates both edges' chain budgets.
        if direction_mode == "alternate":
            rightward = row_idx % 2 == 0
        else:
            rightward = direction_mode == "forward"
        w_row = occ.row.num_sites
        if not rightward:
            # Work in mirrored coordinates so the planner is always a
            # forward scan; targets are mapped back afterwards.
            below = [
                _BelowGap(w_row - b.hi, w_row - b.lo, b.weight)
                for b in reversed(below)
            ]

        for seg_lo, seg_hi, cells in segments:
            if not cells:
                continue
            if rightward:
                p_lo, p_hi = seg_lo, seg_hi
                ordered = cells
            else:
                p_lo, p_hi = w_row - seg_hi, w_row - seg_lo
                ordered = list(reversed(cells))
            widths = [p.width for p in ordered]
            free = (p_hi - p_lo) - sum(widths)

            gap_cap = half_cap if pair_rows else None
            # Plan 1 — eager scan with live merge bookkeeping.
            snapshot = [(b.lo, b.hi, b.weight) for b in below]
            plan, remaining = _simulate_plan(
                p_lo, p_hi, widths, None, below, quota, gap_cap=gap_cap
            )
            if remaining > 0:
                # Plan 2 — optimal gap budget via the reachability DP,
                # re-simulated with live bookkeeping (clamped where the
                # DP's merge-free approximation oversubscribed a chain).
                below_dp = [_BelowGap(lo, hi, w) for lo, hi, w in snapshot]
                raw = _dp_gap_layout(
                    p_lo, p_hi, widths, below_dp, quota, gap_cap=gap_cap
                )
                if raw is not None:
                    below2 = [_BelowGap(lo, hi, w) for lo, hi, w in snapshot]
                    plan2, remaining2 = _simulate_plan(
                        p_lo, p_hi, widths, raw, below2, quota, gap_cap=gap_cap
                    )
                    if remaining2 < remaining:
                        plan, remaining = plan2, remaining2
                        below[:] = below2
                    # else: keep plan 1; `below` already carries its state
            if remaining > 0 and gap_cap is not None:
                # The half-quota cap starved this row: retry uncapped.
                below3 = [_BelowGap(lo, hi, w) for lo, hi, w in snapshot]
                plan3, remaining3 = _simulate_plan(
                    p_lo, p_hi, widths, None, below3, quota
                )
                if remaining3 < remaining:
                    plan, remaining = plan3, remaining3
                    below[:] = below3

            # Apply: compute per-cell targets from the adopted plan.
            targets = []
            cursor = p_lo
            for p, g in zip(ordered, plan):
                cursor += g
                start = cursor if rightward else w_row - cursor - p.width
                targets.append((p.name, p.start, p.width, start))
                cursor += p.width
            # Vacate the whole segment, then place at the targets —
            # collision-proof regardless of move directions.
            if all(t[1] == t[3] for t in targets):
                continue
            for name, _, _, _ in targets:
                layout.unplace(name)
            for name, old_start, _, new_start in targets:
                layout.place(name, row_idx, new_start)
                if new_start != old_start:
                    report.moves += 1
                    report.shifted_sites += abs(new_start - old_start)

        if tracker is not None:
            # The row is final now; extend the incremental gap graph so the
            # next row reads its below-weights without a full rebuild.
            tracker.add_row(occ.free_intervals())


def _adopt_placements(dst: Layout, src: Layout) -> None:
    """Copy every movable placement of ``src`` onto ``dst`` (same design)."""
    movable = [n for n in list(dst.placements) if n not in dst.fixed]
    for name in movable:
        dst.unplace(name)
    for name in movable:
        pl = src.placement(name)
        dst.place(name, pl.row, pl.start)


def cell_shift(
    layout: Layout,
    thresh_er: int = DEFAULT_THRESH_ER,
    strategy: str = "respace",
    bidirectional: bool = True,
    max_rounds: int = 3,
    max_batches_per_row: int = 10_000,
    assets: Optional[object] = None,
    distances: Optional[dict] = None,
) -> CellShiftReport:
    """Run the Cell Shift operator on ``layout`` (mutated in place).

    Two strategies, both restricted to Algorithm 1's move set (horizontal
    in-row shifts of non-fixed cells, cell order preserved):

    * ``"respace"`` (default) — constructive row re-spacing: every gap is
      capped at ``thresh_er − 1`` sites and placed off the columns of the
      row below, so no gap-graph component can reach the threshold.  This
      reaches Algorithm 1's stated post-condition directly.
    * ``"greedy"`` — the literal Algorithm 1 loop (forward pass plus the
      mirrored reverse pass), repeated up to ``max_rounds`` times.  At
      free-space ratios above a few percent the greedy strands the
      conserved free space in above-threshold blobs at the blocked core
      edges; it is kept as the faithful reference for comparison and as
      the ablation target.

    Args:
        layout: A placed layout; cells in ``layout.fixed`` never move.
        thresh_er: The exploitable-region site threshold.
        strategy: ``"respace"`` or ``"greedy"``.
        bidirectional: (greedy) run the mirrored second pass.
        max_rounds: (greedy) maximum forward+reverse sweep repetitions.
        max_batches_per_row: (greedy) safety bound on shifts per row.

    Returns:
        A :class:`CellShiftReport`.

    Raises:
        FlowError: On a non-positive threshold or unknown strategy.
    """
    if thresh_er < 1:
        raise FlowError("thresh_er must be >= 1")
    if strategy not in ("respace", "greedy"):
        raise FlowError(f"unknown cell-shift strategy {strategy!r}")
    report = CellShiftReport()
    report.regions_before = len(
        layout.gap_graph().exploitable_components(thresh_er)
    )
    if strategy == "respace":

        def score(trial: Layout) -> float:
            if assets is not None and distances is not None:
                rep = find_exploitable_regions(
                    trial, None, assets, thresh_er=thresh_er, distances=distances
                )
                return float(rep.er_sites)
            return float(_exploitable_sites(trial, thresh_er))

        # Try the direction policies on clones and keep the best.  The
        # uniform policies consolidate the inevitable low-utilization
        # leftovers into one edge channel — if that edge lies beyond the
        # assets' exploitable distance, the channel is harmless, which the
        # distance-aware score (when assets/distances are given) rewards.
        # The untouched layout seeds the candidate list: on degenerate
        # near-empty layouts every direction policy can only fragment the
        # one big component into more exploitable sites, and the right
        # answer is to not move at all.
        candidates = [(score(layout), layout.clone(), CellShiftReport())]
        for mode in ("alternate", "forward", "backward"):
            trial = layout.clone()
            trial_report = CellShiftReport()
            best = _exploitable_sites(trial, thresh_er)
            for _ in range(max_rounds):
                undo = trial.clone()
                undo_moves = (trial_report.moves, trial_report.shifted_sites)
                _respace_pass(trial, thresh_er, trial_report, direction_mode=mode)
                now = _exploitable_sites(trial, thresh_er)
                if now >= best:
                    # A non-improving pass must not stick: keep the state
                    # that produced `best`, not the worsened one.
                    trial = undo
                    trial_report.moves, trial_report.shifted_sites = undo_moves
                    break
                best = now
            candidates.append((score(trial), trial, trial_report))
        _, winner, winner_report = min(candidates, key=lambda c: c[0])
        _adopt_placements(layout, winner)
        report.moves += winner_report.moves
        report.shifted_sites += winner_report.shifted_sites
    else:
        best = _exploitable_sites(layout, thresh_er)
        for _ in range(max_rounds):
            _shift_pass(layout, thresh_er, reverse=False, report=report,
                        max_batches_per_row=max_batches_per_row)
            if bidirectional:
                _shift_pass(layout, thresh_er, reverse=True, report=report,
                            max_batches_per_row=max_batches_per_row)
            now = _exploitable_sites(layout, thresh_er)
            if now >= best:
                break
            best = now
    report.regions_after = len(
        layout.gap_graph().exploitable_components(thresh_er)
    )
    return report
