"""The GDSII-Guard flow parameter space (Table I of the paper).

============== =========================================== ================
Parameter      Description                                 Candidate values
============== =========================================== ================
op_select      The selected ECO-place operator             "CS", "LDA"
LDA::N         #Grids in a row/column                      2, 4, 8, 16, 32
LDA::n_iter    #Density adjustment iterations              1, 2, 3
RWS::scale_M_i Routing width scale of metal i (i = 1..K)   1.0, 1.2, 1.5
============== =========================================== ================

With K = 10 routing layers the space holds ``3^10 × (1 + 5·3) = 944,784``
configurations — the paper's "up to 945k" (the LDA genes are only counted
when op_select = LDA; a CS configuration ignores them).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import FlowError
from repro.route.ndr import NonDefaultRule

OP_CHOICES: Tuple[str, ...] = ("CS", "LDA")
LDA_N_CHOICES: Tuple[int, ...] = (2, 4, 8, 16, 32)
LDA_ITER_CHOICES: Tuple[int, ...] = (1, 2, 3)
RWS_SCALE_CHOICES: Tuple[float, ...] = (1.0, 1.2, 1.5)


@dataclass(frozen=True)
class FlowConfig:
    """One point of the flow parameter space (a GA chromosome, decoded).

    Attributes:
        op_select: ``"CS"`` or ``"LDA"``.
        lda_n: LDA grid count per axis (ignored when op_select = CS).
        lda_n_iter: LDA iteration count (ignored when op_select = CS).
        rws_scales: Per-layer routing width factors, length K.
    """

    op_select: str
    lda_n: int
    lda_n_iter: int
    rws_scales: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.op_select not in OP_CHOICES:
            raise FlowError(f"op_select {self.op_select!r} not in {OP_CHOICES}")
        if self.lda_n not in LDA_N_CHOICES:
            raise FlowError(f"LDA::N {self.lda_n} not in {LDA_N_CHOICES}")
        if self.lda_n_iter not in LDA_ITER_CHOICES:
            raise FlowError(
                f"LDA::n_iter {self.lda_n_iter} not in {LDA_ITER_CHOICES}"
            )
        for s in self.rws_scales:
            if s not in RWS_SCALE_CHOICES:
                raise FlowError(
                    f"RWS scale {s} not in {RWS_SCALE_CHOICES}"
                )

    @property
    def num_layers(self) -> int:
        """Number of routing layers covered by the RWS genes."""
        return len(self.rws_scales)

    def ndr(self) -> NonDefaultRule:
        """The non-default rule the RWS genes describe."""
        return NonDefaultRule.from_list(self.rws_scales)

    def canonical(self) -> "FlowConfig":
        """Collapse don't-care genes (LDA genes of a CS config) for dedup."""
        if self.op_select == "CS":
            return replace(self, lda_n=LDA_N_CHOICES[0], lda_n_iter=LDA_ITER_CHOICES[0])
        return self


class ParameterSpace:
    """The discrete search space over :class:`FlowConfig`.

    Provides sampling, mutation, crossover, and a gene-vector codec for
    the genetic optimizer.  The gene vector layout is::

        [op, lda_n_idx, lda_iter_idx, scale_idx_1, ..., scale_idx_K]

    with every gene an index into the corresponding candidate tuple.
    """

    def __init__(self, num_layers: int = 10) -> None:
        if num_layers < 1:
            raise FlowError("num_layers must be >= 1")
        self.num_layers = num_layers

    # ------------------------------------------------------------------ #
    # size and defaults
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        """Number of distinct configurations (LDA genes counted only for
        op_select = LDA, matching the paper's 945k for K = 10)."""
        lda_combos = len(LDA_N_CHOICES) * len(LDA_ITER_CHOICES)
        return len(RWS_SCALE_CHOICES) ** self.num_layers * (1 + lda_combos)

    def default(self) -> FlowConfig:
        """The identity-ish configuration: CS with no width scaling."""
        return FlowConfig(
            op_select="CS",
            lda_n=LDA_N_CHOICES[0],
            lda_n_iter=LDA_ITER_CHOICES[0],
            rws_scales=tuple([1.0] * self.num_layers),
        )

    # ------------------------------------------------------------------ #
    # gene codec
    # ------------------------------------------------------------------ #

    @property
    def genome_length(self) -> int:
        """Genes per chromosome: 3 + K."""
        return 3 + self.num_layers

    def gene_cardinalities(self) -> List[int]:
        """Number of alleles of each gene position."""
        return (
            [len(OP_CHOICES), len(LDA_N_CHOICES), len(LDA_ITER_CHOICES)]
            + [len(RWS_SCALE_CHOICES)] * self.num_layers
        )

    def encode(self, config: FlowConfig) -> List[int]:
        """FlowConfig → gene index vector."""
        if config.num_layers != self.num_layers:
            raise FlowError(
                f"config has {config.num_layers} RWS genes, space wants "
                f"{self.num_layers}"
            )
        return (
            [
                OP_CHOICES.index(config.op_select),
                LDA_N_CHOICES.index(config.lda_n),
                LDA_ITER_CHOICES.index(config.lda_n_iter),
            ]
            + [RWS_SCALE_CHOICES.index(s) for s in config.rws_scales]
        )

    def decode(self, genes: Sequence[int]) -> FlowConfig:
        """Gene index vector → FlowConfig."""
        if len(genes) != self.genome_length:
            raise FlowError(
                f"genome length {len(genes)}, expected {self.genome_length}"
            )
        return FlowConfig(
            op_select=OP_CHOICES[genes[0]],
            lda_n=LDA_N_CHOICES[genes[1]],
            lda_n_iter=LDA_ITER_CHOICES[genes[2]],
            rws_scales=tuple(RWS_SCALE_CHOICES[g] for g in genes[3:]),
        )

    # ------------------------------------------------------------------ #
    # GA operators
    # ------------------------------------------------------------------ #

    def random(self, rng: np.random.Generator) -> FlowConfig:
        """Uniform random configuration."""
        genes = [int(rng.integers(c)) for c in self.gene_cardinalities()]
        return self.decode(genes)

    def mutate(
        self,
        config: FlowConfig,
        rng: np.random.Generator,
        rate: float = None,
    ) -> FlowConfig:
        """Per-gene uniform resampling at probability ``rate``.

        Default rate is 1/genome_length (the standard GA setting), with at
        least one gene guaranteed to change.
        """
        cards = self.gene_cardinalities()
        if rate is None:
            rate = 1.0 / len(cards)
        genes = self.encode(config)
        changed = False
        for i, c in enumerate(cards):
            if rng.random() < rate:
                new = int(rng.integers(c))
                changed = changed or (new != genes[i])
                genes[i] = new
        if not changed:
            i = int(rng.integers(len(cards)))
            genes[i] = (genes[i] + 1 + int(rng.integers(cards[i] - 1))) % cards[i]
        return self.decode(genes)

    def crossover(
        self,
        a: FlowConfig,
        b: FlowConfig,
        rng: np.random.Generator,
    ) -> Tuple[FlowConfig, FlowConfig]:
        """Uniform crossover: each gene swaps between children at p = 0.5."""
        ga, gb = self.encode(a), self.encode(b)
        ca, cb = list(ga), list(gb)
        for i in range(len(ga)):
            if rng.random() < 0.5:
                ca[i], cb[i] = gb[i], ga[i]
        return self.decode(ca), self.decode(cb)
