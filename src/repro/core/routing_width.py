"""Routing Width Scaling (RWS) — the anti-Trojan ECO routing operator.

RWS edits the non-default rule (NDR) to widen wires on selected metal
layers.  Wider wires consume proportionally more routing track — denying
leftover tracks to a Trojan's tap and trigger wiring — and have lower
resistance, which can *improve* timing on long nets; the risk is
congestion, which is why the layer scales are genes of the multi-objective
search rather than fixed.

The operator itself is the ECO re-route of the design under the new NDR.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import FlowError
from repro.layout.layout import Layout
from repro.route.ndr import NonDefaultRule
from repro.route.router import RoutingResult, global_route


def routing_width_scaling(
    layout: Layout,
    scales: Sequence[float],
    ripup_passes: int = 1,
) -> Tuple[NonDefaultRule, RoutingResult]:
    """Re-route ``layout`` with per-layer width scales.

    Args:
        layout: A placed layout.
        scales: ``scale_M[i]`` for layer i at ``scales[i-1]``; length must
            equal the technology's layer count.
        ripup_passes: Rip-up rounds for the router.

    Returns:
        The applied :class:`NonDefaultRule` and the new routing result.
    """
    k = layout.technology.num_layers
    if len(scales) != k:
        raise FlowError(
            f"RWS needs {k} layer scales, got {len(scales)}"
        )
    ndr = NonDefaultRule.from_list(scales)
    routing = global_route(layout, ndr=ndr, ripup_passes=ripup_passes)
    return ndr, routing
