"""The global-routing gcell grid.

The core is tiled into gcells (a few sites wide, two rows tall).  Every
gcell × layer has a track capacity derived from the layer's pitch and the
gcell's extent perpendicular to the routing direction; routed segments
consume capacity (scaled by the NDR width factor).  Overflow — usage above
capacity — is the congestion signal for DRC counting and rip-up.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.geometry import Rect
from repro.kernels import use_vector
from repro.kernels import routegrid as _rk
from repro.tech.technology import Technology

#: Default gcell extent in sites / rows — chosen so gcells are near-square
#: in µm for the Nangate-like technology (15 × 0.19 ≈ 2 × 1.4).
GCELL_SITES = 24
GCELL_ROWS = 3

#: Fraction of the theoretical tracks actually routable (the rest is lost
#: to pins, power stripes, and vias — the usual global-routing derate).
CAPACITY_DERATE = 0.75


class RoutingGrid:
    """Track capacities and usage over a gcell grid.

    Attributes:
        nx, ny: Grid dimensions in gcells.
        capacity: ``(K, nx, ny)`` float array of track capacity.
        usage: ``(K, nx, ny)`` float array of consumed tracks.
    """

    def __init__(
        self,
        technology: Technology,
        core: Rect,
        gcell_sites: int = GCELL_SITES,
        gcell_rows: int = GCELL_ROWS,
        capacity_derate: float = CAPACITY_DERATE,
    ) -> None:
        if gcell_sites < 1 or gcell_rows < 1:
            raise RoutingError("gcell extents must be >= 1")
        self.technology = technology
        self.core = core
        self.gcell_w = gcell_sites * technology.site_width
        self.gcell_h = gcell_rows * technology.row_height
        self.nx = max(int(np.ceil(core.width / self.gcell_w)), 1)
        self.ny = max(int(np.ceil(core.height / self.gcell_h)), 1)
        k = technology.num_layers
        self.capacity = np.zeros((k, self.nx, self.ny), dtype=float)
        self.usage = np.zeros((k, self.nx, self.ny), dtype=float)
        #: kernel mode snapshot; the router checks this to pick slice-based
        #: fast paths (grids are short-lived, so per-grid caching is fine).
        self._vector = use_vector()
        for layer in technology.layers:
            if layer.direction == "H":
                tracks = self.gcell_h / layer.track_pitch
            else:
                tracks = self.gcell_w / layer.track_pitch
            self.capacity[layer.index - 1, :, :] = tracks * capacity_derate
        #: with every bin's capacity positive (the universal case) the
        #: congestion probe can skip its divide-by-zero handling.
        self._cap_all_positive = bool(self.capacity.min() > 0.0)
        #: scratch buffer for allocation-free congestion probes.
        self._scratch = np.empty(max(self.nx, self.ny), dtype=float)

    # ------------------------------------------------------------------ #
    # coordinate mapping
    # ------------------------------------------------------------------ #

    def gcell_of(self, x: float, y: float) -> Tuple[int, int]:
        """Gcell indices containing µm point ``(x, y)`` (clamped)."""
        ix = min(max(int(x / self.gcell_w), 0), self.nx - 1)
        iy = min(max(int(y / self.gcell_h), 0), self.ny - 1)
        return ix, iy

    def gcell_rect(self, ix: int, iy: int) -> Rect:
        """µm rectangle of gcell ``(ix, iy)`` (clipped to the core)."""
        return Rect(
            ix * self.gcell_w,
            iy * self.gcell_h,
            min((ix + 1) * self.gcell_w, self.core.xhi),
            min((iy + 1) * self.gcell_h, self.core.yhi),
        )

    def gcells_in_rect(self, rect: Rect) -> Iterator[Tuple[int, int]]:
        """All gcells whose area intersects ``rect``."""
        ix_lo = max(int(rect.xlo / self.gcell_w), 0)
        iy_lo = max(int(rect.ylo / self.gcell_h), 0)
        ix_hi = min(int(np.ceil(rect.xhi / self.gcell_w)), self.nx)
        iy_hi = min(int(np.ceil(rect.yhi / self.gcell_h)), self.ny)
        for ix in range(ix_lo, ix_hi):
            for iy in range(iy_lo, iy_hi):
                yield ix, iy

    # ------------------------------------------------------------------ #
    # usage accounting
    # ------------------------------------------------------------------ #

    def add_segment(
        self, layer_index: int, gcells: List[Tuple[int, int]], demand: float
    ) -> None:
        """Consume ``demand`` tracks on ``layer_index`` along ``gcells``."""
        arr = self.usage[layer_index - 1]
        if self._vector:
            span = _rk.as_span(gcells)
            if span is not None:
                _rk.apply_line(arr, *span, demand)
                return
        for ix, iy in gcells:
            arr[ix, iy] += demand

    def remove_segment(
        self, layer_index: int, gcells: List[Tuple[int, int]], demand: float
    ) -> None:
        """Undo :meth:`add_segment`."""
        arr = self.usage[layer_index - 1]
        if self._vector:
            span = _rk.as_span(gcells)
            if span is not None:
                _rk.apply_line(arr, *span, -demand)
                return
        for ix, iy in gcells:
            arr[ix, iy] -= demand

    def segment_congestion(
        self, layer_index: int, gcells: List[Tuple[int, int]], demand: float
    ) -> float:
        """Worst post-route usage/capacity ratio along a candidate segment."""
        cap = self.capacity[layer_index - 1]
        use = self.usage[layer_index - 1]
        if self._vector:
            span = _rk.as_span(gcells)
            if span is not None:
                return self.line_congestion(layer_index, *span, demand)
        worst = 0.0
        for ix, iy in gcells:
            c = cap[ix, iy]
            ratio = (use[ix, iy] + demand) / c if c > 0 else float("inf")
            worst = max(worst, ratio)
        return worst

    def line_congestion(
        self, layer_index: int, horizontal: bool, lo: int, hi: int,
        fixed: int, demand: float,
    ) -> float:
        """Span-addressed :meth:`segment_congestion` (no gcell list needed)."""
        k = layer_index - 1
        if self._cap_all_positive:
            if hi - lo < 6:
                # Short spans (the common case) beat numpy's per-call
                # overhead with plain scalar arithmetic — the same float64
                # values, so bitwise-identical results.
                usage = self.usage
                capacity = self.capacity
                if horizontal:
                    worst = (
                        usage.item(k, lo, fixed) + demand
                    ) / capacity.item(k, lo, fixed)
                    for i in range(lo + 1, hi + 1):
                        r = (
                            usage.item(k, i, fixed) + demand
                        ) / capacity.item(k, i, fixed)
                        if r > worst:
                            worst = r
                else:
                    worst = (
                        usage.item(k, fixed, lo) + demand
                    ) / capacity.item(k, fixed, lo)
                    for i in range(lo + 1, hi + 1):
                        r = (
                            usage.item(k, fixed, i) + demand
                        ) / capacity.item(k, fixed, i)
                        if r > worst:
                            worst = r
                return worst
            if horizontal:
                c = self.capacity[k, lo : hi + 1, fixed]
                u = self.usage[k, lo : hi + 1, fixed]
            else:
                c = self.capacity[k, fixed, lo : hi + 1]
                u = self.usage[k, fixed, lo : hi + 1]
            # Allocation-free: same elementwise IEEE add/divide, and the
            # max reduction is order-independent.
            buf = self._scratch[: hi - lo + 1]
            np.add(u, demand, out=buf)
            np.divide(buf, c, out=buf)
            return float(buf.max())
        if horizontal:
            c = self.capacity[k, lo : hi + 1, fixed]
            u = self.usage[k, lo : hi + 1, fixed]
        else:
            c = self.capacity[k, fixed, lo : hi + 1]
            u = self.usage[k, fixed, lo : hi + 1]
        return _rk.line_congestion_general(c, u, demand)

    # ------------------------------------------------------------------ #
    # congestion queries
    # ------------------------------------------------------------------ #

    def overflow_map(self) -> np.ndarray:
        """Per (layer, gcell) overflow: ``max(usage - capacity, 0)``."""
        return np.maximum(self.usage - self.capacity, 0.0)

    def num_overflows(self, slack: float = 0.0) -> int:
        """Number of gcell×layer bins with usage above capacity + slack."""
        return int(np.count_nonzero(self.usage > self.capacity + slack))

    def total_overflow(self) -> float:
        """Sum of overflow over all bins (tracks)."""
        return float(self.overflow_map().sum())

    def free_tracks_total(self) -> float:
        """Unused track capacity over the entire core (all layers)."""
        return float(np.maximum(self.capacity - self.usage, 0.0).sum())

    def free_tracks_over(self, rect: Rect) -> float:
        """Unused tracks over µm region ``rect``, pro-rated by area overlap.

        This is the paper's *Free Routing Tracks* primitive: the routing
        resource an attacker could still use above a given region.
        """
        total = 0.0
        free = np.maximum(self.capacity - self.usage, 0.0)
        for ix, iy in self.gcells_in_rect(rect):
            cell_rect = self.gcell_rect(ix, iy)
            overlap = cell_rect.intersection(rect)
            if overlap is None or cell_rect.area <= 0:
                continue
            frac = overlap.area / cell_rect.area
            total += float(free[:, ix, iy].sum()) * frac
        return total
