"""Global routing substrate: gcell grid, NDR width rules, router."""

from repro.route.ndr import NonDefaultRule
from repro.route.grid import RoutingGrid
from repro.route.router import NetRoute, RoutingResult, global_route

__all__ = [
    "NonDefaultRule",
    "RoutingGrid",
    "NetRoute",
    "RoutingResult",
    "global_route",
]
