"""Global router: L/Z-shape routing over the gcell grid with rip-up.

Each net is decomposed into two-pin connections with a nearest-neighbor
(Prim-style) spanning tree, assigned a layer tier by its size (short nets
low, long nets and clocks high — the usual layer-assignment policy), and
routed with the less congested of the two L-shapes.  A bounded rip-up pass
re-routes nets crossing overflowed gcells, trying the alternate L and the
next tier up.

The router honors a :class:`~repro.route.ndr.NonDefaultRule`: a layer's
width scale multiplies the track demand of every segment on it and scales
the net's RC parasitics (R down, C slightly up) — the physical substance
of the paper's Routing Width Scaling operator.

Warm-start re-routing
---------------------
``global_route(..., record_journal=True)`` additionally records a
:class:`RouteJournal`: for every net of the initial pass, its pin points,
the grid bins its routing decisions *probed* (every congestion query made
while choosing shapes and layers), and the segments it committed.  A later
``global_route(..., warm_start=journal)`` replays that journal instead of
re-deciding every net: a net is re-routed only when its pins moved, a
layer it probed changed track demand under the new NDR, or one of its
probed bins was touched by another re-routed net — otherwise its recorded
segments are committed verbatim.  Because the probe set covers every grid
value the net's decision depended on, the replayed initial pass leaves the
grid in *exactly* the state a fresh route would, and the shared rip-up /
hotspot-repair passes then produce an identical result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import RoutingError
from repro.geometry import Point
from repro.kernels import routegrid as _rk
from repro.layout.layout import Layout
from repro.route.grid import RoutingGrid
from repro.route.ndr import NonDefaultRule

#: (horizontal layer, vertical layer) tiers, lowest first.
_TIERS: Tuple[Tuple[int, int], ...] = ((1, 2), (3, 4), (5, 6), (7, 8), (9, 10))

#: Max net HPWL as a fraction of the core semi-perimeter admitted to each
#: base tier, checked in order.
_TIER_FRACTIONS: Tuple[float, ...] = (0.10, 0.22, 0.42, 0.75, float("inf"))

_CLOCK_TIER = (9, 10)


def assign_layer_tier(
    hpwl: float, is_clock: bool, num_layers: int, core_scale: float = 100.0
) -> Tuple[int, int]:
    """(horizontal layer, vertical layer) base tier for a net.

    ``core_scale`` is the core semi-perimeter (µm); tier thresholds scale
    with it so small and large cores get the same relative layer policy.
    The router may still spill the net to higher tiers under congestion.
    """
    if is_clock:
        h, v = _CLOCK_TIER
    else:
        rel = hpwl / max(core_scale, 1e-9)
        base = next(
            i for i, bound in enumerate(_TIER_FRACTIONS) if rel <= bound
        )
        h, v = _TIERS[base]
    # Clamp for thin metal stacks.
    h = min(h, num_layers if num_layers % 2 == 1 else num_layers - 1)
    v = min(v, num_layers if num_layers % 2 == 0 else num_layers - 1)
    return max(h, 1), max(v, 1 if num_layers == 1 else 2)


@dataclass
class RouteSegment:
    """One straight routed piece on a single layer."""

    layer: int
    gcells: List[Tuple[int, int]]
    length_um: float
    demand: float


@dataclass
class NetRoute:
    """The routed shape and parasitics of one net."""

    net: str
    segments: List[RouteSegment] = field(default_factory=list)
    resistance: float = 0.0  # Ω (lumped)
    capacitance: float = 0.0  # fF (lumped)

    @property
    def wirelength(self) -> float:
        """Total routed length (µm)."""
        return sum(s.length_um for s in self.segments)


@dataclass(frozen=True)
class NetJournalEntry:
    """What one net's initial-pass routing decision depended on and chose.

    Attributes:
        points: The net's pin points ``((x, y), ...)`` at record time —
            compared against the current pin points to detect moved pins.
        probe_bins: Every ``(layer, ix, iy)`` grid bin whose congestion the
            decision process queried (over all candidate shapes and tiers).
        probe_layers: The layers appearing in ``probe_bins`` — a net is
            invalidated wholesale when a probed layer's track demand
            changes under a new NDR.
        segments: The segments the initial pass committed, in commit order.
    """

    points: Tuple[Tuple[float, float], ...]
    probe_bins: FrozenSet[Tuple[int, int, int]]
    probe_layers: FrozenSet[int]
    segments: Tuple[RouteSegment, ...]


@dataclass
class RouteJournal:
    """Replayable record of one ``global_route`` initial pass."""

    ndr: NonDefaultRule
    entries: Dict[str, NetJournalEntry] = field(default_factory=dict)


class _ProbeRecorder:
    """RoutingGrid proxy that records congestion-probe locations.

    Duck-types the grid for :func:`_route_net`: congestion queries are
    logged per bin into :attr:`probes` (reset per net with :meth:`begin`),
    everything else delegates to the wrapped grid.
    """

    def __init__(self, grid: RoutingGrid) -> None:
        self._grid = grid
        self.probes: Set[Tuple[int, int, int]] = set()

    def begin(self) -> None:
        self.probes = set()

    def segment_congestion(
        self, layer_index: int, gcells: List[Tuple[int, int]], demand: float
    ) -> float:
        probes = self.probes
        for ix, iy in gcells:
            probes.add((layer_index, ix, iy))
        return self._grid.segment_congestion(layer_index, gcells, demand)

    def line_congestion(
        self, layer_index: int, horizontal: bool, lo: int, hi: int,
        fixed: int, demand: float,
    ) -> float:
        probes = self.probes
        if horizontal:
            for ix in range(lo, hi + 1):
                probes.add((layer_index, ix, fixed))
        else:
            for iy in range(lo, hi + 1):
                probes.add((layer_index, fixed, iy))
        return self._grid.line_congestion(
            layer_index, horizontal, lo, hi, fixed, demand
        )

    def __getattr__(self, name: str):
        return getattr(self._grid, name)

    def entry(
        self,
        points_key: Tuple[Tuple[float, float], ...],
        route: Optional["NetRoute"],
    ) -> NetJournalEntry:
        """Freeze the recorded probes plus the chosen route into an entry."""
        probes = frozenset(self.probes)
        return NetJournalEntry(
            points=points_key,
            probe_bins=probes,
            probe_layers=frozenset(layer for layer, _, _ in probes),
            segments=tuple(route.segments) if route is not None else (),
        )


class RoutingResult:
    """Everything the router produced: grid usage + per-net routes."""

    def __init__(self, grid: RoutingGrid, ndr: NonDefaultRule) -> None:
        self.grid = grid
        self.ndr = ndr
        self.routes: Dict[str, NetRoute] = {}
        #: Initial-pass journal for warm-start re-routing (see module docs);
        #: populated only when the route was run with ``record_journal``.
        self.journal: Optional[RouteJournal] = None
        self._congestion_cache: Dict[str, float] = {}

    @property
    def total_wirelength(self) -> float:
        """Sum of routed lengths over all nets (µm)."""
        return sum(r.wirelength for r in self.routes.values())

    def net_parasitics(self, net: str) -> Tuple[float, float]:
        """(resistance Ω, capacitance fF) of a routed net; (0, 0) if unrouted.

        Both are scaled by the net's congestion factor: a net squeezed
        through overfull gcells detours and couples in the real detailed
        route, which shows up as extra RC.
        """
        r = self.routes.get(net)
        if r is None:
            return (0.0, 0.0)
        k = self.congestion_factor(net)
        return (r.resistance * k, r.capacitance * k)

    def congestion_factor(self, net: str) -> float:
        """Detour/coupling multiplier from the congestion along the route.

        1.0 while the worst gcell on the route is under 80 % utilization,
        then grows with the overflow ratio (a net through a 2×-overfull
        gcell pays ~36 % extra RC).  Cached after first query.
        """
        cached = self._congestion_cache.get(net)
        if cached is not None:
            return cached
        route = self.routes.get(net)
        factor = 1.0
        if route is not None:
            cap = self.grid.capacity
            use = self.grid.usage
            if self.grid._vector:
                worst = _rk.route_worst_ratio(cap, use, route.segments)
            else:
                worst = 0.0
                for seg in route.segments:
                    layer = seg.layer - 1
                    for ix, iy in seg.gcells:
                        c = cap[layer, ix, iy]
                        if c > 0:
                            worst = max(worst, use[layer, ix, iy] / c)
            factor = 1.0 + 0.3 * max(0.0, worst - 0.8)
        self._congestion_cache[net] = factor
        return factor

    def num_overflows(self) -> int:
        """Congestion violations (gcell × layer bins over capacity)."""
        return self.grid.num_overflows()


def _gcell_line(
    grid: RoutingGrid, p1: Point, p2: Point, horizontal: bool
) -> List[Tuple[int, int]]:
    """Gcells traversed by an axis-aligned segment from p1 to p2."""
    a = grid.gcell_of(p1.x, p1.y)
    b = grid.gcell_of(p2.x, p2.y)
    cells: List[Tuple[int, int]] = []
    if horizontal:
        y = a[1]
        lo, hi = sorted((a[0], b[0]))
        cells = [(ix, y) for ix in range(lo, hi + 1)]
    else:
        x = a[0]
        lo, hi = sorted((a[1], b[1]))
        cells = [(x, iy) for iy in range(lo, hi + 1)]
    return cells


#: A candidate piece before materialization:
#: (layer, horizontal, lo, hi, fixed, length_um, demand).
_Piece = Tuple[int, bool, int, int, int, float, float]


def _route_two_pin_spans(
    grid,
    ndr: NonDefaultRule,
    p1: Point,
    p2: Point,
    h_layer: int,
    v_layer: int,
    memo: Optional[Dict[Tuple[int, bool, int, int, int], float]] = None,
) -> Tuple[float, List[RouteSegment]]:
    """Span-based :func:`_route_two_pin` for vector-mode grids.

    Candidate shapes are probed as (lo, hi, fixed) spans — one slice
    reduction each — and only the winning shape's gcell lists are
    materialized.  Candidate order, congestion floats, and the chosen
    segments are identical to the scalar path (``_gcell_line`` always
    yields the same contiguous ascending runs these spans describe).

    ``memo`` caches probe results by (layer, orientation, span): valid as
    long as the grid is unmutated — the caller may share it across the
    tier loop of one pin pair, where shapes repeat with only the layer
    changing and close-by pins collapse several shapes onto one line.
    """
    h_demand = ndr.track_demand(h_layer)
    v_demand = ndr.track_demand(v_layer)
    dx = abs(p1.x - p2.x)
    dy = abs(p1.y - p2.y)
    # Inlined gcell_of (same truncating division + clamp), hoisted locals:
    # these closures run ~10× per two-pin connection.
    gw = grid.gcell_w
    gh = grid.gcell_h
    nxm = grid.nx - 1
    nym = grid.ny - 1
    line = grid.line_congestion
    if memo is None:
        memo = {}

    def h_piece(x_lo: float, x_hi: float, y: float) -> Tuple[float, _Piece]:
        a = int(x_lo / gw)
        a = 0 if a < 0 else (nxm if a > nxm else a)
        b = int(x_hi / gw)
        b = 0 if b < 0 else (nxm if b > nxm else b)
        fy = int(y / gh)
        fy = 0 if fy < 0 else (nym if fy > nym else fy)
        lo, hi = (a, b) if a <= b else (b, a)
        key = (h_layer, True, lo, hi, fy)
        cong = memo.get(key)
        if cong is None:
            cong = line(h_layer, True, lo, hi, fy, h_demand)
            memo[key] = cong
        return cong, (h_layer, True, lo, hi, fy, x_hi - x_lo, h_demand)

    def v_piece(y_lo: float, y_hi: float, x: float) -> Tuple[float, _Piece]:
        a = int(y_lo / gh)
        a = 0 if a < 0 else (nym if a > nym else a)
        b = int(y_hi / gh)
        b = 0 if b < 0 else (nym if b > nym else b)
        fx = int(x / gw)
        fx = 0 if fx < 0 else (nxm if fx > nxm else fx)
        lo, hi = (a, b) if a <= b else (b, a)
        key = (v_layer, False, lo, hi, fx)
        cong = memo.get(key)
        if cong is None:
            cong = line(v_layer, False, lo, hi, fx, v_demand)
            memo[key] = cong
        return cong, (v_layer, False, lo, hi, fx, y_hi - y_lo, v_demand)

    x_lo, x_hi = min(p1.x, p2.x), max(p1.x, p2.x)
    y_lo, y_hi = min(p1.y, p2.y), max(p1.y, p2.y)
    candidates: List[Tuple[float, List[_Piece]]] = []

    def add(pieces: List[Tuple[float, _Piece]]) -> None:
        if pieces:
            candidates.append(
                (max(c for c, _ in pieces), [s for _, s in pieces])
            )

    if dx <= 1e-9 and dy <= 1e-9:
        return 0.0, []
    if dx <= 1e-9:
        add([v_piece(y_lo, y_hi, p1.x)])
    elif dy <= 1e-9:
        add([h_piece(x_lo, x_hi, p1.y)])
    else:
        left, right = (p1, p2) if p1.x <= p2.x else (p2, p1)
        low, high = (p1, p2) if p1.y <= p2.y else (p2, p1)
        add([h_piece(x_lo, x_hi, left.y), v_piece(y_lo, y_hi, right.x)])
        add([h_piece(x_lo, x_hi, right.y), v_piece(y_lo, y_hi, left.x)])
        x_mid = (x_lo + x_hi) / 2.0
        y_mid = (y_lo + y_hi) / 2.0
        add(
            [
                h_piece(left.x, x_mid, left.y),
                v_piece(y_lo, y_hi, x_mid),
                h_piece(x_mid, right.x, right.y),
            ]
        )
        add(
            [
                v_piece(low.y, y_mid, low.x),
                h_piece(x_lo, x_hi, y_mid),
                v_piece(y_mid, high.y, high.x),
            ]
        )
    best_cong, best_pieces = min(candidates, key=lambda c: c[0])
    segs: List[RouteSegment] = []
    for layer, horizontal, lo, hi, fixed, length, demand in best_pieces:
        if horizontal:
            cells = [(ix, fixed) for ix in range(lo, hi + 1)]
        else:
            cells = [(fixed, iy) for iy in range(lo, hi + 1)]
        segs.append(RouteSegment(layer, cells, length, demand))
    return best_cong, segs


def _route_two_pin(
    grid: RoutingGrid,
    ndr: NonDefaultRule,
    p1: Point,
    p2: Point,
    h_layer: int,
    v_layer: int,
    memo: Optional[Dict[Tuple[int, bool, int, int, int], float]] = None,
) -> Tuple[float, List[RouteSegment]]:
    """Route p1→p2 with the less congested of the two L-shapes.

    Returns (worst congestion ratio along the chosen shape, segments).
    """
    if getattr(grid, "_vector", False):
        return _route_two_pin_spans(grid, ndr, p1, p2, h_layer, v_layer, memo)
    h_demand = ndr.track_demand(h_layer)
    v_demand = ndr.track_demand(v_layer)
    dx = abs(p1.x - p2.x)
    dy = abs(p1.y - p2.y)

    def h_piece(x_lo: float, x_hi: float, y: float) -> Tuple[float, RouteSegment]:
        cells = _gcell_line(grid, Point(x_lo, y), Point(x_hi, y), horizontal=True)
        cong = grid.segment_congestion(h_layer, cells, h_demand)
        return cong, RouteSegment(h_layer, cells, x_hi - x_lo, h_demand)

    def v_piece(y_lo: float, y_hi: float, x: float) -> Tuple[float, RouteSegment]:
        cells = _gcell_line(grid, Point(x, y_lo), Point(x, y_hi), horizontal=False)
        cong = grid.segment_congestion(v_layer, cells, v_demand)
        return cong, RouteSegment(v_layer, cells, y_hi - y_lo, v_demand)

    x_lo, x_hi = min(p1.x, p2.x), max(p1.x, p2.x)
    y_lo, y_hi = min(p1.y, p2.y), max(p1.y, p2.y)
    candidates: List[Tuple[float, List[RouteSegment]]] = []

    def add(pieces: List[Tuple[float, RouteSegment]]) -> None:
        if pieces:
            candidates.append(
                (max(c for c, _ in pieces), [s for _, s in pieces])
            )

    if dx <= 1e-9 and dy <= 1e-9:
        return 0.0, []
    if dx <= 1e-9:
        add([v_piece(y_lo, y_hi, p1.x)])
    elif dy <= 1e-9:
        add([h_piece(x_lo, x_hi, p1.y)])
    else:
        left, right = (p1, p2) if p1.x <= p2.x else (p2, p1)
        low, high = (p1, p2) if p1.y <= p2.y else (p2, p1)
        # Two L-shapes plus two Z-shapes (corner line through the middle):
        # the Z detours are what spread demand off the straight-line bbox.
        add([h_piece(x_lo, x_hi, left.y), v_piece(y_lo, y_hi, right.x)])
        add([h_piece(x_lo, x_hi, right.y), v_piece(y_lo, y_hi, left.x)])
        x_mid = (x_lo + x_hi) / 2.0
        y_mid = (y_lo + y_hi) / 2.0
        add(
            [
                h_piece(left.x, x_mid, left.y),
                v_piece(y_lo, y_hi, x_mid),
                h_piece(x_mid, right.x, right.y),
            ]
        )
        add(
            [
                v_piece(low.y, y_mid, low.x),
                h_piece(x_lo, x_hi, y_mid),
                v_piece(y_mid, high.y, high.x),
            ]
        )
    best = min(candidates, key=lambda c: c[0])
    return best


def _spanning_pairs(points: Sequence[Point]) -> List[Tuple[Point, Point]]:
    """Prim-style nearest-neighbor spanning pairs over the pin set.

    High-fanout nets (clocks, resets) fall back to a space-filling chain —
    sort by (x + y) and connect consecutive pins — which is O(n log n) and
    within a small constant of the MST length for clustered pins.
    """
    if len(points) < 2:
        return []
    if len(points) > 24:
        # Serpentine (boustrophedon) chain: sweep y-bands, alternating the
        # x direction per band — close to an MST for spread-out pin sets
        # like clock leaves, and O(n log n).
        band = 5.0  # µm
        def key(p: Point):
            b = int(p.y / band)
            return (b, p.x if b % 2 == 0 else -p.x)

        chain = sorted(points, key=key)
        return list(zip(chain, chain[1:]))
    connected = [points[0]]
    remaining = list(points[1:])
    pairs: List[Tuple[Point, Point]] = []
    while remaining:
        best = None
        best_d = float("inf")
        for i, p in enumerate(remaining):
            for q in connected:
                d = p.manhattan_distance(q)
                if d < best_d:
                    best_d = d
                    best = (i, q)
        i, q = best  # type: ignore[misc]
        p = remaining.pop(i)
        connected.append(p)
        pairs.append((q, p))
    return pairs


def _commit(route: NetRoute, grid: RoutingGrid) -> None:
    for seg in route.segments:
        grid.add_segment(seg.layer, seg.gcells, seg.demand)


def _uncommit(route: NetRoute, grid: RoutingGrid) -> None:
    for seg in route.segments:
        grid.remove_segment(seg.layer, seg.gcells, seg.demand)


def _finalize_parasitics(
    route: NetRoute, layout: Layout, ndr: NonDefaultRule
) -> None:
    """Lumped RC from the routed segments and the layer constants."""
    tech = layout.technology
    resistance = 0.0
    capacitance = 0.0
    for seg in route.segments:
        layer = tech.layer(seg.layer)
        resistance += (
            seg.length_um * layer.unit_resistance * ndr.resistance_factor(seg.layer)
        )
        capacitance += (
            seg.length_um * layer.unit_capacitance * ndr.capacitance_factor(seg.layer)
        )
    route.resistance = resistance
    route.capacitance = capacitance


def _route_net(
    layout: Layout,
    grid: RoutingGrid,
    ndr: NonDefaultRule,
    net_name: str,
    is_clock: bool,
    tier_bump: int = 0,
    points: Optional[Sequence[Point]] = None,
) -> Optional[NetRoute]:
    """Route one net; returns None for single-pin/unplaceable nets."""
    if points is None:
        points = layout.net_pin_points(net_name)
    if len(points) < 2:
        return None
    from repro.geometry import half_perimeter_wirelength

    hpwl = half_perimeter_wirelength(points)
    k = layout.technology.num_layers
    core = layout.core
    base_h, base_v = assign_layer_tier(
        hpwl, is_clock, k, core_scale=core.width + core.height
    )

    # Candidate layer pairs, ordered: base tier, then the tiers above it
    # (the preferred spill direction), then the tiers below.  The router
    # takes the first whose L-shape stays comfortably under capacity,
    # falling back to the least congested — the behaviour of a real
    # congestion-driven layer assigner.
    def clamp(h: int, v: int) -> Tuple[int, int]:
        hh = min(h, k if k % 2 == 1 else k - 1)
        vv = min(v, k if k % 2 == 0 else k - 1)
        return (max(hh, 1), max(vv, 1 if k == 1 else 2))

    base_idx = next(
        (i for i, (h, v) in enumerate(_TIERS) if h >= base_h and v >= base_v),
        len(_TIERS) - 1,
    )
    ordered = list(_TIERS[base_idx:]) + list(reversed(_TIERS[:base_idx]))
    candidates = [clamp(h, v) for h, v in ordered]
    if tier_bump:
        candidates = candidates[min(tier_bump, len(candidates) - 1):]

    route = NetRoute(net=net_name)
    for p_from, p_to in _spanning_pairs(points):
        best_segs: Optional[List[RouteSegment]] = None
        best_cong = float("inf")
        # The grid is unmutated until this pair's winner commits below, so
        # probe results can be shared across the tier attempts.
        memo: Dict[Tuple[int, bool, int, int, int], float] = {}
        for h_layer, v_layer in candidates:
            cong, segs = _route_two_pin(
                grid, ndr, p_from, p_to, h_layer, v_layer, memo
            )
            if cong < best_cong:
                best_cong, best_segs = cong, segs
            if cong <= 0.9:  # fits comfortably: stop at the lowest such tier
                break
        if best_segs is not None:
            route.segments.extend(best_segs)
            for seg in best_segs:
                grid.add_segment(seg.layer, seg.gcells, seg.demand)
    _finalize_parasitics(route, layout, ndr)
    return route


def _mark_bins(
    dirty_bins: Set[Tuple[int, int, int]], segments: Sequence[RouteSegment]
) -> None:
    for seg in segments:
        layer = seg.layer
        for ix, iy in seg.gcells:
            dirty_bins.add((layer, ix, iy))


def _replay_initial(
    layout: Layout,
    grid: RoutingGrid,
    ndr: NonDefaultRule,
    journal: RouteJournal,
    result: RoutingResult,
    clock_nets,
    nets: Sequence[str],
    points_map: Dict[str, List[Point]],
    recorder: _ProbeRecorder,
    entries: Dict[str, NetJournalEntry],
) -> int:
    """Replay ``journal`` as the initial pass; returns #nets reused.

    Exactness argument: process nets in the same (new) HPWL order a fresh
    route would.  ``dirty_bins`` tracks every bin where the evolving grid
    can differ from the journaled run's grid *at the equivalent point in
    time*: the old segments of every invalidated net (marked up front —
    they may sit anywhere in the old order) plus the old and new segments
    of every net re-routed so far.  A journaled net whose probe set avoids
    those bins observes exactly the values it observed when recorded, so
    its decision process — and therefore its segments — replay verbatim;
    any other net is re-routed live against the current grid, which by
    induction equals the fresh router's grid at that point.
    """
    changed_layers = {
        layer
        for layer in range(1, ndr.num_layers + 1)
        if ndr.track_demand(layer) != journal.ndr.track_demand(layer)
    }
    keys = {
        name: tuple((p.x, p.y) for p in points_map[name]) for name in nets
    }
    dirty: Set[str] = set()
    dirty_bins: Set[Tuple[int, int, int]] = set()
    for name in nets:
        entry = journal.entries.get(name)
        if (
            entry is None
            or keys[name] != entry.points
            or entry.probe_layers & changed_layers
        ):
            dirty.add(name)
            if entry is not None:
                _mark_bins(dirty_bins, entry.segments)

    reused = 0
    for name in nets:
        entry = journal.entries.get(name)
        if name not in dirty and entry.probe_bins.isdisjoint(dirty_bins):
            if len(points_map[name]) >= 2:
                route = NetRoute(net=name, segments=list(entry.segments))
                for seg in entry.segments:
                    grid.add_segment(seg.layer, seg.gcells, seg.demand)
                _finalize_parasitics(route, layout, ndr)
                result.routes[name] = route
            entries[name] = entry
            reused += 1
        else:
            if name not in dirty and entry is not None:
                # Became dirty mid-replay: a probed bin was touched by an
                # earlier re-route.  Its old segments join the dirty set
                # so nets after it see the difference too.
                _mark_bins(dirty_bins, entry.segments)
            recorder.begin()
            route = _route_net(
                layout,
                recorder,
                ndr,
                name,
                name in clock_nets,
                points=points_map[name],
            )
            if route is not None:
                result.routes[name] = route
                _mark_bins(dirty_bins, route.segments)
            entries[name] = recorder.entry(keys[name], route)
    return reused


def global_route(
    layout: Layout,
    ndr: Optional[NonDefaultRule] = None,
    ripup_passes: int = 1,
    warm_start: Optional[RouteJournal] = None,
    record_journal: bool = False,
) -> RoutingResult:
    """Route every multi-pin net of ``layout``.

    Args:
        layout: A placed layout (every functional instance placed).
        ndr: Width-scaling rule; default is all-1.0.
        ripup_passes: How many rip-up/re-route rounds to run on nets
            crossing overflowed gcells.
        warm_start: A :class:`RouteJournal` from a previous route of (a
            variant of) this layout; the initial pass replays it, only
            re-routing invalidated nets.  The result is identical to a
            cold route (see the module docs) and carries a fresh journal.
        record_journal: Record the initial pass into ``result.journal``
            so a later call can warm-start from this route (implied by
            ``warm_start``).

    Returns:
        A :class:`RoutingResult` with grid usage and per-net parasitics.
    """
    tech = layout.technology
    if ndr is None:
        ndr = NonDefaultRule.default(tech.num_layers)
    if ndr.num_layers != tech.num_layers:
        raise RoutingError(
            f"NDR covers {ndr.num_layers} layers, technology has {tech.num_layers}"
        )
    record = record_journal or warm_start is not None
    reused = 0
    with obs.timed("route.global"):
        grid = RoutingGrid(tech, layout.core)
        result = RoutingResult(grid, ndr)
        clock_nets = layout.netlist.clock_nets()

        # Short nets first: they have the least routing freedom.
        from repro.geometry import half_perimeter_wirelength

        nets = [n.name for n in layout.netlist.nets if n.num_sinks >= 1]
        points_map = {name: layout.net_pin_points(name) for name in nets}
        hpwl_map = {
            name: half_perimeter_wirelength(points_map[name]) for name in nets
        }
        nets.sort(key=hpwl_map.__getitem__)

        recorder = _ProbeRecorder(grid) if record else None
        entries: Dict[str, NetJournalEntry] = {}
        with obs.timed("route.initial"):
            if warm_start is not None:
                reused = _replay_initial(
                    layout, grid, ndr, warm_start, result, clock_nets,
                    nets, points_map, recorder, entries,
                )
            else:
                for name in nets:
                    target = grid
                    if recorder is not None:
                        recorder.begin()
                        target = recorder
                    route = _route_net(
                        layout, target, ndr, name, name in clock_nets,
                        points=points_map[name],
                    )
                    if route is not None:
                        result.routes[name] = route
                    if recorder is not None:
                        entries[name] = recorder.entry(
                            tuple((p.x, p.y) for p in points_map[name]), route
                        )
        if record:
            result.journal = RouteJournal(ndr=ndr, entries=entries)

        ripped_up = 0
        with obs.timed("route.ripup"):
            for _ in range(ripup_passes):
                if grid.num_overflows() == 0:
                    break
                overflow = grid.overflow_map()
                if grid._vector:
                    victims = _rk.victims_of(overflow > 0, result.routes)
                else:
                    victims = []
                    for name, route in result.routes.items():
                        for seg in route.segments:
                            if any(
                                overflow[seg.layer - 1, ix, iy] > 0
                                for ix, iy in seg.gcells
                            ):
                                victims.append(name)
                                break
                ripped_up += len(victims)
                for name in victims:
                    old = result.routes[name]
                    _uncommit(old, grid)
                    new = _route_net(
                        layout, grid, ndr, name, name in clock_nets, tier_bump=1
                    )
                    if new is not None:
                        result.routes[name] = new
                    else:  # pragma: no cover - defensive; nets stay routable
                        _commit(old, grid)

        with obs.timed("route.drc_repair"):
            _repair_drc_hotspots(layout, grid, ndr, result, clock_nets)
    if obs.is_enabled():
        obs.count("route.nets_routed", len(result.routes))
        obs.count("route.ripup_victims", ripped_up)
        obs.gauge_set("route.overflows", grid.num_overflows(), keep_max=True)
        if warm_start is not None:
            obs.count("route.warm.reused_nets", reused)
            obs.count("route.warm.rerouted_nets", len(nets) - reused)
            obs.observe(
                "route.warm.reuse_fraction", reused / max(len(nets), 1)
            )
    return result


def _repair_drc_hotspots(
    layout: Layout,
    grid: RoutingGrid,
    ndr: NonDefaultRule,
    result: RoutingResult,
    clock_nets,
    max_passes: int = 3,
) -> None:
    """Targeted repair of severely overflowed bins (detailed-router loop).

    The DRC checker only flags bins whose usage exceeds
    ``max(capacity × OVERFLOW_RATIO, capacity + OVERFLOW_MARGIN)``; a real
    detailed router iterates on exactly those hotspots until they stop
    converging.  Each pass rips up only the nets crossing a violating bin
    and re-routes them with escalating freedom.  Bins that no pass can
    relieve (genuinely oversubscribed corners) remain — those are the
    violations the checker reports.
    """
    import numpy as np

    from repro.drc.checker import OVERFLOW_MARGIN, OVERFLOW_RATIO

    threshold = np.maximum(
        grid.capacity * OVERFLOW_RATIO, grid.capacity + OVERFLOW_MARGIN
    )

    def excess() -> float:
        return float(np.maximum(grid.usage - threshold, 0.0).sum())

    # A layout whose routing is drowning (hundreds of hot bins) is beyond
    # what a detailed-router repair loop recovers; don't burn time on it —
    # the DRC count will correctly disqualify the configuration.
    if int((grid.usage > threshold).sum()) > 150:
        return

    for _ in range(max_passes):
        current = excess()
        if current <= 0:
            return
        hot = grid.usage > threshold
        if grid._vector:
            victims = _rk.victims_of(hot, result.routes)
        else:
            victims = []
            for name, route in result.routes.items():
                for seg in route.segments:
                    if any(hot[seg.layer - 1, ix, iy] for ix, iy in seg.gcells):
                        victims.append(name)
                        break
        if not victims:
            return
        improved = False
        for name in victims:
            old = result.routes[name]
            before = excess()
            if before <= 0:
                break
            _uncommit(old, grid)
            new = _route_net(
                layout, grid, ndr, name, name in clock_nets, tier_bump=1
            )
            if new is not None and excess() < before:
                result.routes[name] = new
                improved = True
            else:
                # revert: the reroute did not relieve the hotspot
                if new is not None:
                    _uncommit(new, grid)
                _commit(old, grid)
        result._congestion_cache.clear()
        if not improved:
            return
