"""Non-default routing rules (NDR): per-layer wire-width scaling.

The paper's Routing Width Scaling (RWS) operator edits the NDR in the LEF
to widen wires on selected metal layers.  A wider wire consumes
proportionally more routing track (denying tracks to an attacker) and has
lower resistance (often *improving* timing), at the risk of congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import RoutingError

#: The candidate width-scale values from Table I of the paper.
ALLOWED_SCALES: Tuple[float, ...] = (1.0, 1.2, 1.5)


@dataclass(frozen=True)
class NonDefaultRule:
    """Per-layer routing width scale factors (``scale_M[i]`` in the paper).

    Attributes:
        scales: scale factor for layer i at ``scales[i - 1]``; length K.
    """

    scales: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.scales:
            raise RoutingError("NDR needs at least one layer scale")
        for s in self.scales:
            if s < 1.0 or s > 4.0:
                raise RoutingError(f"layer width scale {s} out of range [1, 4]")

    @classmethod
    def default(cls, num_layers: int) -> "NonDefaultRule":
        """All-1.0 NDR (no width scaling)."""
        return cls(scales=tuple([1.0] * num_layers))

    @classmethod
    def from_list(cls, scales: Sequence[float]) -> "NonDefaultRule":
        """Build from any sequence of per-layer factors."""
        return cls(scales=tuple(float(s) for s in scales))

    @property
    def num_layers(self) -> int:
        """Number of layers covered (K)."""
        return len(self.scales)

    def scale(self, layer_index: int) -> float:
        """Scale factor of 1-based ``layer_index``."""
        if not 1 <= layer_index <= len(self.scales):
            raise RoutingError(f"layer index {layer_index} out of NDR range")
        return self.scales[layer_index - 1]

    def track_demand(self, layer_index: int) -> float:
        """Routing-track demand multiplier of one wire on the layer.

        A wire at k× default width blocks k× the track resource.
        """
        return self.scale(layer_index)

    def resistance_factor(self, layer_index: int) -> float:
        """Wire resistance multiplier (R ∝ 1/width)."""
        return 1.0 / self.scale(layer_index)

    def capacitance_factor(self, layer_index: int) -> float:
        """Wire capacitance multiplier.

        Plate capacitance grows with width but fringe dominates at these
        geometries; a 20 % slope captures the first-order effect.
        """
        return 0.8 + 0.2 * self.scale(layer_index)

    def is_default(self) -> bool:
        """Whether every layer is at 1.0 (no RWS applied)."""
        return all(s == 1.0 for s in self.scales)
