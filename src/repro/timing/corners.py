"""Multi-corner (MMMC-style) timing analysis.

The paper's benchmarks ship SDC + MMMC files: signoff checks setup timing
at a slow corner and (in full flows) hold at a fast one.  The model here
is the standard derating approach — a corner scales cell delays and wire
RC — which is what the single-library substrate can express.  The default
corner set covers slow/typical/fast silicon.

Multi-corner TNS is the worst (most negative) TNS over the corners; the
GDSII-Guard flow itself optimizes the typical corner (as calibrated), and
this module lets a user check a hardened layout at signoff corners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.layout.layout import Layout
from repro.timing.constraints import TimingConstraints
from repro.timing.delay import DelayCalculator
from repro.timing.sta import STAResult, run_sta


@dataclass(frozen=True)
class Corner:
    """One analysis corner.

    Attributes:
        name: Corner name (``"slow"``, ``"typical"``...).
        cell_derate: Multiplier on every cell arc delay.
        wire_derate: Multiplier on every net's RC.
    """

    name: str
    cell_derate: float = 1.0
    wire_derate: float = 1.0


#: The default corner set: ±12 % silicon with ±10 % interconnect.
DEFAULT_CORNERS: Tuple[Corner, ...] = (
    Corner("slow", cell_derate=1.12, wire_derate=1.10),
    Corner("typical", cell_derate=1.0, wire_derate=1.0),
    Corner("fast", cell_derate=0.88, wire_derate=0.92),
)


@dataclass
class MultiCornerResult:
    """STA results per corner plus the signoff summary."""

    results: Dict[str, STAResult]

    @property
    def worst_tns(self) -> float:
        """Most negative TNS over all corners."""
        return min(r.tns for r in self.results.values())

    @property
    def worst_corner(self) -> str:
        """Name of the corner with the worst TNS."""
        return min(self.results, key=lambda name: self.results[name].tns)

    def tns_by_corner(self) -> Dict[str, float]:
        """Corner name → TNS."""
        return {name: r.tns for name, r in self.results.items()}


def run_multi_corner_sta(
    layout: Layout,
    constraints: TimingConstraints,
    corners: Sequence[Corner] = DEFAULT_CORNERS,
    routing: Optional[object] = None,
) -> MultiCornerResult:
    """Run setup STA at every corner.

    Returns:
        A :class:`MultiCornerResult`; ``worst_tns`` is the signoff number.
    """
    results: Dict[str, STAResult] = {}
    for corner in corners:
        dc = DelayCalculator(
            layout,
            routing,
            cell_derate=corner.cell_derate,
            wire_derate=corner.wire_derate,
        )
        results[corner.name] = run_sta(
            layout, constraints, routing=routing, delay_calc=dc
        )
    return MultiCornerResult(results=results)
