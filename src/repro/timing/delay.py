"""Delay calculation: cell arcs plus lumped-Elmore wire delays.

Wire parasitics come from the router when a :class:`RoutingResult` is
available; otherwise they are estimated from net HPWL with mid-stack layer
constants (the standard pre-route estimate).  All delays are in ns,
capacitance in fF, resistance in Ω.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.geometry import half_perimeter_wirelength
from repro.layout.layout import Layout
from repro.netlist.netlist import Net

#: Capacitive load presented by an output port (pad driver input), fF.
PORT_LOAD_FF = 2.0

#: Layer used for pre-route parasitic estimates (mid stack).
_ESTIMATE_LAYER = 5


def estimate_parasitics(layout: Layout, net_name: str) -> Tuple[float, float]:
    """Pre-route (R, C) of a net from its HPWL and mid-layer constants."""
    points = layout.net_pin_points(net_name)
    length = half_perimeter_wirelength(points)
    layer = layout.technology.layer(
        min(_ESTIMATE_LAYER, layout.technology.num_layers)
    )
    return (length * layer.unit_resistance, length * layer.unit_capacitance)


class DelayCalculator:
    """Computes net loads, wire delays, and cell arc delays for a layout.

    ``cell_derate`` / ``wire_derate`` scale the cell arc delays and wire
    RC respectively — the lever multi-corner (MMMC) analysis uses to model
    slow/fast silicon and interconnect corners.
    """

    def __init__(
        self,
        layout: Layout,
        routing: Optional[object] = None,
        cell_derate: float = 1.0,
        wire_derate: float = 1.0,
    ) -> None:
        self.layout = layout
        self.routing = routing  # RoutingResult or None
        self.cell_derate = cell_derate
        self.wire_derate = wire_derate
        self._parasitics_cache: Dict[str, Tuple[float, float]] = {}

    def net_parasitics(self, net_name: str) -> Tuple[float, float]:
        """(R Ω, C fF) of the net, routed if possible, estimated otherwise."""
        cached = self._parasitics_cache.get(net_name)
        if cached is not None:
            return cached
        value: Tuple[float, float]
        if self.routing is not None:
            r, c = self.routing.net_parasitics(net_name)
            if r == 0.0 and c == 0.0:
                value = estimate_parasitics(self.layout, net_name)
            else:
                value = (r, c)
        else:
            value = estimate_parasitics(self.layout, net_name)
        if self.wire_derate != 1.0:
            value = (value[0] * self.wire_derate, value[1] * self.wire_derate)
        self._parasitics_cache[net_name] = value
        return value

    def sink_pin_load(self, net: Net) -> float:
        """Total input-pin capacitance hanging on the net (fF)."""
        total = 0.0
        netlist = self.layout.netlist
        for ref in net.sink_pins:
            inst = netlist.instance(ref.instance)
            pin = inst.master.pin(ref.pin)
            if pin.timing is not None:
                total += pin.timing.capacitance
        total += PORT_LOAD_FF * len(net.sink_ports)
        return total

    def net_load(self, net: Net) -> float:
        """Total load seen by the net's driver: wire C plus pin caps (fF)."""
        _, c_wire = self.net_parasitics(net.name)
        return c_wire + self.sink_pin_load(net)

    def wire_delay(self, net: Net) -> float:
        """Lumped Elmore delay of the net (ns): R·(C_wire/2 + C_sinks).

        R is in Ω and C in fF, so R·C is in 1e-6 ns; the 1e-6 factor
        converts to ns.
        """
        r_wire, c_wire = self.net_parasitics(net.name)
        c_sinks = self.sink_pin_load(net)
        return r_wire * (c_wire / 2.0 + c_sinks) * 1e-6

    def arc_delay(self, instance_name: str, from_pin: str, to_pin: str) -> float:
        """Delay of one cell arc given the load of its output net (ns)."""
        inst = self.layout.netlist.instance(instance_name)
        arcs = [
            a
            for a in inst.master.arcs
            if a.from_pin == from_pin and a.to_pin == to_pin
        ]
        if not arcs:
            return 0.0
        out_net_name = inst.connections.get(to_pin)
        load = 0.0
        if out_net_name is not None:
            load = self.net_load(self.layout.netlist.net(out_net_name))
        return max(a.delay(load) for a in arcs) * self.cell_derate

    def invalidate(self, net_name: Optional[str] = None) -> None:
        """Drop cached parasitics (all, or for one net) after layout edits."""
        if net_name is None:
            self._parasitics_cache.clear()
        else:
            self._parasitics_cache.pop(net_name, None)
