"""Static timing analysis: constraints, delay model, STA engine."""

from repro.timing.constraints import TimingConstraints
from repro.timing.delay import DelayCalculator, estimate_parasitics
from repro.timing.sta import EndpointSlack, STAResult, run_sta

__all__ = [
    "TimingConstraints",
    "DelayCalculator",
    "estimate_parasitics",
    "EndpointSlack",
    "STAResult",
    "run_sta",
]
