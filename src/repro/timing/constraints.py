"""SDC-like timing constraints.

The paper's benchmarks each ship with SDC/MMMC files; the only constraint
the GDSII-Guard machinery consumes is the clock period (plus boundary
delays and the flip-flop setup margin), so that is what this carries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TimingError


@dataclass(frozen=True)
class TimingConstraints:
    """Timing specification of a design.

    Attributes:
        clock_period: Target clock period (ns).
        clock_port: Name of the clock input port.
        input_delay: External arrival at data input ports (ns).
        output_delay: External margin required at output ports (ns).
        ff_setup: Flip-flop setup time (ns).
    """

    clock_period: float
    clock_port: str = "clk"
    input_delay: float = 0.0
    output_delay: float = 0.0
    ff_setup: float = 0.04

    def __post_init__(self) -> None:
        if self.clock_period <= 0:
            raise TimingError("clock period must be positive")
        if self.input_delay < 0 or self.output_delay < 0 or self.ff_setup < 0:
            raise TimingError("delays and setup must be non-negative")

    def with_period(self, period: float) -> "TimingConstraints":
        """Copy with a different clock period."""
        return TimingConstraints(
            clock_period=period,
            clock_port=self.clock_port,
            input_delay=self.input_delay,
            output_delay=self.output_delay,
            ff_setup=self.ff_setup,
        )
