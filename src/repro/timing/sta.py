"""Graph-based static timing analysis.

Nets are the timing nodes (every net has exactly one driver).  Sources are
data input ports and flip-flop Q outputs; endpoints are flip-flop D pins
and data output ports.  A forward topological pass computes arrival times,
a backward pass computes required times; endpoint slacks give WNS and TNS
— the paper's timing objective (``min -TNS``).

Clock pins do not propagate data; the clock is ideal (zero skew/latency).
Combinational loops raise :class:`~repro.errors.TimingError`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.errors import TimingError
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist, PortDirection
from repro.timing.constraints import TimingConstraints
from repro.timing.delay import DelayCalculator


@dataclass(frozen=True)
class EndpointSlack:
    """Slack at one timing endpoint.

    Attributes:
        kind: ``"ff_d"`` or ``"port"``.
        name: Flip-flop instance name or port name.
        arrival: Data arrival time (ns).
        required: Required time (ns).
    """

    kind: str
    name: str
    arrival: float
    required: float

    @property
    def slack(self) -> float:
        """Required minus arrival (ns); negative means a violation."""
        return self.required - self.arrival


@dataclass
class STAResult:
    """Full analysis result.

    Attributes:
        arrival: Net name → data arrival time (ns).
        required: Net name → required time (ns).
        endpoints: All endpoint slacks.
        constraints: The constraints analyzed against.
    """

    arrival: Dict[str, float]
    required: Dict[str, float]
    endpoints: List[EndpointSlack]
    constraints: TimingConstraints

    @property
    def wns(self) -> float:
        """Worst negative slack (ns); 0 when all endpoints meet timing."""
        if not self.endpoints:
            return 0.0
        return min(0.0, min(e.slack for e in self.endpoints))

    @property
    def tns(self) -> float:
        """Total negative slack (ns); 0 when all endpoints meet timing."""
        return sum(min(0.0, e.slack) for e in self.endpoints)

    @property
    def worst_endpoint(self) -> Optional[EndpointSlack]:
        """The endpoint with the smallest slack."""
        if not self.endpoints:
            return None
        return min(self.endpoints, key=lambda e: e.slack)

    def net_slack(self, net_name: str) -> float:
        """Slack of one timing node (net): required − arrival."""
        if net_name not in self.arrival or net_name not in self.required:
            raise TimingError(f"net {net_name!r} is not a timing node")
        return self.required[net_name] - self.arrival[net_name]

    def instance_slack(self, layout: Layout, instance_name: str) -> float:
        """Worst slack over the nets touching ``instance_name``.

        This is the per-asset slack budget used to derive the paper's
        *exploitable distance*: the most slack an attacker can consume on
        paths through this cell while still meeting timing.
        """
        inst = layout.netlist.instance(instance_name)
        worst = float("inf")
        for net_name in set(inst.connections.values()):
            if net_name in self.arrival and net_name in self.required:
                worst = min(worst, self.required[net_name] - self.arrival[net_name])
        if worst == float("inf"):
            # Untimed cell (e.g. only touches clock nets): full period.
            return self.constraints.clock_period
        return worst


def _build_graph(
    netlist: Netlist, clock_nets: Set[str]
) -> Tuple[Dict[str, List[Tuple[str, str, str, str]]], Dict[str, int]]:
    """Net-level timing graph.

    Returns:
        successors: net → list of (instance, in_pin, out_pin, out_net)
            combinational arcs leaving the net.
        indegree: data-arc indegree of every net node.
    """
    successors: Dict[str, List[Tuple[str, str, str, str]]] = {}
    indegree: Dict[str, int] = {}
    for net in netlist.nets:
        successors.setdefault(net.name, [])
        indegree.setdefault(net.name, 0)
    for inst in netlist.instances:
        if inst.is_sequential or inst.is_filler:
            continue
        out_pins = [
            (p.name, inst.connections.get(p.name))
            for p in inst.master.output_pins
        ]
        for pin in inst.master.input_pins:
            in_net = inst.connections.get(pin.name)
            if in_net is None or in_net in clock_nets:
                continue
            for out_pin, out_net in out_pins:
                if out_net is None:
                    continue
                successors[in_net].append((inst.name, pin.name, out_pin, out_net))
                indegree[out_net] += 1
    return successors, indegree


def run_hold_sta(
    layout: Layout,
    constraints: TimingConstraints,
    routing: Optional[object] = None,
    delay_calc: Optional[DelayCalculator] = None,
    hold_time: float = 0.012,
) -> STAResult:
    """Min-delay (hold) analysis: the shortest path into every flop.

    A flip-flop's D input must stay stable for ``hold_time`` after the
    clock edge, so the *minimum* data arrival must exceed it.  Endpoint
    slack is ``arrival_min − hold_time``; negative means a hold violation
    (reported through the same :class:`STAResult` shape, with ``tns``
    summing the hold violations).

    Hold is checked at the same (ideal, zero-skew) clock as setup, which
    makes violations rare by construction — the check exists so a user can
    verify a hardened layout did not create races at the fast corner
    (pass a fast-corner :class:`~repro.timing.delay.DelayCalculator`).
    """
    netlist = layout.netlist
    dc = delay_calc or DelayCalculator(layout, routing)
    clock_nets = netlist.clock_nets()
    successors, indegree = _build_graph(netlist, clock_nets)

    arrival: Dict[str, float] = {}
    for net in netlist.nets:
        if net.name in clock_nets:
            continue
        if net.driver_port is not None:
            arrival[net.name] = constraints.input_delay
        elif net.driver_pin is not None:
            drv = netlist.instance(net.driver_pin.instance)
            if drv.is_sequential:
                arrival[net.name] = dc.arc_delay(
                    drv.name, "CK", net.driver_pin.pin
                )

    queue = deque(
        name for name, deg in indegree.items()
        if deg == 0 and name not in clock_nets
    )
    while queue:
        net_name = queue.popleft()
        at_here = arrival.get(net_name)
        net = netlist.net(net_name)
        wire = dc.wire_delay(net) if at_here is not None else 0.0
        for inst_name, in_pin, out_pin, out_net in successors[net_name]:
            if at_here is not None:
                cand = at_here + wire + dc.arc_delay(inst_name, in_pin, out_pin)
                if cand < arrival.get(out_net, float("inf")):
                    arrival[out_net] = cand
            indegree[out_net] -= 1
            if indegree[out_net] == 0:
                queue.append(out_net)

    endpoints: List[EndpointSlack] = []
    for inst in netlist.sequential_instances():
        d_net_name = inst.connections.get("D")
        if d_net_name is None or d_net_name not in arrival:
            continue
        at_pin = arrival[d_net_name] + dc.wire_delay(netlist.net(d_net_name))
        # hold: arrival must EXCEED hold_time; slack = arrival − hold.
        endpoints.append(
            EndpointSlack(
                kind="ff_d_hold",
                name=inst.name,
                arrival=hold_time,  # "required" semantics flipped below
                required=at_pin,
            )
        )
    return STAResult(
        arrival=arrival,
        required={},
        endpoints=endpoints,
        constraints=constraints,
    )


def run_sta(
    layout: Layout,
    constraints: TimingConstraints,
    routing: Optional[object] = None,
    delay_calc: Optional[DelayCalculator] = None,
) -> STAResult:
    """Run setup STA on a placed (optionally routed) layout.

    Args:
        layout: The layout whose wire delays to analyze.
        constraints: Clock period and boundary delays.
        routing: Optional :class:`~repro.route.router.RoutingResult` for
            routed parasitics; HPWL estimates are used otherwise.
        delay_calc: Optional pre-built calculator (to share caches).

    Returns:
        An :class:`STAResult`.

    Raises:
        TimingError: On a combinational loop.
    """
    with obs.timed("sta.run"):
        result = _run_sta(layout, constraints, routing, delay_calc)
    if obs.is_enabled():
        obs.count("sta.nodes", len(result.arrival))
        obs.count("sta.endpoints", len(result.endpoints))
    return result


def _run_sta(
    layout: Layout,
    constraints: TimingConstraints,
    routing: Optional[object] = None,
    delay_calc: Optional[DelayCalculator] = None,
) -> STAResult:
    netlist = layout.netlist
    dc = delay_calc or DelayCalculator(layout, routing)
    clock_nets = netlist.clock_nets()
    successors, indegree = _build_graph(netlist, clock_nets)

    arrival: Dict[str, float] = {}
    period = constraints.clock_period

    # --- sources ------------------------------------------------------- #
    for net in netlist.nets:
        if net.name in clock_nets:
            continue
        if net.driver_port is not None:
            arrival[net.name] = constraints.input_delay
        elif net.driver_pin is not None:
            drv = netlist.instance(net.driver_pin.instance)
            if drv.is_sequential:
                arrival[net.name] = dc.arc_delay(
                    drv.name, "CK", net.driver_pin.pin
                )

    # --- forward propagation (Kahn) ------------------------------------ #
    queue = deque(
        name
        for name, deg in indegree.items()
        if deg == 0 and name not in clock_nets
    )
    processed = 0
    data_nodes = sum(1 for n in indegree if n not in clock_nets)
    while queue:
        net_name = queue.popleft()
        processed += 1
        at_here = arrival.get(net_name)
        net = netlist.net(net_name)
        wire = dc.wire_delay(net) if at_here is not None else 0.0
        for inst_name, in_pin, out_pin, out_net in successors[net_name]:
            if at_here is not None:
                cand = at_here + wire + dc.arc_delay(inst_name, in_pin, out_pin)
                if cand > arrival.get(out_net, float("-inf")):
                    arrival[out_net] = cand
            indegree[out_net] -= 1
            if indegree[out_net] == 0:
                queue.append(out_net)
    if processed < data_nodes:
        raise TimingError(
            f"combinational loop: {data_nodes - processed} nets unreachable"
        )

    # --- endpoints ------------------------------------------------------ #
    endpoints: List[EndpointSlack] = []
    required: Dict[str, float] = {}

    def relax_required(net_name: str, value: float) -> None:
        if value < required.get(net_name, float("inf")):
            required[net_name] = value

    for inst in netlist.sequential_instances():
        d_net_name = inst.connections.get("D")
        if d_net_name is None or d_net_name in clock_nets:
            continue
        d_net = netlist.net(d_net_name)
        at = arrival.get(d_net_name)
        if at is None:
            continue
        at_pin = at + dc.wire_delay(d_net)
        req = period - constraints.ff_setup
        endpoints.append(
            EndpointSlack(kind="ff_d", name=inst.name, arrival=at_pin, required=req)
        )
        relax_required(d_net_name, req - dc.wire_delay(d_net))
    for net in netlist.nets:
        if not net.sink_ports or net.name not in arrival:
            continue
        at = arrival[net.name]
        req = period - constraints.output_delay
        for port_name in net.sink_ports:
            endpoints.append(
                EndpointSlack(kind="port", name=port_name, arrival=at, required=req)
            )
        relax_required(net.name, req)

    # --- backward propagation ------------------------------------------ #
    # Reverse-topological relaxation: process nets in reverse of a forward
    # topological order (recompute with a fresh indegree count).
    _, indeg2 = _build_graph(netlist, clock_nets)
    order: List[str] = []
    queue = deque(
        name for name, deg in indeg2.items() if deg == 0 and name not in clock_nets
    )
    while queue:
        net_name = queue.popleft()
        order.append(net_name)
        for _, _, _, out_net in successors[net_name]:
            indeg2[out_net] -= 1
            if indeg2[out_net] == 0:
                queue.append(out_net)
    for net_name in reversed(order):
        net = netlist.net(net_name)
        wire = dc.wire_delay(net)
        for inst_name, in_pin, out_pin, out_net in successors[net_name]:
            if out_net in required:
                arc = dc.arc_delay(inst_name, in_pin, out_pin)
                relax_required(net_name, required[out_net] - arc - wire)

    # Nets with no downstream constraint get the full period as required.
    for net_name in arrival:
        required.setdefault(net_name, period)

    return STAResult(
        arrival=arrival,
        required=required,
        endpoints=endpoints,
        constraints=constraints,
    )
