"""Graph-based static timing analysis.

Nets are the timing nodes (every net has exactly one driver).  Sources are
data input ports and flip-flop Q outputs; endpoints are flip-flop D pins
and data output ports.  A forward topological pass computes arrival times,
a backward pass computes required times; endpoint slacks give WNS and TNS
— the paper's timing objective (``min -TNS``).

Clock pins do not propagate data; the clock is ideal (zero skew/latency).
Combinational loops raise :class:`~repro.errors.TimingError`.

:class:`IncrementalSTA` keeps the full timing state of one layout and,
given a new routing/placement state, re-propagates only the fan-in/fan-out
cones of the nets whose parasitics changed — returning results bitwise
equal to a fresh :func:`run_sta` (arrival is an order-independent max and
required an order-independent min, recomputed with the same formulas).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import kernels, obs
from repro.errors import TimingError
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.timing.constraints import TimingConstraints
from repro.timing.delay import DelayCalculator


@dataclass(frozen=True)
class EndpointSlack:
    """Slack at one timing endpoint.

    Attributes:
        kind: ``"ff_d"`` or ``"port"``.
        name: Flip-flop instance name or port name.
        arrival: Data arrival time (ns).
        required: Required time (ns).
    """

    kind: str
    name: str
    arrival: float
    required: float

    @property
    def slack(self) -> float:
        """Required minus arrival (ns); negative means a violation."""
        return self.required - self.arrival


@dataclass
class STAResult:
    """Full analysis result.

    Attributes:
        arrival: Net name → data arrival time (ns).
        required: Net name → required time (ns).
        endpoints: All endpoint slacks.
        constraints: The constraints analyzed against.
    """

    arrival: Dict[str, float]
    required: Dict[str, float]
    endpoints: List[EndpointSlack]
    constraints: TimingConstraints

    @property
    def wns(self) -> float:
        """Worst negative slack (ns); 0 when all endpoints meet timing."""
        if not self.endpoints:
            return 0.0
        return min(0.0, min(e.slack for e in self.endpoints))

    @property
    def tns(self) -> float:
        """Total negative slack (ns); 0 when all endpoints meet timing."""
        return sum(min(0.0, e.slack) for e in self.endpoints)

    @property
    def worst_endpoint(self) -> Optional[EndpointSlack]:
        """The endpoint with the smallest slack."""
        if not self.endpoints:
            return None
        return min(self.endpoints, key=lambda e: e.slack)

    def net_slack(self, net_name: str) -> float:
        """Slack of one timing node (net): required − arrival."""
        if net_name not in self.arrival or net_name not in self.required:
            raise TimingError(f"net {net_name!r} is not a timing node")
        return self.required[net_name] - self.arrival[net_name]

    def instance_slack(self, layout: Layout, instance_name: str) -> float:
        """Worst slack over the nets touching ``instance_name``.

        This is the per-asset slack budget used to derive the paper's
        *exploitable distance*: the most slack an attacker can consume on
        paths through this cell while still meeting timing.
        """
        inst = layout.netlist.instance(instance_name)
        worst = float("inf")
        for net_name in set(inst.connections.values()):
            if net_name in self.arrival and net_name in self.required:
                worst = min(worst, self.required[net_name] - self.arrival[net_name])
        if worst == float("inf"):
            # Untimed cell (e.g. only touches clock nets): full period.
            return self.constraints.clock_period
        return worst


def _build_graph(
    netlist: Netlist, clock_nets: Set[str]
) -> Tuple[Dict[str, List[Tuple[str, str, str, str]]], Dict[str, int]]:
    """Net-level timing graph.

    Returns:
        successors: net → list of (instance, in_pin, out_pin, out_net)
            combinational arcs leaving the net.
        indegree: data-arc indegree of every net node.
    """
    successors: Dict[str, List[Tuple[str, str, str, str]]] = {}
    indegree: Dict[str, int] = {}
    for net in netlist.nets:
        successors.setdefault(net.name, [])
        indegree.setdefault(net.name, 0)
    for inst in netlist.instances:
        if inst.is_sequential or inst.is_filler:
            continue
        out_pins = [
            (p.name, inst.connections.get(p.name))
            for p in inst.master.output_pins
        ]
        for pin in inst.master.input_pins:
            in_net = inst.connections.get(pin.name)
            if in_net is None or in_net in clock_nets:
                continue
            for out_pin, out_net in out_pins:
                if out_net is None:
                    continue
                successors[in_net].append((inst.name, pin.name, out_pin, out_net))
                indegree[out_net] += 1
    return successors, indegree


def run_hold_sta(
    layout: Layout,
    constraints: TimingConstraints,
    routing: Optional[object] = None,
    delay_calc: Optional[DelayCalculator] = None,
    hold_time: float = 0.012,
) -> STAResult:
    """Min-delay (hold) analysis: the shortest path into every flop.

    A flip-flop's D input must stay stable for ``hold_time`` after the
    clock edge, so the *minimum* data arrival must exceed it.  Endpoint
    slack is ``arrival_min − hold_time``; negative means a hold violation
    (reported through the same :class:`STAResult` shape, with ``tns``
    summing the hold violations).

    Hold is checked at the same (ideal, zero-skew) clock as setup, which
    makes violations rare by construction — the check exists so a user can
    verify a hardened layout did not create races at the fast corner
    (pass a fast-corner :class:`~repro.timing.delay.DelayCalculator`).
    """
    netlist = layout.netlist
    dc = delay_calc or DelayCalculator(layout, routing)
    clock_nets = netlist.clock_nets()
    successors, indegree = _build_graph(netlist, clock_nets)

    arrival: Dict[str, float] = {}
    for net in netlist.nets:
        if net.name in clock_nets:
            continue
        if net.driver_port is not None:
            arrival[net.name] = constraints.input_delay
        elif net.driver_pin is not None:
            drv = netlist.instance(net.driver_pin.instance)
            if drv.is_sequential:
                arrival[net.name] = dc.arc_delay(
                    drv.name, "CK", net.driver_pin.pin
                )

    queue = deque(
        name for name, deg in indegree.items()
        if deg == 0 and name not in clock_nets
    )
    while queue:
        net_name = queue.popleft()
        at_here = arrival.get(net_name)
        net = netlist.net(net_name)
        wire = dc.wire_delay(net) if at_here is not None else 0.0
        for inst_name, in_pin, out_pin, out_net in successors[net_name]:
            if at_here is not None:
                cand = at_here + wire + dc.arc_delay(inst_name, in_pin, out_pin)
                if cand < arrival.get(out_net, float("inf")):
                    arrival[out_net] = cand
            indegree[out_net] -= 1
            if indegree[out_net] == 0:
                queue.append(out_net)

    endpoints: List[EndpointSlack] = []
    for inst in netlist.sequential_instances():
        d_net_name = inst.connections.get("D")
        if d_net_name is None or d_net_name not in arrival:
            continue
        at_pin = arrival[d_net_name] + dc.wire_delay(netlist.net(d_net_name))
        # hold: arrival must EXCEED hold_time; slack = arrival − hold.
        endpoints.append(
            EndpointSlack(
                kind="ff_d_hold",
                name=inst.name,
                arrival=hold_time,  # "required" semantics flipped below
                required=at_pin,
            )
        )
    return STAResult(
        arrival=arrival,
        required={},
        endpoints=endpoints,
        constraints=constraints,
    )


def run_sta(
    layout: Layout,
    constraints: TimingConstraints,
    routing: Optional[object] = None,
    delay_calc: Optional[DelayCalculator] = None,
) -> STAResult:
    """Run setup STA on a placed (optionally routed) layout.

    Args:
        layout: The layout whose wire delays to analyze.
        constraints: Clock period and boundary delays.
        routing: Optional :class:`~repro.route.router.RoutingResult` for
            routed parasitics; HPWL estimates are used otherwise.
        delay_calc: Optional pre-built calculator (to share caches).

    Returns:
        An :class:`STAResult`.

    Raises:
        TimingError: On a combinational loop.
    """
    with obs.timed("sta.run"):
        result = _run_sta(layout, constraints, routing, delay_calc)
    if obs.is_enabled():
        obs.count("sta.nodes", len(result.arrival))
        obs.count("sta.endpoints", len(result.endpoints))
    return result


def _run_sta(
    layout: Layout,
    constraints: TimingConstraints,
    routing: Optional[object] = None,
    delay_calc: Optional[DelayCalculator] = None,
) -> STAResult:
    dc = delay_calc or DelayCalculator(layout, routing)
    if kernels.use_vector():
        from repro.kernels.sta import run_sta_vector

        return run_sta_vector(layout, constraints, dc)
    netlist = layout.netlist
    clock_nets = netlist.clock_nets()
    successors, indegree = _build_graph(netlist, clock_nets)

    arrival: Dict[str, float] = {}
    period = constraints.clock_period

    # --- sources ------------------------------------------------------- #
    for net in netlist.nets:
        if net.name in clock_nets:
            continue
        if net.driver_port is not None:
            arrival[net.name] = constraints.input_delay
        elif net.driver_pin is not None:
            drv = netlist.instance(net.driver_pin.instance)
            if drv.is_sequential:
                arrival[net.name] = dc.arc_delay(
                    drv.name, "CK", net.driver_pin.pin
                )

    # --- forward propagation (Kahn) ------------------------------------ #
    queue = deque(
        name
        for name, deg in indegree.items()
        if deg == 0 and name not in clock_nets
    )
    processed = 0
    data_nodes = sum(1 for n in indegree if n not in clock_nets)
    while queue:
        net_name = queue.popleft()
        processed += 1
        at_here = arrival.get(net_name)
        net = netlist.net(net_name)
        wire = dc.wire_delay(net) if at_here is not None else 0.0
        for inst_name, in_pin, out_pin, out_net in successors[net_name]:
            if at_here is not None:
                cand = at_here + wire + dc.arc_delay(inst_name, in_pin, out_pin)
                if cand > arrival.get(out_net, float("-inf")):
                    arrival[out_net] = cand
            indegree[out_net] -= 1
            if indegree[out_net] == 0:
                queue.append(out_net)
    if processed < data_nodes:
        raise TimingError(
            f"combinational loop: {data_nodes - processed} nets unreachable"
        )

    # --- endpoints ------------------------------------------------------ #
    endpoints: List[EndpointSlack] = []
    required: Dict[str, float] = {}

    def relax_required(net_name: str, value: float) -> None:
        if value < required.get(net_name, float("inf")):
            required[net_name] = value

    for inst in netlist.sequential_instances():
        d_net_name = inst.connections.get("D")
        if d_net_name is None or d_net_name in clock_nets:
            continue
        d_net = netlist.net(d_net_name)
        at = arrival.get(d_net_name)
        if at is None:
            continue
        at_pin = at + dc.wire_delay(d_net)
        req = period - constraints.ff_setup
        endpoints.append(
            EndpointSlack(kind="ff_d", name=inst.name, arrival=at_pin, required=req)
        )
        relax_required(d_net_name, req - dc.wire_delay(d_net))
    for net in netlist.nets:
        if not net.sink_ports or net.name not in arrival:
            continue
        at = arrival[net.name]
        req = period - constraints.output_delay
        for port_name in net.sink_ports:
            endpoints.append(
                EndpointSlack(kind="port", name=port_name, arrival=at, required=req)
            )
        relax_required(net.name, req)

    # --- backward propagation ------------------------------------------ #
    # Reverse-topological relaxation: process nets in reverse of a forward
    # topological order (recompute with a fresh indegree count).
    _, indeg2 = _build_graph(netlist, clock_nets)
    order: List[str] = []
    queue = deque(
        name for name, deg in indeg2.items() if deg == 0 and name not in clock_nets
    )
    while queue:
        net_name = queue.popleft()
        order.append(net_name)
        for _, _, _, out_net in successors[net_name]:
            indeg2[out_net] -= 1
            if indeg2[out_net] == 0:
                queue.append(out_net)
    for net_name in reversed(order):
        net = netlist.net(net_name)
        wire = dc.wire_delay(net)
        for inst_name, in_pin, out_pin, out_net in successors[net_name]:
            if out_net in required:
                arc = dc.arc_delay(inst_name, in_pin, out_pin)
                relax_required(net_name, required[out_net] - arc - wire)

    # Nets with no downstream constraint get the full period as required.
    for net_name in arrival:
        required.setdefault(net_name, period)

    return STAResult(
        arrival=arrival,
        required=required,
        endpoints=endpoints,
        constraints=constraints,
    )


class IncrementalSTA:
    """Delta-STA: full state of one layout, updated cone-by-cone.

    The netlist (hence the timing graph) is immutable across flow
    evaluations — only wire parasitics change, through re-routing or cell
    movement.  Every timing quantity is a function of per-net parasitics
    (wire delay directly; arc delays through the load of the arc's output
    net; flip-flop launch arcs through the load of the Q net), so an
    update (a) diffs the new effective parasitics of every net against the
    cached ones, (b) re-propagates arrivals forward from the dirty nets
    and their successors, stopping where values stop changing, and (c)
    re-relaxes required times backward from the dirty nets and their
    predecessors.  Membership of the arrival/required maps is structural
    (it never changes), endpoint slots keep the full run's order, and the
    recomputed floats use the same expressions on the same
    :class:`~repro.timing.delay.DelayCalculator` values — so
    :meth:`update` is **bitwise equal** to :func:`run_sta` on the new
    state, not merely close.
    """

    def __init__(
        self,
        layout: Layout,
        constraints: TimingConstraints,
        routing: Optional[object] = None,
    ) -> None:
        self.layout = layout
        self.constraints = constraints
        netlist = layout.netlist
        self._clock_nets = netlist.clock_nets()
        self._successors, indegree = _build_graph(netlist, self._clock_nets)

        # In-arcs per net node: out_net -> [(inst, in_pin, out_pin, in_net)].
        self._predecessors: Dict[str, List[Tuple[str, str, str, str]]] = {
            name: [] for name in self._successors
        }
        for in_net, arcs in self._successors.items():
            for inst, in_pin, out_pin, out_net in arcs:
                self._predecessors[out_net].append(
                    (inst, in_pin, out_pin, in_net)
                )

        # Forward topological order over the data nets.
        order: List[str] = []
        indeg = dict(indegree)
        queue = deque(
            n for n, d in indeg.items()
            if d == 0 and n not in self._clock_nets
        )
        while queue:
            net_name = queue.popleft()
            order.append(net_name)
            for _, _, _, out_net in self._successors[net_name]:
                indeg[out_net] -= 1
                if indeg[out_net] == 0:
                    queue.append(out_net)
        data_nodes = sum(1 for n in indegree if n not in self._clock_nets)
        if len(order) < data_nodes:
            raise TimingError(
                f"combinational loop: {data_nodes - len(order)} nets unreachable"
            )
        self._topo = order
        self._topo_pos = {n: i for i, n in enumerate(order)}

        # Source classification: ("port", None) or ("ffq", (inst, pin)).
        self._sources: Dict[str, Tuple[str, Optional[Tuple[str, str]]]] = {}
        for net in netlist.nets:
            if net.name in self._clock_nets:
                continue
            if net.driver_port is not None:
                self._sources[net.name] = ("port", None)
            elif net.driver_pin is not None:
                drv = netlist.instance(net.driver_pin.instance)
                if drv.is_sequential:
                    self._sources[net.name] = (
                        "ffq", (drv.name, net.driver_pin.pin)
                    )

        period = constraints.clock_period
        self._ff_req = period - constraints.ff_setup
        self._port_req = period - constraints.output_delay

        # Full analysis (the oracle) seeds the state; a shared calculator
        # keeps its parasitics cache as this update's baseline.
        dc = DelayCalculator(layout, routing)
        full = run_sta(layout, constraints, routing, dc)
        self._arrival: Dict[str, float] = dict(full.arrival)
        self._parasitics: Dict[str, Tuple[float, float]] = {
            n: dc.net_parasitics(n) for n in self._topo
        }

        # Endpoint slots in the full run's order (FF D's in sequential-
        # instance order, then port sinks in net order), filtered to nets
        # with an arrival — structural, so the slot list is fixed.
        self._slots: List[Tuple[str, str, str]] = []
        self._has_ff_endpoint: Set[str] = set()
        self._has_port_endpoint: Set[str] = set()
        for inst in netlist.sequential_instances():
            d = inst.connections.get("D")
            if d is None or d in self._clock_nets or d not in self._arrival:
                continue
            self._slots.append(("ff_d", inst.name, d))
            self._has_ff_endpoint.add(d)
        for net in netlist.nets:
            if not net.sink_ports or net.name not in self._arrival:
                continue
            for port_name in net.sink_ports:
                self._slots.append(("port", port_name, net.name))
            self._has_port_endpoint.add(net.name)
        self._endpoints: List[EndpointSlack] = list(full.endpoints)

        # Split required into the relax-derived ("raw") part — whose
        # membership is the backward closure of the endpoint nets — and
        # the static period fill for unconstrained arrival nets.
        raw_keys = set(self._has_ff_endpoint) | set(self._has_port_endpoint)
        stack = list(raw_keys)
        while stack:
            n = stack.pop()
            for _, _, _, in_net in self._predecessors[n]:
                if in_net not in raw_keys:
                    raw_keys.add(in_net)
                    stack.append(in_net)
        self._raw: Dict[str, float] = {
            n: full.required[n] for n in raw_keys
        }
        self._fill: Dict[str, float] = {
            n: period for n in self._arrival if n not in raw_keys
        }
        self.result = full

    # ------------------------------------------------------------------ #

    def _compute_arrival(
        self, name: str, dc: DelayCalculator
    ) -> Optional[float]:
        netlist = self.layout.netlist
        best: Optional[float] = None
        src = self._sources.get(name)
        if src is not None:
            kind, info = src
            if kind == "port":
                best = self.constraints.input_delay
            else:
                inst, pin = info  # type: ignore[misc]
                best = dc.arc_delay(inst, "CK", pin)
        for inst, in_pin, out_pin, in_net in self._predecessors[name]:
            at = self._arrival.get(in_net)
            if at is None:
                continue
            cand = (
                at
                + dc.wire_delay(netlist.net(in_net))
                + dc.arc_delay(inst, in_pin, out_pin)
            )
            if best is None or cand > best:
                best = cand
        return best

    def _compute_raw(self, name: str, dc: DelayCalculator) -> Optional[float]:
        netlist = self.layout.netlist
        wire = dc.wire_delay(netlist.net(name))
        best: Optional[float] = None
        if name in self._has_ff_endpoint:
            best = self._ff_req - wire
        if name in self._has_port_endpoint:
            if best is None or self._port_req < best:
                best = self._port_req
        for inst, in_pin, out_pin, out_net in self._successors[name]:
            out_req = self._raw.get(out_net)
            if out_req is None:
                continue
            cand = out_req - dc.arc_delay(inst, in_pin, out_pin) - wire
            if best is None or cand < best:
                best = cand
        return best

    def update(
        self,
        routing: Optional[object] = None,
        layout: Optional[Layout] = None,
    ) -> STAResult:
        """Re-analyze against a new routing (and/or layout) state.

        Args:
            routing: The new :class:`~repro.route.router.RoutingResult`
                (or ``None`` for estimate-only parasitics).
            layout: The new layout state when cells moved; must share the
                netlist of the original layout.  Defaults to the current.

        Returns:
            An :class:`STAResult` equal to ``run_sta`` on the new state.
        """
        with obs.timed("sta.incremental"):
            result = self._update(routing, layout)
        self.result = result
        return result

    def _update(
        self, routing: Optional[object], layout: Optional[Layout]
    ) -> STAResult:
        if layout is not None:
            self.layout = layout
        dc = DelayCalculator(self.layout, routing)

        # (a) dirty nets: effective parasitics changed.  This covers every
        # timing input — wire delays, arc loads, and FF launch arcs are
        # all functions of per-net (R, C).
        dirty: Set[str] = set()
        parasitics: Dict[str, Tuple[float, float]] = {}
        old_par = self._parasitics
        for name in self._topo:
            value = dc.net_parasitics(name)
            parasitics[name] = value
            if value != old_par.get(name):
                dirty.add(name)
        self._parasitics = parasitics

        # (b) forward: recompute arrivals of dirty nets and their direct
        # successors; ripple further only where a value changed.  The heap
        # pops in topological order, so every net is finalized before any
        # of its successors is examined.
        changed: Set[str] = set()
        recomputed = 0
        pending: Set[str] = set(dirty)
        for name in dirty:
            for _, _, _, out_net in self._successors[name]:
                pending.add(out_net)
        heap = [self._topo_pos[n] for n in pending]
        heapq.heapify(heap)
        while heap:
            name = self._topo[heapq.heappop(heap)]
            pending.discard(name)
            recomputed += 1
            new_val = self._compute_arrival(name, dc)
            if new_val is None:
                continue  # structurally unreachable: was and stays absent
            if new_val != self._arrival.get(name):
                self._arrival[name] = new_val
                changed.add(name)
                for _, _, _, out_net in self._successors[name]:
                    if out_net not in pending:
                        pending.add(out_net)
                        heapq.heappush(heap, self._topo_pos[out_net])

        # (c) backward: required times of dirty nets and their direct
        # predecessors (the arcs *into* a dirty net load against it).
        raw_recomputed = 0
        raw_pending: Set[str] = {n for n in dirty if n in self._raw}
        for name in dirty:
            for _, _, _, in_net in self._predecessors[name]:
                if in_net in self._raw:
                    raw_pending.add(in_net)
        heap = [-self._topo_pos[n] for n in raw_pending]
        heapq.heapify(heap)
        while heap:
            name = self._topo[-heapq.heappop(heap)]
            raw_pending.discard(name)
            raw_recomputed += 1
            new_val = self._compute_raw(name, dc)
            if new_val is None:
                continue
            if new_val != self._raw.get(name):
                self._raw[name] = new_val
                for _, _, _, in_net in self._predecessors[name]:
                    if in_net in self._raw and in_net not in raw_pending:
                        raw_pending.add(in_net)
                        heapq.heappush(heap, -self._topo_pos[in_net])

        # (d) endpoint slots whose net's arrival or wire delay changed.
        netlist = self.layout.netlist
        for i, (kind, name, net_name) in enumerate(self._slots):
            if net_name not in dirty and net_name not in changed:
                continue
            at = self._arrival[net_name]
            if kind == "ff_d":
                at_pin = at + dc.wire_delay(netlist.net(net_name))
                self._endpoints[i] = EndpointSlack(
                    kind="ff_d", name=name, arrival=at_pin,
                    required=self._ff_req,
                )
            else:
                self._endpoints[i] = EndpointSlack(
                    kind="port", name=name, arrival=at,
                    required=self._port_req,
                )

        if obs.is_enabled():
            obs.count("sta.incremental.updates")
            obs.count("sta.incremental.dirty_nets", len(dirty))
            obs.count("sta.incremental.cone_nets", recomputed + raw_recomputed)
            obs.observe(
                "sta.incremental.cone_fraction",
                (recomputed + raw_recomputed) / max(2 * len(self._topo), 1),
            )
        required = dict(self._raw)
        required.update(self._fill)
        return STAResult(
            arrival=dict(self._arrival),
            required=required,
            endpoints=list(self._endpoints),
            constraints=self.constraints,
        )
