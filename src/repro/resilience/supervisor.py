"""Supervised parallel evaluation of flow configurations.

Replaces the bare ``multiprocessing.Pool.map`` the explorer used: a
single hung, killed, or OOM'd worker no longer poisons the whole run.
The supervisor owns a small fleet of forked worker processes, each with
a dedicated task queue (so the parent always knows which task a dead
worker was holding) and a shared, feeder-less result channel that stays
usable when a worker dies mid-flight (:class:`_ResultChannel`).  Per
task it provides:

* a **per-evaluation timeout** — an overdue worker is killed and its
  task re-dispatched;
* **crash isolation** — a worker that dies (signal, ``os._exit``, OOM
  kill) is replaced and its task requeued;
* **bounded retry with backoff** — each failed attempt re-dispatches up
  to ``max_retries`` times, then falls back to one in-process serial
  evaluation (whose exception, if any, is the real error and
  propagates);
* **structured task failures** — an exception inside an evaluation is
  caught in the worker and returned as data together with the partial
  obs metrics delta, which the parent folds into its registry so
  ``repro profile`` tables stay complete under faults;
* **graceful degradation** — after ``max_worker_failures`` pool-level
  failures (deaths + timeouts) the pool is torn down and every remaining
  task runs serially in-process; the degraded flag is sticky across
  batches via the shared :class:`ResilienceState`.

Everything is surfaced through obs counters (``resilience.retries``,
``resilience.worker_deaths``, ``resilience.timeouts``,
``resilience.task_failures``, ``resilience.degraded``) and mirrored on
the plain-int :class:`ResilienceState` for obs-disabled callers.

Evaluations are deterministic functions of their configuration, so a
retried or re-dispatched task reproduces the original result exactly —
supervision never changes objectives, only survival.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ReproError
from repro.resilience import faults

__all__ = [
    "EvalTask",
    "SupervisionConfig",
    "ResilienceState",
    "TaskSupervisor",
]

# Module-level slot so a forked worker can reach the guard without
# pickling it through every task (fork shares the parent's memory image).
_WORKER_GUARD = None


def _init_worker(guard) -> None:
    global _WORKER_GUARD
    _WORKER_GUARD = guard  # repro-lint: disable=FRK102 per-child guard slot; divergence from the parent is the design


def _evaluate_config(config) -> Tuple[object, tuple, float]:
    """Worker-side evaluation returning picklable scalars only."""
    result = _WORKER_GUARD.run(config)
    violation = result.constraint_violation(
        n_drc=_WORKER_GUARD.n_drc,
        beta_power=_WORKER_GUARD.beta_power,
        base_power=_WORKER_GUARD.baseline_power,
    )
    return (config, result.objectives, violation)


def _evaluate_config_traced(config):
    """Evaluate plus this task's metrics delta (or ``None``).

    Tasks run serially within a worker, so reset-before / snapshot-after
    brackets exactly one evaluation; the parent folds the deltas into its
    registry with :meth:`Metrics.merge_snapshot`.
    """
    if not obs.is_enabled():
        return _evaluate_config(config), None
    obs.get_metrics().reset()
    result = _evaluate_config(config)
    return result, obs.get_metrics().snapshot()


@dataclass(frozen=True)
class EvalTask:
    """One evaluation with its fault-injection coordinate.

    ``index`` orders the result list; ``(generation, individual)`` is the
    deterministic coordinate fault plans target.
    """

    index: int
    config: object
    generation: int = 0
    individual: int = 0


@dataclass(frozen=True)
class SupervisionConfig:
    """Supervision knobs.

    Attributes:
        timeout_s: Per-evaluation wall-clock budget before the worker is
            killed and the task re-dispatched (``None`` disables).
        max_retries: Re-dispatches per task after a failed attempt; once
            exhausted the task runs serially in-process (its exception,
            if any, then propagates — it is the real error).
        backoff_s: Base sleep before a re-dispatch (scaled by attempt).
        max_worker_failures: Pool-level failures (worker deaths +
            timeouts) tolerated before degrading the whole run to serial
            in-process evaluation.
        poll_s: Parent result-queue poll interval (also the resolution
            of timeout detection).
    """

    timeout_s: Optional[float] = 600.0
    max_retries: int = 2
    backoff_s: float = 0.02
    max_worker_failures: int = 4
    poll_s: float = 0.05


@dataclass
class ResilienceState:
    """Cumulative supervision counters (mirrors the obs counters, but
    always collected so obs-disabled callers can still observe what the
    supervisor absorbed).  Shared across batches by the explorer so the
    degraded flag is sticky for the rest of the run."""

    retries: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    task_failures: int = 0
    degraded: bool = False

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "timeouts": self.timeouts,
            "task_failures": self.task_failures,
            "degraded": self.degraded,
        }


class _ResultChannel:
    """Feeder-less result path: a pipe plus a plain write lock.

    ``multiprocessing.Queue`` flushes ``put`` through a background feeder
    thread, so a worker that dies abruptly (``os._exit``, SIGKILL, OOM)
    can be killed in the window after the feeder wrote a message but
    before it released the queue's shared write lock — stranding the lock
    and silently stalling every sibling worker's results.  Here ``send``
    runs on the calling thread while holding the lock, so a worker dying
    at a fault-injection point (or killed between evaluations) is never
    mid-``put``, and one death can't poison the channel for the pool.
    Only the parent reads, so no read lock is needed; the parent keeps
    the write end open, so ``poll`` never sees EOF when workers die.
    """

    def __init__(self, ctx) -> None:
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._wlock = ctx.Lock()

    def put(self, item) -> None:
        with self._wlock:
            self._writer.send(item)

    def poll(self, timeout: float) -> bool:
        return self._reader.poll(timeout)

    def get(self):
        return self._reader.recv()

    def close(self) -> None:
        self._reader.close()
        self._writer.close()


def _worker_main(worker_id: int, task_q, result_q, guard) -> None:
    """Worker loop: evaluate tasks until the ``None`` sentinel arrives.

    Every exception is caught and returned as a structured failure with
    the partial obs delta collected up to the failure point — a worker
    never aborts the run from inside an evaluation (only an injected or
    real process death can, and the supervisor recovers from that too).
    """
    _init_worker(guard)
    if obs.is_enabled():
        obs.worker_detach()
    while True:
        item = task_q.get()
        if item is None:
            return
        task, attempt = item
        try:
            with faults.evaluation_scope(
                task.generation, task.individual, attempt, in_worker=True
            ):
                payload, snap = _evaluate_config_traced(task.config)
            result_q.put((worker_id, task.index, True, payload, snap))
        except BaseException as exc:  # repro-lint: disable=DET201 — crash isolation: failure is reported via the result queue
            snap = obs.get_metrics().snapshot() if obs.is_enabled() else None
            result_q.put(
                (
                    worker_id,
                    task.index,
                    False,
                    (type(exc).__name__, str(exc)),
                    snap,
                )
            )


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("process", "task_q", "task", "attempt", "deadline")

    def __init__(self, process, task_q) -> None:
        self.process = process
        self.task_q = task_q
        self.task: Optional[EvalTask] = None
        self.attempt = 0
        self.deadline: Optional[float] = None


class TaskSupervisor:
    """Run a batch of evaluations under supervision (see module doc)."""

    def __init__(
        self,
        guard,
        workers: int = 0,
        config: SupervisionConfig = SupervisionConfig(),
        state: Optional[ResilienceState] = None,
    ) -> None:
        self.guard = guard
        self.workers = workers
        self.config = config
        self.state = state if state is not None else ResilienceState()

    # ------------------------------------------------------------------ #
    # bookkeeping helpers
    # ------------------------------------------------------------------ #

    def _record_retry(self, attempt: int) -> None:
        self.state.retries += 1
        obs.count("resilience.retries")
        if self.config.backoff_s > 0:
            time.sleep(self.config.backoff_s * max(1, attempt))

    def _record_task_failure(self) -> None:
        self.state.task_failures += 1
        obs.count("resilience.task_failures")

    def _record_worker_death(self) -> None:
        self.state.worker_deaths += 1
        obs.count("resilience.worker_deaths")

    def _record_timeout(self) -> None:
        self.state.timeouts += 1
        obs.count("resilience.timeouts")

    def _record_degraded(self) -> None:
        self.state.degraded = True
        obs.count("resilience.degraded")

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def run(self, tasks: Sequence[EvalTask]) -> List[tuple]:
        """Evaluate every task; results ordered like ``tasks``.

        Raises only when a task keeps failing after every retry *and*
        its final in-process evaluation fails too — that exception is
        the evaluator's own and propagates untouched.
        """
        if not tasks:
            return []
        if self.workers <= 1 or self.state.degraded:
            _init_worker(self.guard)
            return [self._evaluate_serial(t, 0) for t in tasks]
        return self._run_supervised(list(tasks))

    # ------------------------------------------------------------------ #
    # serial path (also the degradation / last-retry fallback)
    # ------------------------------------------------------------------ #

    def _evaluate_once(self, task: EvalTask, attempt: int) -> tuple:
        """One in-process evaluation; its exception is the real error."""
        with faults.evaluation_scope(
            task.generation, task.individual, attempt, in_worker=False
        ):
            return _evaluate_config(task.config)

    def _evaluate_serial(self, task: EvalTask, first_attempt: int) -> tuple:
        """In-process evaluation with bounded retry on transient faults.

        Only library errors (:class:`~repro.errors.ReproError`, which
        covers injected faults) are retried; interpreter-level exceptions
        — ``KeyboardInterrupt``, ``SystemExit``, genuine bugs like
        ``TypeError`` — propagate immediately.
        """
        attempt = first_attempt
        while True:
            try:
                with faults.evaluation_scope(
                    task.generation, task.individual, attempt,
                    in_worker=False,
                ):
                    return _evaluate_config(task.config)
            except ReproError:
                self._record_task_failure()
                if attempt - first_attempt >= self.config.max_retries:
                    raise
                obs.count("resilience.swallowed_errors")
                attempt += 1
                self._record_retry(attempt)

    # ------------------------------------------------------------------ #
    # supervised pool path
    # ------------------------------------------------------------------ #

    def _run_supervised(self, tasks: List[EvalTask]) -> List[tuple]:
        ctx = multiprocessing.get_context("fork")
        result_q = _ResultChannel(ctx)
        pending = deque((t, 0) for t in tasks)
        results: Dict[int, tuple] = {}
        attempts: Dict[int, int] = {t.index: 0 for t in tasks}
        handles: Dict[int, _WorkerHandle] = {}
        pool_failures = 0
        next_worker_id = 0

        def spawn() -> None:
            nonlocal next_worker_id
            wid = next_worker_id
            next_worker_id += 1
            task_q = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(wid, task_q, result_q, self.guard),
                daemon=True,
            )
            process.start()
            handles[wid] = _WorkerHandle(process, task_q)

        def requeue(task: EvalTask, attempt: int) -> None:
            """Re-dispatch a failed attempt, or flag for serial fallback."""
            attempts[task.index] = attempt + 1
            if attempt >= self.config.max_retries:
                # retries exhausted in the pool: run it in-process once so
                # a genuinely broken evaluation surfaces its real error.
                self._record_retry(attempt + 1)
                _init_worker(self.guard)
                results[task.index] = self._evaluate_once(
                    task, attempt + 1
                )
            else:
                self._record_retry(attempt + 1)
                pending.appendleft((task, attempt + 1))

        for _ in range(min(self.workers, len(tasks))):
            spawn()

        try:
            while len(results) < len(tasks):
                if pool_failures >= self.config.max_worker_failures:
                    self._record_degraded()
                    break
                # dispatch to idle workers
                for handle in handles.values():
                    if handle.task is None and pending:
                        task, attempt = pending.popleft()
                        if task.index in results:
                            continue  # stale duplicate already resolved
                        handle.task = task
                        handle.attempt = attempt
                        handle.deadline = (
                            time.monotonic() + self.config.timeout_s
                            if self.config.timeout_s
                            else None
                        )
                        handle.task_q.put((task, attempt))
                # collect one result (or time out and check liveness)
                if not result_q.poll(self.config.poll_s):
                    pool_failures += self._check_workers(
                        handles, requeue, spawn
                    )
                    continue
                wid, index, ok, payload, snap = result_q.get()
                if snap is not None and obs.is_enabled():
                    obs.get_metrics().merge_snapshot(snap)
                handle = handles.get(wid)
                stale = handle is None or handle.task is None or (
                    handle.task.index != index
                )
                if not stale:
                    task, attempt = handle.task, handle.attempt
                    handle.task = None
                    handle.deadline = None
                if ok:
                    results[index] = payload
                elif not stale:
                    self._record_task_failure()
                    requeue(task, attempt)
                # else: a failure from an already-requeued task (e.g. its
                # worker was killed after posting) — the retry covers it.
        finally:
            self._teardown(handles, result_q)

        if len(results) < len(tasks):
            # degraded mid-batch: finish the stragglers in-process
            _init_worker(self.guard)
            for task in tasks:
                if task.index not in results:
                    results[task.index] = self._evaluate_serial(
                        task, attempts[task.index]
                    )
        return [results[t.index] for t in tasks]

    def _check_workers(self, handles, requeue, spawn) -> int:
        """Reap dead/overdue workers; returns pool-level failure count."""
        now = time.monotonic()
        failures = 0
        for wid, handle in list(handles.items()):
            if not handle.process.is_alive():
                handle.process.join()
                handles.pop(wid)
                self._record_worker_death()
                failures += 1
                if handle.task is not None:
                    requeue(handle.task, handle.attempt)
                spawn()
            elif (
                handle.task is not None
                and handle.deadline is not None
                and now > handle.deadline
            ):
                handle.process.kill()
                handle.process.join()
                handles.pop(wid)
                self._record_timeout()
                failures += 1
                requeue(handle.task, handle.attempt)
                spawn()
        return failures

    @staticmethod
    def _teardown(handles, result_q) -> None:
        for handle in handles.values():
            try:
                handle.task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        deadline = time.monotonic() + 2.0
        for handle in handles.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join()
            handle.task_q.close()
            handle.task_q.cancel_join_thread()
        result_q.close()
