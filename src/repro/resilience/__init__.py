"""``repro.resilience`` — crash-safe execution for long exploration runs.

Three cooperating pieces:

* :mod:`repro.resilience.checkpoint` — versioned, atomically-written
  generation checkpoints for the NSGA-II loop (population, Pareto state,
  RNG state, evaluation cache, counters) so an interrupted campaign can
  resume and reproduce the uninterrupted run bitwise.
* :mod:`repro.resilience.supervisor` — a supervised task queue replacing
  the bare ``multiprocessing.Pool``: per-evaluation timeouts, bounded
  retry with backoff, crash isolation (a dead worker requeues its task),
  and graceful degradation to in-process serial evaluation after
  repeated failures — all surfaced via ``resilience.*`` obs counters.
* :mod:`repro.resilience.faults` — deterministic fault injection (worker
  crashes, hangs, transient evaluator exceptions, interrupts at
  generation boundaries) at chosen ``(generation, individual)``
  coordinates, for the chaos test suite and scripted benchmarks.
"""

import importlib

__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointManager",
    "ExplorationCheckpoint",
    "FaultPlan",
    "FaultSpec",
    "EvalTask",
    "ResilienceState",
    "SupervisionConfig",
    "TaskSupervisor",
]

# Lazy re-exports (PEP 562).  ``repro.core.flow`` imports
# :mod:`repro.resilience.faults` for the in-flow fault hook; resolving the
# checkpoint/supervisor names eagerly here would close an import cycle
# (checkpoint → repro.optimize → ga → core.flow), so attribute access
# defers the submodule imports until someone actually needs them.
_EXPORTS = {
    "CHECKPOINT_FILENAME": "checkpoint",
    "CHECKPOINT_SCHEMA_VERSION": "checkpoint",
    "CheckpointManager": "checkpoint",
    "ExplorationCheckpoint": "checkpoint",
    "FaultPlan": "faults",
    "FaultSpec": "faults",
    "EvalTask": "supervisor",
    "ResilienceState": "supervisor",
    "SupervisionConfig": "supervisor",
    "TaskSupervisor": "supervisor",
}


def __getattr__(name):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(
        importlib.import_module(f"{__name__}.{module}"), name
    )
    globals()[name] = value  # cache for subsequent lookups
    return value
