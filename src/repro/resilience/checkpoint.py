"""Versioned, atomically-written checkpoints for the exploration loop.

A checkpoint captures *everything* the NSGA-II loop needs to continue
mid-campaign and still produce a bitwise-identical final Pareto front:

* the selected population (genomes, objectives, violations, plus the
  ``rank``/``crowding`` fields tournament selection reads),
* the per-generation history (Fig. 5's scatter data),
* the ``numpy`` bit-generator state (so the offspring trajectory after
  resume consumes the exact random stream the uninterrupted run would),
* the evaluation memo cache (key → objectives/violation, so a resumed
  run never re-pays for an already-evaluated chromosome and reproduces
  identical objective floats by construction),
* the explorer counters and the stall/convergence-proxy state,
* optionally an obs metrics snapshot for post-mortem profiling.

Durability: checkpoints are written to a temp file in the run directory,
fsync'd, then ``os.replace``'d over ``checkpoint.json`` — a crash during
the write leaves the previous checkpoint intact.  Every file carries a
``schema_version``; the loader rejects unknown versions with an
actionable error instead of mis-parsing.

Float fidelity: Python's ``json`` emits floats via ``repr``, which
round-trips every finite ``float`` exactly (and ``Infinity`` for the
unbounded crowding distances), so objectives and RNG state survive the
save/load cycle bit-for-bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.params import FlowConfig
from repro.errors import CheckpointError
from repro.optimize.nsga2 import Individual

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CHECKPOINT_FILENAME",
    "CheckpointManager",
    "ExplorationCheckpoint",
    "encode_flow_config",
    "decode_flow_config",
]

CHECKPOINT_SCHEMA_VERSION = 1
CHECKPOINT_FILENAME = "checkpoint.json"


class CheckpointManager:
    """Atomic save/load of JSON checkpoints in one run directory."""

    def __init__(
        self,
        directory: Union[str, Path],
        filename: str = CHECKPOINT_FILENAME,
    ) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            probe = self.directory / f".write-probe-{os.getpid()}"
            probe.write_text("")
            probe.unlink()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint directory {self.directory} is not writable "
                f"({exc}); pass a writable --checkpoint-dir"
            ) from exc
        self.path = self.directory / filename

    def save_payload(self, payload: dict) -> Path:
        """Atomically persist ``payload`` (stamps the schema version)."""
        body = dict(payload)
        body["schema_version"] = CHECKPOINT_SCHEMA_VERSION
        text = json.dumps(body, indent=2, sort_keys=True) + "\n"
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {exc}"
            ) from exc
        finally:
            if tmp.exists():  # a failed write never leaves droppings
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        return self.path

    def load_payload(self) -> Optional[dict]:
        """Load the checkpoint, ``None`` if absent, raise if unusable."""
        if not self.path.exists():
            return None
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {self.path} ({exc}); delete it or "
                f"restart without --resume"
            ) from exc
        if not isinstance(payload, dict) or "schema_version" not in payload:
            raise CheckpointError(
                f"checkpoint {self.path} has no schema_version field; it "
                f"was not written by this tool — delete it or restart "
                f"without --resume"
            )
        version = payload["schema_version"]
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has schema version {version} but "
                f"this build reads version {CHECKPOINT_SCHEMA_VERSION}; "
                f"restart without --resume to begin a fresh run"
            )
        return payload


# ---------------------------------------------------------------------- #
# exploration state codec
# ---------------------------------------------------------------------- #


def _encode_config(config: FlowConfig) -> dict:
    return {
        "op_select": config.op_select,
        "lda_n": config.lda_n,
        "lda_n_iter": config.lda_n_iter,
        "rws_scales": list(config.rws_scales),
    }


def _decode_config(payload: dict) -> FlowConfig:
    try:
        return FlowConfig(
            op_select=payload["op_select"],
            lda_n=int(payload["lda_n"]),
            lda_n_iter=int(payload["lda_n_iter"]),
            rws_scales=tuple(payload["rws_scales"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed genome in checkpoint: {payload!r} ({exc})"
        ) from exc


def _encode_individual(ind: Individual) -> dict:
    return {
        "genome": _encode_config(ind.genome),
        "objectives": list(ind.objectives),
        "violation": ind.violation,
        "rank": ind.rank,
        "crowding": ind.crowding,
    }


def _decode_individual(payload: dict) -> Individual:
    try:
        ind = Individual(
            genome=_decode_config(payload["genome"]),
            objectives=tuple(payload["objectives"]),
            violation=float(payload["violation"]),
        )
        ind.rank = int(payload["rank"])
        ind.crowding = float(payload["crowding"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed individual in checkpoint ({exc})"
        ) from exc
    return ind


#: Public names for the genome codec (the CLI's harden checkpoint and
#: external tooling use these).
encode_flow_config = _encode_config
decode_flow_config = _decode_config


@dataclass
class ExplorationCheckpoint:
    """Full NSGA-II loop state at one generation boundary.

    Attributes:
        generation: Index of the last completed generation.
        population: The selected population (with rank/crowding).
        history: Per-generation ``[((obj0, obj1), violation), ...]``.
        rng_state: The ``numpy`` bit-generator state dict.
        eval_cache: Memo cache key → ``(objectives, violation)``.
        evaluations / cache_requests / cache_hits: Explorer counters.
        stall: Consecutive generations without proxy improvement.
        best_proxy: Best convergence-proxy value so far.
        nsga2: GA hyper-parameter identity (resume-mismatch guard).
        num_layers: RWS gene count of the parameter space.
        obs_snapshot: Optional obs metrics snapshot for post-mortem.
    """

    generation: int
    population: List[Individual]
    history: List[List[Tuple[Tuple[float, ...], float]]]
    rng_state: dict
    eval_cache: Dict[tuple, Tuple[tuple, float]]
    evaluations: int
    cache_requests: int
    cache_hits: int
    stall: int
    best_proxy: float
    nsga2: dict
    num_layers: int
    obs_snapshot: Optional[dict] = field(default=None)

    KIND = "exploration"

    def to_payload(self) -> dict:
        return {
            "kind": self.KIND,
            "generation": self.generation,
            "population": [_encode_individual(i) for i in self.population],
            "history": [
                [[list(objectives), violation]
                 for objectives, violation in gen]
                for gen in self.history
            ],
            "rng_state": self.rng_state,
            "eval_cache": [
                [[key[0], key[1], key[2], list(key[3])],
                 [list(objectives), violation]]
                for key, (objectives, violation) in sorted(
                    self.eval_cache.items()
                )
            ],
            "counters": {
                "evaluations": self.evaluations,
                "cache_requests": self.cache_requests,
                "cache_hits": self.cache_hits,
            },
            "search": {"stall": self.stall, "best_proxy": self.best_proxy},
            "nsga2": dict(self.nsga2),
            "space": {"num_layers": self.num_layers},
            "obs": self.obs_snapshot,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ExplorationCheckpoint":
        if payload.get("kind") != cls.KIND:
            raise CheckpointError(
                f"checkpoint kind {payload.get('kind')!r} is not an "
                f"exploration checkpoint; point --checkpoint-dir at the "
                f"matching run directory"
            )
        try:
            eval_cache = {
                (k[0], int(k[1]), int(k[2]), tuple(k[3])): (
                    tuple(v[0]),
                    float(v[1]),
                )
                for k, v in payload["eval_cache"]
            }
            return cls(
                generation=int(payload["generation"]),
                population=[
                    _decode_individual(p) for p in payload["population"]
                ],
                history=[
                    [(tuple(objectives), violation)
                     for objectives, violation in gen]
                    for gen in payload["history"]
                ],
                rng_state=payload["rng_state"],
                eval_cache=eval_cache,
                evaluations=int(payload["counters"]["evaluations"]),
                cache_requests=int(payload["counters"]["cache_requests"]),
                cache_hits=int(payload["counters"]["cache_hits"]),
                stall=int(payload["search"]["stall"]),
                best_proxy=float(payload["search"]["best_proxy"]),
                nsga2=payload["nsga2"],
                num_layers=int(payload["space"]["num_layers"]),
                obs_snapshot=payload.get("obs"),
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise CheckpointError(
                f"malformed exploration checkpoint ({exc}); delete it or "
                f"restart without --resume"
            ) from exc

    # ------------------------------------------------------------------ #

    def save(self, manager: CheckpointManager) -> Path:
        return manager.save_payload(self.to_payload())

    @classmethod
    def load(
        cls, manager: CheckpointManager
    ) -> Optional["ExplorationCheckpoint"]:
        payload = manager.load_payload()
        if payload is None:
            return None
        return cls.from_payload(payload)
