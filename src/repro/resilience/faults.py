"""Deterministic fault injection for chaos testing the exploration loop.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each firing
at one exact ``(generation, individual, attempt)`` coordinate of the
evaluation schedule (``individual`` is the index within the generation's
evaluated batch; ``attempt`` is the re-dispatch count, 0 for the first
try).  Because the GA trajectory is deterministic for a given seed, a
plan reproduces the same chaos scenario on every run — tests and
``benchmarks/`` can script "kill worker 2 of generation 1" and assert
the recovery path byte-for-byte.

Kinds:

* ``"crash"``   — the worker process dies abruptly (``os._exit``); in
  serial mode (no worker process to kill) it degrades to a raised
  :class:`~repro.errors.InjectedFault`.
* ``"hang"``    — the evaluation sleeps for ``hang_s`` before
  proceeding, long enough to trip the supervisor's per-evaluation
  timeout; serial mode raises instead (an in-process sleep cannot be
  preempted).
* ``"error"``   — a transient :class:`InjectedFault` raised before the
  evaluation starts (models a flaky evaluator dependency).
* ``"flow-error"`` — an :class:`InjectedFault` raised *inside*
  :meth:`repro.core.flow.GDSIIGuard.run`, mid-evaluation (models an
  evaluator crash that may leave incremental caches half-built).
* ``"interrupt"`` — raised by the explorer right after the generation's
  checkpoint is written (``individual`` is ignored); simulates the
  process being killed between generations so resume tests can
  interrupt at every boundary.

Activation: programmatically via :func:`install` / :func:`clear`, or
from the environment — ``REPRO_FAULTS=/path/to/plan.json`` installs a
plan at import time (forked workers inherit the parent's plan either
way).  While no plan is installed every hook is a single boolean check.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import InjectedFault, InjectedInterrupt, ResilienceError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "install",
    "clear",
    "is_active",
    "get_plan",
    "evaluation_scope",
    "maybe_flow_fault",
    "maybe_interrupt",
]

FAULT_KINDS = ("crash", "hang", "error", "flow-error", "interrupt")

#: Task-entry faults fired by the supervisor before the evaluation runs.
_TASK_KINDS = ("crash", "hang", "error")


@dataclass(frozen=True)
class FaultSpec:
    """One fault at one coordinate of the evaluation schedule.

    Attributes:
        generation: NSGA-II generation index (0 = initial population).
        kind: One of :data:`FAULT_KINDS`.
        individual: Index within the generation's evaluated batch
            (ignored for ``"interrupt"``).
        attempt: Fire only on this re-dispatch attempt (0 = first try),
            so a retried task sails through unless another spec targets
            the retry.
        hang_s: Sleep duration for ``"hang"`` faults.
    """

    generation: int
    kind: str
    individual: int = 0
    attempt: int = 0
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(
                f"fault kind {self.kind!r} not in {FAULT_KINDS}"
            )


class FaultPlan:
    """An immutable set of fault specs with coordinate lookup."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def match(
        self,
        generation: int,
        individual: int,
        attempt: int,
        kinds: Sequence[str],
    ) -> Optional[FaultSpec]:
        """The first spec matching the coordinate, or ``None``."""
        for spec in self.specs:
            if (
                spec.kind in kinds
                and spec.generation == generation
                and spec.individual == individual
                and spec.attempt == attempt
            ):
                return spec
        return None

    def interrupt_at(self, generation: int) -> Optional[FaultSpec]:
        """The interrupt spec for a generation boundary, if any."""
        for spec in self.specs:
            if spec.kind == "interrupt" and spec.generation == generation:
                return spec
        return None

    def counts(self) -> Dict[str, int]:
        """Number of specs per kind (what the chaos tests assert against)."""
        out: Dict[str, int] = {}
        for spec in self.specs:
            out[spec.kind] = out.get(spec.kind, 0) + 1
        return out

    # ------------------------------------------------------------------ #

    def to_payload(self) -> dict:
        return {
            "faults": [
                {
                    "generation": s.generation,
                    "kind": s.kind,
                    "individual": s.individual,
                    "attempt": s.attempt,
                    "hang_s": s.hang_s,
                }
                for s in self.specs
            ]
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict) or "faults" not in payload:
            raise ResilienceError(
                'fault plan must be a JSON object with a "faults" list'
            )
        specs = []
        for entry in payload["faults"]:
            try:
                specs.append(
                    FaultSpec(
                        generation=int(entry["generation"]),
                        kind=entry["kind"],
                        individual=int(entry.get("individual", 0)),
                        attempt=int(entry.get("attempt", 0)),
                        hang_s=float(entry.get("hang_s", 30.0)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ResilienceError(
                    f"malformed fault entry {entry!r}: {exc}"
                ) from exc
        return cls(specs)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan from a JSON file (the ``REPRO_FAULTS`` hook)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ResilienceError(
                f"cannot read fault plan {path}: {exc}"
            ) from exc
        return cls.from_payload(payload)


# ---------------------------------------------------------------------- #
# process-global plan + current evaluation coordinate
# ---------------------------------------------------------------------- #

_PLAN: Optional[FaultPlan] = None
#: (generation, individual, attempt, in_worker) of the evaluation in
#: progress — set by :func:`evaluation_scope`, read by flow-level hooks.
_CTX: Optional[tuple] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install (or, with ``None``, clear) the process-global plan."""
    global _PLAN
    _PLAN = plan if plan and len(plan) else None


def clear() -> None:
    """Remove the active plan (hooks become single-boolean no-ops)."""
    install(None)


def is_active() -> bool:
    """Whether any fault plan is installed (cheap hot-path gate)."""
    return _PLAN is not None


def get_plan() -> Optional[FaultPlan]:
    return _PLAN


def _fire(spec: FaultSpec, in_worker: bool) -> None:
    if spec.kind == "crash":
        if in_worker:
            os._exit(87)  # abrupt death: no cleanup, no result message
        raise InjectedFault(
            f"injected crash at gen {spec.generation} "
            f"ind {spec.individual} (serial mode)"
        )
    if spec.kind == "hang":
        if in_worker:
            time.sleep(spec.hang_s)
            return  # a slow evaluation, not a dead one
        raise InjectedFault(
            f"injected hang at gen {spec.generation} "
            f"ind {spec.individual} (serial mode)"
        )
    raise InjectedFault(
        f"injected {spec.kind} at gen {spec.generation} "
        f"ind {spec.individual} attempt {spec.attempt}"
    )


@contextmanager
def evaluation_scope(
    generation: int, individual: int, attempt: int, in_worker: bool
):
    """Bracket one evaluation: set the coordinate, fire task-entry faults.

    The supervisor (worker loop and serial path both) wraps every
    evaluation in this scope; ``crash``/``hang``/``error`` faults fire on
    entry, and :func:`maybe_flow_fault` (called from inside the flow)
    reads the coordinate to fire ``flow-error`` faults mid-evaluation.
    """
    global _CTX
    if _PLAN is None:
        yield
        return
    _CTX = (generation, individual, attempt, in_worker)
    try:
        spec = _PLAN.match(generation, individual, attempt, _TASK_KINDS)
        if spec is not None:
            _fire(spec, in_worker)
        yield
    finally:
        _CTX = None


def maybe_flow_fault() -> None:
    """Fire a ``flow-error`` fault mid-evaluation (hook for the flow)."""
    if _PLAN is None or _CTX is None:
        return
    generation, individual, attempt, _ = _CTX
    spec = _PLAN.match(generation, individual, attempt, ("flow-error",))
    if spec is not None:
        raise InjectedFault(
            f"injected flow-error at gen {generation} ind {individual} "
            f"attempt {attempt}"
        )


def maybe_interrupt(generation: int) -> None:
    """Fire an ``interrupt`` fault at a generation boundary (explorer
    hook, called right after the generation's checkpoint is written)."""
    if _PLAN is None:
        return
    spec = _PLAN.interrupt_at(generation)
    if spec is not None:
        raise InjectedInterrupt(
            f"injected interrupt after generation {generation}"
        )


# Environment opt-in: REPRO_FAULTS=/path/to/plan.json
_env_plan = os.environ.get("REPRO_FAULTS", "").strip()
if _env_plan:  # pragma: no cover - exercised via CLI subprocess tests
    install(FaultPlan.load(_env_plan))
