"""Declared purity contracts and effect-masking policy.

A :class:`Contract` marks a family of functions (fnmatch pattern over
qualnames) as **pure**: the EFF rules then reject any inferred effect
the contract does not explicitly allow.  ``allow`` entries are either a
bare kind (``"lock"``) or ``kind:detail`` (``"mutates_arg:use"``) for
surgical exemptions — e.g. a kernel documented as in-place, or a
version-keyed memo cache that is observationally pure.

Two modules are **ambient**: their effects never propagate to callers.

* :mod:`repro.obs` — counters/timers are sanctioned instrumentation;
  without masking, one ``obs.count`` would poison every pure path.
* :mod:`repro.resilience.faults` — the chaos hooks fire only under an
  explicitly installed fault plan; production paths treat them as
  no-ops.

The default registry covers the four families ISSUE-critical for the
bitwise guarantees: design-database lint rule callables, the vectorized
kernels, the security attack-query path, and the red-team probe
surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import FrozenSet, List, Optional, Tuple

from repro.analysis.effects import Effect
from repro.analysis.model import FunctionInfo

__all__ = [
    "AMBIENT_MODULES",
    "Contract",
    "ContractRegistry",
    "default_registry",
]

#: Modules whose effects are masked during propagation (see module doc).
AMBIENT_MODULES: FrozenSet[str] = frozenset(
    {"repro.obs", "repro.resilience.faults"}
)

#: Effect kinds that do not break purity (they affect *when*, not
#: *what*, a pure function computes).
PURITY_NEUTRAL_KINDS: FrozenSet[str] = frozenset({"blocking", "lock"})


@dataclass(frozen=True)
class Contract:
    """One declared-pure family of functions.

    Attributes:
        pattern: fnmatch pattern over function qualnames.
        reason: Why this family must be pure (shown in messages).
        allow: Sanctioned effects — ``"kind"`` or ``"kind:detail"``.
        top_level_only: Restrict the pattern to module-level functions
            (so ``repro.kernels.*`` does not sweep in helper classes).
    """

    pattern: str
    reason: str
    allow: Tuple[str, ...] = ()
    top_level_only: bool = False

    def matches(self, info: FunctionInfo) -> bool:
        if self.top_level_only and (
            info.class_name is not None or info.parent is not None
        ):
            return False
        return fnmatchcase(info.qualname, self.pattern)

    def allows(self, eff: Effect) -> bool:
        return (
            eff.kind in PURITY_NEUTRAL_KINDS
            or eff.kind in self.allow
            or f"{eff.kind}:{eff.detail}" in self.allow
        )


@dataclass
class ContractRegistry:
    """Ordered contract list; first match wins."""

    contracts: List[Contract] = field(default_factory=list)
    ambient_modules: FrozenSet[str] = AMBIENT_MODULES

    def lookup(self, info: FunctionInfo) -> Optional[Contract]:
        for contract in self.contracts:
            if contract.matches(info):
                return contract
        return None


def default_registry() -> ContractRegistry:
    """The shipped contract registry for the repro tree."""
    return ContractRegistry(
        contracts=[
            # Design-database lint rules: a rule that mutated the layout
            # it checks would corrupt every later rule's verdict.
            Contract(
                pattern="repro.lint.rules._check_*",
                reason="lint rules must not mutate the checked design",
            ),
            # Kernels: the vectorized path must stay bitwise-comparable
            # with the scalar oracle, so kernels own no state and no
            # randomness.  Documented exceptions: `apply_line` is the
            # one in-place primitive (callers own the usage grid), the
            # `_mask_*` legalizer helpers filter a caller-owned scratch
            # row in place, and five version-keyed memo caches
            # (WeakKey maps invalidated by ``mod_count`` / occupancy
            # ``version`` epochs) are observationally pure.
            Contract(
                pattern="repro.kernels.routegrid.apply_line",
                reason="documented in-place track-usage update",
                allow=("mutates_arg:use",),
                top_level_only=True,
            ),
            Contract(
                pattern="repro.kernels.legalize._mask_*",
                reason="documented in-place mask filter",
                allow=("mutates_arg:allowed",),
                top_level_only=True,
            ),
            Contract(
                pattern="repro.kernels.*",
                reason="kernels must match the scalar oracle bitwise",
                allow=(
                    "mutates_global:repro.kernels.exploitable._FILLERS",
                    "mutates_global:"
                    "repro.kernels.exploitable._ROW_MASKS",
                    "mutates_global:"
                    "repro.kernels.legalize._BUDGET_CACHE",
                    "mutates_global:"
                    "repro.kernels.legalize._FREE_CUMSUM",
                    "mutates_global:repro.kernels.sta._CACHE",
                ),
                top_level_only=True,
            ),
            # Security attack queries: `evaluate`/`attempt` paths are
            # read-only probes of the layout; a mutation here would
            # corrupt the defense evaluation it feeds.
            Contract(
                pattern="repro.security.trojan.*",
                reason="attack queries must not mutate the layout",
                top_level_only=True,
            ),
            # Red-team probe surface: one attempt must not leak state
            # into the next or the campaign loses bitwise replay.
            Contract(
                pattern="repro.redteam.surface.*",
                reason="attack probes must be replayable bitwise",
            ),
        ]
    )
