"""Call-site resolution, type environments, and concurrency facts.

One pass over every function body produces a :class:`FunctionFacts`:

* resolved **call sites** into other project functions, with the
  argument binding needed to translate ``mutates_arg`` effects and the
  ``awaited`` / ``off_loop`` flags the async rules consume;
* **intrinsic effects** observed directly in the body (parameter and
  global mutation, external I/O, RNG draws, blocking primitives);
* **loop callbacks** (``call_soon`` / ``call_soon_threadsafe`` /
  ``call_later`` targets — they run on the event loop);
* **worker targets** (``Process(target=...)``, pool ``map``/``submit``
  callables — they run in forked children) and the closure captures of
  nested-function targets.

Receiver resolution is layered: ``self.attr`` types recovered from
``__init__`` (annotation or constructor call), parameter annotations,
constructor-tagged locals (:data:`repro.analysis.model.CONSTRUCTOR_TAGS`),
return-annotation typing for internal calls, then a unique-method-name
fallback.  Anything unresolved is assumed effect-free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.effects import (
    EXTERNAL_EFFECTS,
    METHOD_EFFECTS,
    MUTATING_METHODS,
    Effect,
    EffectOrigin,
)
from repro.analysis.model import (
    ANNOTATION_TAGS,
    CONSTRUCTOR_TAGS,
    MP_CONTEXT_TAGS,
    FunctionInfo,
    ModuleInfo,
    Project,
    annotation_text,
    dotted_chain,
)

__all__ = ["CallSite", "CallbackReg", "CaptureHit", "FunctionFacts",
           "build_facts"]

#: Pool / executor methods whose first callable argument runs in a
#: forked worker process.
POOL_SUBMIT_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "apply", "apply_async",
     "map_async", "starmap_async", "submit"}
)

#: Type tags that must not be captured into a forked worker's closure.
FORK_UNSAFE_TAGS = frozenset({"lock", "rlock", "file", "socket"})


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge ``caller -> callee``."""

    callee: str
    lineno: int
    awaited: bool = False
    off_loop: bool = False
    bare: bool = False
    #: calling an ``async def`` only builds the coroutine; its blocking
    #: effects surface where the coroutine runs, not at this edge.
    callee_async: bool = False
    #: callee param name -> ("param" | "global" | "other", name).
    bindings: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def __hash__(self) -> int:  # bindings dict is write-once
        return hash((self.callee, self.lineno))


@dataclass(frozen=True)
class CallbackReg:
    """A callable scheduled onto the event loop."""

    callback: str
    lineno: int
    api: str


@dataclass(frozen=True)
class WorkerReg:
    """A callable dispatched into a forked worker."""

    target: str
    lineno: int
    api: str


@dataclass(frozen=True)
class CaptureHit:
    """A fork-unsafe object closed over by a worker target."""

    target: str
    var: str
    tag: str
    lineno: int


@dataclass
class FunctionFacts:
    """Everything the rules need to know about one function."""

    qualname: str
    calls: List[CallSite] = field(default_factory=list)
    intrinsics: Dict[Effect, EffectOrigin] = field(default_factory=dict)
    loop_callbacks: List[CallbackReg] = field(default_factory=list)
    worker_targets: List[WorkerReg] = field(default_factory=list)
    captures: List[CaptureHit] = field(default_factory=list)
    local_types: Dict[str, str] = field(default_factory=dict)


def build_facts(project: Project) -> Dict[str, FunctionFacts]:
    """Extract :class:`FunctionFacts` for every project function."""
    _collect_attr_types(project)
    facts: Dict[str, FunctionFacts] = {}
    for qual, info in project.functions.items():
        scanner = _FunctionScanner(project, info)
        if info.parent is not None:
            _seed_closure_env(project, info, facts, scanner)
        facts[qual] = scanner.scan()
    _resolve_captures(project, facts)
    return facts


def _seed_closure_env(
    project: Project,
    info: FunctionInfo,
    facts: Dict[str, FunctionFacts],
    scanner: "_FunctionScanner",
) -> None:
    """Nested functions inherit the enclosing type environment.

    A nested def's free variables keep the types they had in the
    enclosing body (``ctx`` stays an mp_context, ``loop`` an event
    loop); a captured ``self`` keeps the enclosing method's class.
    Parents are registered before their nested functions, so the
    enclosing facts are complete by the time the child is scanned.
    """
    parent_fact = facts.get(info.parent or "")
    parent_info = project.functions.get(info.parent or "")
    if parent_fact is None or parent_info is None:
        return
    for var in info.free_vars:
        if var in scanner.facts.local_types:
            continue
        tag = parent_fact.local_types.get(var)
        if (
            tag is None
            and var == parent_info.self_param
            and parent_info.class_name is not None
        ):
            tag = f"{parent_info.module}.{parent_info.class_name}"
        if tag is not None:
            scanner.facts.local_types[var] = tag


# --------------------------------------------------------------------- #
# class attribute typing
# --------------------------------------------------------------------- #


def _collect_attr_types(project: Project) -> None:
    """Recover ``self.attr`` types from every ``__init__`` body."""
    for cls in project.classes.values():
        init_qual = cls.methods.get("__init__")
        if init_qual is None:
            continue
        init = project.functions[init_qual]
        mod = project.modules[init.module]
        self_name = init.self_param
        if self_name is None:
            continue
        node = init.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    continue
                attr = target.attr
                typed = _value_type(project, mod, init, stmt.value)
                if isinstance(stmt, ast.AnnAssign) and typed is None:
                    text = annotation_text(stmt.annotation)
                    if text:
                        typed = _annotation_type(project, mod, text)
                if typed:
                    cls.attr_types.setdefault(attr, typed)
        # Fields annotated on the class body resolve through imports.
        for attr, text in list(cls.attr_types.items()):
            typed = _annotation_type(project, mod, text)
            if typed:
                cls.attr_types[attr] = typed


def _annotation_type(
    project: Project, mod: ModuleInfo, text: str
) -> Optional[str]:
    """Annotation text -> canonical class name or type tag."""
    if text in ANNOTATION_TAGS:
        return ANNOTATION_TAGS[text]
    canonical = project.canonical(mod, text.split("."))
    if canonical in ANNOTATION_TAGS:
        return ANNOTATION_TAGS[canonical]
    resolved = project.resolve(canonical)
    if resolved.kind == "class":
        return resolved.target
    return None


def _value_type(
    project: Project, mod: ModuleInfo, info: FunctionInfo,
    value: Optional[ast.expr],
) -> Optional[str]:
    """Type of an assigned expression (constructor calls and params)."""
    if value is None:
        return None
    if isinstance(value, ast.Name):
        # ``self.store = store`` with an annotated parameter.
        text = info.param_annotations.get(value.id)
        return _annotation_type(project, mod, text) if text else None
    if not isinstance(value, ast.Call):
        return None
    chain = dotted_chain(value.func)
    if chain is None:
        return None
    canonical = project.canonical(mod, chain)
    if canonical in CONSTRUCTOR_TAGS:
        tag = CONSTRUCTOR_TAGS[canonical]
        return tag
    if canonical.endswith("random.default_rng") or canonical == "default_rng":
        return "rng_seeded" if (value.args or value.keywords) else "rng"
    resolved = project.resolve(canonical)
    if resolved.kind == "class":
        return resolved.target
    if resolved.kind == "function":
        ret = _return_annotation(project, resolved.target)
        return ret
    return None


def _return_annotation(project: Project, qualname: str) -> Optional[str]:
    info = project.functions.get(qualname)
    if info is None:
        return None
    node = info.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    text = annotation_text(node.returns)
    if text is None:
        return None
    return _annotation_type(project, project.modules[info.module], text)


# --------------------------------------------------------------------- #
# per-function scan
# --------------------------------------------------------------------- #


def _collect_locals(
    node: ast.stmt,
) -> Tuple[Set[str], Set[str]]:
    """(global-declared names, locally-bound names) of one function body,
    not descending into nested defs."""
    globals_declared: Set[str] = set()
    stored: Set[str] = set()

    def walk(n: ast.AST) -> None:
        for child in ast.iter_child_nodes(n):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    stored.add(child.name)
                continue
            if isinstance(child, ast.Global):
                globals_declared.update(child.names)
            elif isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                stored.add(child.id)
            walk(child)

    walk(node)
    return globals_declared, stored - globals_declared


class _FunctionScanner(ast.NodeVisitor):
    """One function body -> :class:`FunctionFacts`."""

    def __init__(self, project: Project, info: FunctionInfo) -> None:
        self.project = project
        self.info = info
        self.mod = project.modules[info.module]
        self.facts = FunctionFacts(qualname=info.qualname)
        #: names aliasing a parameter (the param itself or ``x = param``).
        self.param_aliases: Dict[str, str] = {p: p for p in info.params}
        node = info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self.global_decls, self.locals_assigned = _collect_locals(node)
        self.locals_assigned.update(info.params)
        self._awaited: Set[int] = set()
        self._bare: Set[int] = set()
        # Seed the type environment from parameter annotations.
        for pname, text in info.param_annotations.items():
            typed = _annotation_type(project, self.mod, text)
            if typed:
                self.facts.local_types[pname] = typed

    def scan(self) -> FunctionFacts:
        node = self.info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in node.body:
            self.visit(stmt)
        return self.facts

    # -- helpers -------------------------------------------------------- #

    def _add_effect(self, kind: str, detail: str, lineno: int,
                    note: str = "") -> None:
        eff = Effect(kind, detail)
        if eff not in self.facts.intrinsics:
            self.facts.intrinsics[eff] = EffectOrigin(
                lineno=lineno, note=note
            )

    def _root_binding(self, node: ast.expr) -> Tuple[str, str]:
        """Classify the base name of an expression chain."""
        while isinstance(node, (ast.Attribute, ast.Subscript,
                                ast.Starred)):
            node = node.value
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.param_aliases:
                return ("param", self.param_aliases[name])
            if name in self.global_decls or (
                name in self.mod.global_names
                and name not in self.locals_assigned
            ):
                return ("global", f"{self.mod.name}.{name}")
            return ("other", name)
        return ("other", "")

    def _mutation(self, target: ast.expr, lineno: int,
                  what: str) -> None:
        """Record a mutation through ``target``'s base name, if it is a
        parameter or module global."""
        kind, name = self._root_binding(target)
        if kind == "param":
            self._add_effect("mutates_arg", name, lineno, what)
        elif kind == "global":
            self._add_effect("mutates_global", name, lineno, what)

    # -- statements ----------------------------------------------------- #

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs are scanned as their own functions; here the name
        # becomes a local pointing at the nested qualname.
        self.facts.local_types[node.name] = (
            f"fn:{self.info.qualname}.<locals>.{node.name}"
        )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.facts.local_types[node.name] = (
            f"fn:{self.info.qualname}.<locals>.{node.name}"
        )

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return  # opaque: assumed effect-free

    def visit_Assign(self, node: ast.Assign) -> None:
        self._handle_assign(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_assign([node.target], node.value)
        self.generic_visit(node)

    def _handle_assign(
        self, targets: List[ast.expr], value: Optional[ast.expr]
    ) -> None:
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._mutation(target, target.lineno, "assignment")
            elif isinstance(target, ast.Name):
                name = target.id
                if name in self.global_decls:
                    self._add_effect(
                        "mutates_global",
                        f"{self.mod.name}.{name}",
                        target.lineno,
                        "global rebind",
                    )
                    continue
                self.param_aliases.pop(name, None)
                self.facts.local_types.pop(name, None)
                if isinstance(value, ast.Name):
                    if value.id in self.param_aliases:
                        self.param_aliases[name] = (
                            self.param_aliases[value.id]
                        )
                    elif value.id in self.facts.local_types:
                        self.facts.local_types[name] = (
                            self.facts.local_types[value.id]
                        )
                elif value is not None:
                    typed = _value_type(
                        self.project, self.mod, self.info, value
                    )
                    if typed == "rng":
                        self._add_effect(
                            "rng", "default_rng() without a seed",
                            value.lineno,
                        )
                    if typed:
                        self.facts.local_types[name] = typed
            elif isinstance(target, ast.Tuple) and isinstance(
                value, ast.Call
            ):
                # ``a, b = ctx.Pipe()`` -> both ends are pipe handles.
                typed = _value_type(
                    self.project, self.mod, self.info, value
                )
                if typed == "pipe_pair":
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            self.facts.local_types[elt.id] = "socket"

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mutation(node.target, node.lineno, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._mutation(target, node.lineno, "deletion")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def _with_items(self, items: List[ast.withitem]) -> None:
        for item in items:
            ctx = item.context_expr
            tag: Optional[str] = None
            if isinstance(ctx, ast.Name):
                tag = self.facts.local_types.get(ctx.id)
            elif isinstance(ctx, ast.Attribute):
                tag = self._receiver_tag(ctx)
            elif isinstance(ctx, ast.Call):
                tag = _value_type(self.project, self.mod, self.info, ctx)
            if tag in ("lock", "rlock"):
                self._add_effect(
                    "lock", "", ctx.lineno, "with-statement acquire"
                )
            if (
                tag
                and item.optional_vars is not None
                and isinstance(item.optional_vars, ast.Name)
            ):
                self.facts.local_types[item.optional_vars.id] = tag

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call):
            self._bare.add(id(node.value))
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        self._handle_call(node)
        self.generic_visit(node)

    def _handle_call(self, node: ast.Call) -> None:
        awaited = id(node) in self._awaited
        bare = id(node) in self._bare
        func = node.func
        if isinstance(func, ast.Name):
            self._call_name(node, func.id, awaited, bare)
        elif isinstance(func, ast.Attribute):
            self._call_attribute(node, func, awaited, bare)

    def _call_name(
        self, node: ast.Call, name: str, awaited: bool, bare: bool
    ) -> None:
        if name in self.param_aliases:
            return  # calling a callable parameter: assumed pure
        local = self.facts.local_types.get(name)
        if local is not None and local.startswith("fn:"):
            self._internal_call(node, local[3:], awaited, bare)
            return
        canonical = self.project.canonical(self.mod, [name])
        self._dispatch_canonical(node, canonical, awaited, bare)

    def _call_attribute(
        self,
        node: ast.Call,
        func: ast.Attribute,
        awaited: bool,
        bare: bool,
    ) -> None:
        chain = dotted_chain(func)
        if chain is None:
            # Call on a computed receiver (e.g. ``f().g()``): opaque.
            return
        root = chain[0]
        method = chain[-1]
        # Typed receiver (local / param / self-attr chain)?
        tag = self._receiver_tag(func)
        if tag is not None:
            self._typed_receiver_call(node, func, tag, method,
                                      awaited, bare)
            return
        if root in self.param_aliases or root == self.info.self_param:
            # Untyped parameter receiver: a known mutator method is the
            # only thing we can say something about.
            if method in MUTATING_METHODS:
                self._mutation(func.value, node.lineno,
                               f".{method}() call")
                return
            unique = self.project.unique_method(method)
            if unique is not None:
                self._internal_call(node, unique, awaited, bare)
            return
        if root in self.mod.global_names and (
            root not in self.locals_assigned
        ):
            # Method call on a module-level object.
            if root in self.mod.global_rngs:
                self._add_effect(
                    "rng", f"module RNG {self.mod.name}.{root}",
                    node.lineno,
                )
                return
            if method in MUTATING_METHODS and len(chain) >= 2:
                self._mutation(func.value, node.lineno,
                               f".{method}() call")
                return
        canonical = self.project.canonical(self.mod, chain)
        self._dispatch_canonical(node, canonical, awaited, bare)

    def _receiver_tag(self, func: ast.expr) -> Optional[str]:
        """Type tag / class of a receiver chain like ``self.a.b``.

        Returns the tag of the expression *being called on*, i.e. for
        ``self.store.save`` the type of ``self.store``.
        """
        assert isinstance(func, ast.Attribute)
        chain = dotted_chain(func)
        if chain is None or len(chain) < 2:
            return None
        root, middle = chain[0], chain[1:-1]
        current: Optional[str]
        if root == self.info.self_param and self.info.class_name:
            current = f"{self.mod.name}.{self.info.class_name}"
        else:
            current = self.facts.local_types.get(root)
        if current is None:
            return None
        for attr in middle:
            cls = self.project.classes.get(current)
            if cls is None:
                return None
            current = cls.attr_types.get(attr)
            if current is None:
                return None
        return current

    def _typed_receiver_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        tag: str,
        method: str,
        awaited: bool,
        bare: bool,
    ) -> None:
        cls = self.project.classes.get(tag)
        if cls is not None:
            target = cls.methods.get(method)
            if target is not None:
                self._internal_call(node, target, awaited, bare,
                                    receiver=func.value)
            elif method in MUTATING_METHODS:
                self._mutation(func.value, node.lineno,
                               f".{method}() call")
            return
        if tag == "rng_module":
            self._add_effect(
                "rng", "module-level RNG draw", node.lineno
            )
            return
        if tag in ("rng",):
            # Draws on an unseeded generator: flagged at construction.
            return
        if tag == "mp_context":
            sub = MP_CONTEXT_TAGS.get(method)
            if method == "Process":
                self._process_call(node)
            elif sub is not None:
                # Constructor through the context: handled by assign
                # typing; nothing to record here.
                pass
            return
        if tag in ("mp_pool", "thread_pool"):
            if method in POOL_SUBMIT_METHODS:
                self._pool_submit(node, tag)
            return
        if tag == "event_loop":
            self._loop_api(node, method)
            return
        if tag == "queue" and method == "get":
            has_timeout = len(node.args) > 1 or any(
                kw.arg == "timeout" for kw in node.keywords
            )
            if not has_timeout:
                self._add_effect(
                    "blocking", "Queue.get without timeout", node.lineno
                )
            return
        table = METHOD_EFFECTS.get(tag)
        if table is not None:
            kinds = table.get(method) or table.get("*")
            if kinds:
                for kind in kinds:
                    self._add_effect(kind, f"{tag}.{method}",
                                     node.lineno)
            return
        if method in MUTATING_METHODS:
            self._mutation(func.value, node.lineno, f".{method}() call")

    # -- canonical dispatch --------------------------------------------- #

    def _dispatch_canonical(
        self, node: ast.Call, canonical: str, awaited: bool, bare: bool
    ) -> None:
        # Special concurrency forms first.
        if canonical == "asyncio.to_thread":
            self._offload_first_arg(node, off_loop=True)
            return
        if canonical in ("multiprocessing.Process",
                         "multiprocessing.context.Process"):
            self._process_call(node)
            return
        if canonical.endswith("random.default_rng") or (
            canonical == "default_rng"
        ):
            if not node.args and not node.keywords:
                self._add_effect(
                    "rng", "default_rng() without a seed", node.lineno
                )
            return
        if canonical.startswith("numpy.random.") or (
            canonical.startswith("np.random.")
        ):
            self._add_effect(
                "rng", f"legacy global {canonical}", node.lineno
            )
            return
        if (
            canonical.startswith("random.")
            and canonical.count(".") == 1
        ):
            self._add_effect(
                "rng", f"stdlib {canonical}", node.lineno
            )
            return
        resolved = self.project.resolve(canonical)
        if resolved.kind == "function":
            self._internal_call(node, resolved.target, awaited, bare)
            return
        if resolved.kind == "class":
            cls = self.project.classes[resolved.target]
            init = cls.methods.get("__init__")
            if init is not None:
                self._internal_call(node, init, awaited, bare,
                                    skip_self=True)
            return
        if resolved.kind in ("global", "rng_global"):
            return
        kinds = EXTERNAL_EFFECTS.get(canonical)
        if kinds:
            for kind in kinds:
                self._add_effect(kind, canonical, node.lineno)

    def _internal_call(
        self,
        node: ast.Call,
        target: str,
        awaited: bool,
        bare: bool,
        receiver: Optional[ast.expr] = None,
        skip_self: bool = False,
        off_loop: bool = False,
        arg_offset: int = 0,
    ) -> None:
        callee = self.project.functions.get(target)
        if callee is None:
            return
        bindings: Dict[str, Tuple[str, str]] = {}
        params = list(callee.params)
        if callee.self_param is not None:
            if receiver is not None:
                bindings[callee.self_param] = self._root_binding(receiver)
            params = params[1:]
        elif skip_self and params:
            params = params[1:]
        # ``arg_offset`` skips wrapper operands (``to_thread(fn, ...)``:
        # the callee's args start after ``fn``).
        for i, arg in enumerate(node.args[arg_offset:]):
            if isinstance(arg, ast.Starred):
                break
            if i < len(params):
                bindings[params[i]] = self._root_binding(arg)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in callee.params:
                bindings[kw.arg] = self._root_binding(kw.value)
        self.facts.calls.append(
            CallSite(
                callee=target,
                lineno=node.lineno,
                awaited=awaited,
                off_loop=off_loop,
                bare=bare,
                callee_async=callee.is_async,
                bindings=bindings,
            )
        )

    # -- concurrency forms ---------------------------------------------- #

    def _callable_ref(self, arg: ast.expr) -> Optional[str]:
        """Resolve a first-class callable reference to a qualname."""
        if isinstance(arg, ast.Name):
            local = self.facts.local_types.get(arg.id)
            if local is not None and local.startswith("fn:"):
                return local[3:]
            canonical = self.project.canonical(self.mod, [arg.id])
            resolved = self.project.resolve(canonical)
            if resolved.kind == "function":
                return resolved.target
            return None
        chain = dotted_chain(arg) if isinstance(arg, ast.Attribute) else None
        if chain is None:
            return None
        if (
            chain[0] == self.info.self_param
            and self.info.class_name is not None
            and len(chain) == 2
        ):
            cls = self.project.classes.get(
                f"{self.mod.name}.{self.info.class_name}"
            )
            if cls is not None:
                return cls.methods.get(chain[1])
            return None
        if len(chain) == 2:
            # ``obj.method`` on a typed local (incl. an inherited
            # closure ``self``): resolve through the class.
            tag = self.facts.local_types.get(chain[0])
            if tag is not None:
                cls = self.project.classes.get(tag)
                if cls is not None:
                    return cls.methods.get(chain[1])
                return None
        canonical = self.project.canonical(self.mod, chain)
        resolved = self.project.resolve(canonical)
        return resolved.target if resolved.kind == "function" else None

    def _offload_first_arg(self, node: ast.Call, off_loop: bool) -> None:
        """``asyncio.to_thread(fn, ...)``: follow ``fn`` off-loop."""
        if not node.args:
            return
        target = self._callable_ref(node.args[0])
        if target is not None:
            self._internal_call(
                node, target, awaited=False, bare=False,
                off_loop=off_loop, arg_offset=1,
            )

    def _loop_api(self, node: ast.Call, method: str) -> None:
        if method == "run_in_executor" and len(node.args) >= 2:
            target = self._callable_ref(node.args[1])
            if target is not None:
                self._internal_call(
                    node, target, awaited=False, bare=False,
                    off_loop=True, arg_offset=2,
                )
            return
        if method in ("call_soon", "call_soon_threadsafe"):
            idx = 0
        elif method in ("call_later", "call_at"):
            idx = 1
        else:
            return
        if len(node.args) > idx:
            target = self._callable_ref(node.args[idx])
            if target is not None:
                self.facts.loop_callbacks.append(
                    CallbackReg(
                        callback=target, lineno=node.lineno, api=method
                    )
                )

    def _process_call(self, node: ast.Call) -> None:
        self._add_effect("spawn", "Process()", node.lineno)
        for kw in node.keywords:
            if kw.arg == "target":
                target = self._callable_ref(kw.value)
                if target is not None:
                    self.facts.worker_targets.append(
                        WorkerReg(target=target, lineno=node.lineno,
                                  api="Process")
                    )

    def _pool_submit(self, node: ast.Call, tag: str) -> None:
        if not node.args:
            return
        target = self._callable_ref(node.args[0])
        if target is None:
            return
        if tag == "mp_pool":
            self.facts.worker_targets.append(
                WorkerReg(target=target, lineno=node.lineno, api="pool")
            )
        else:
            # Thread pool: same loop-safety as to_thread.
            self._internal_call(
                node, target, awaited=False, bare=False, off_loop=True,
                arg_offset=1,
            )


# --------------------------------------------------------------------- #
# closure-capture resolution (after every function is scanned)
# --------------------------------------------------------------------- #


def _resolve_captures(
    project: Project, facts: Dict[str, FunctionFacts]
) -> None:
    """Flag fork-unsafe objects closed over by worker targets.

    A worker target that is a *nested* function captures its enclosing
    scope by reference across ``fork()``; a lock / file / socket in
    that closure is shared with the parent and deadlock- or
    corruption-prone.  Arguments passed explicitly via ``args=`` are
    the sanctioned channel and not flagged.
    """
    for fact in facts.values():
        for reg in fact.worker_targets:
            target_info = project.functions.get(reg.target)
            if target_info is None or target_info.parent is None:
                continue
            enclosing = facts.get(target_info.parent)
            if enclosing is None:
                continue
            for var in target_info.free_vars:
                tag = enclosing.local_types.get(var)
                if tag in FORK_UNSAFE_TAGS:
                    fact.captures.append(
                        CaptureHit(
                            target=reg.target,
                            var=var,
                            tag=tag,
                            lineno=reg.lineno,
                        )
                    )
