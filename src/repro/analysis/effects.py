"""Effect lattice: intrinsic effect kinds and fixed-point propagation.

An :class:`Effect` is a ``(kind, detail)`` pair.  Kinds:

==============  =====================================================
mutates_arg     In-place mutation of a parameter (detail: param name).
mutates_global  Mutation of module-level state (detail: ``mod.NAME``).
io              File / socket / filesystem side effect.
rng             Draw from nondeterministic or shared randomness.
spawn           Process creation.
blocking        Call that can stall the calling thread (event loop).
lock            Lock acquisition.
==============  =====================================================

Per function the analyzer keeps ``Effect -> EffectOrigin``: where the
effect was first observed and, for propagated effects, through which
call edge it arrived — enough to reconstruct a human-readable path in
rule messages.  Propagation runs to a fixed point over the call graph;
``mutates_arg`` translates through the call-site argument binding
(mutating a *local* of the caller is not a caller effect), everything
else propagates verbatim.  Edges into **ambient** modules (declared in
:mod:`repro.analysis.contracts`) and ``off_loop`` edges' ``blocking``
effects are masked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, NamedTuple, Optional, Tuple

if TYPE_CHECKING:
    from repro.analysis.callgraph import CallSite, FunctionFacts

__all__ = [
    "EXTERNAL_EFFECTS",
    "Effect",
    "EffectOrigin",
    "MUTATING_METHODS",
    "METHOD_EFFECTS",
    "effect_path",
    "in_ambient",
    "propagate",
]


class Effect(NamedTuple):
    """One abstract side effect: ``(kind, detail)``."""

    kind: str
    detail: str = ""

    def describe(self) -> str:
        return f"{self.kind}({self.detail})" if self.detail else self.kind


@dataclass(frozen=True)
class EffectOrigin:
    """Where an effect entered a function.

    ``via``/``via_line``/``src`` are set for propagated effects: the
    immediate callee, the call-site line, and the effect as it appears
    *in the callee* (whose own origin continues the chain).
    """

    lineno: int
    note: str = ""
    via: Optional[str] = None
    via_line: Optional[int] = None
    src: Optional[Effect] = None

    @property
    def is_intrinsic(self) -> bool:
        return self.via is None


EffectMap = Dict[Effect, EffectOrigin]


#: Canonical external callables -> effect kinds.  Everything absent is
#: assumed effect-free (optimistic policy; see module doc).
EXTERNAL_EFFECTS: Dict[str, Tuple[str, ...]] = {
    "time.sleep": ("blocking",),
    "subprocess.run": ("spawn", "io", "blocking"),
    "subprocess.call": ("spawn", "io", "blocking"),
    "subprocess.check_call": ("spawn", "io", "blocking"),
    "subprocess.check_output": ("spawn", "io", "blocking"),
    "subprocess.Popen": ("spawn", "io"),
    "os.system": ("spawn", "io", "blocking"),
    "os.fork": ("spawn",),
    "os.fsync": ("io", "blocking"),
    "os.replace": ("io", "blocking"),
    "os.rename": ("io", "blocking"),
    "os.remove": ("io",),
    "os.unlink": ("io",),
    "os.makedirs": ("io",),
    "os.mkdir": ("io",),
    "os.rmdir": ("io",),
    "open": ("io", "blocking"),
    "io.open": ("io", "blocking"),
    "shutil.rmtree": ("io", "blocking"),
    "shutil.copy": ("io", "blocking"),
    "shutil.copytree": ("io", "blocking"),
    "shutil.move": ("io", "blocking"),
    "urllib.request.urlopen": ("io", "blocking"),
    "socket.create_connection": ("io", "blocking"),
    "input": ("io", "blocking"),
}

#: Stdlib ``random`` module functions all draw from the global state.
STDLIB_RANDOM_PREFIX = "random."

#: Method effects by receiver type tag: ``tag -> method -> kinds``.
#: ``"*"`` matches any method on that receiver.
METHOD_EFFECTS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "file": {
        "read": ("io", "blocking"),
        "readline": ("io", "blocking"),
        "readlines": ("io", "blocking"),
        "write": ("io", "blocking"),
        "writelines": ("io", "blocking"),
        "flush": ("io", "blocking"),
        "seek": ("io",),
        "truncate": ("io",),
        "close": ("io",),
    },
    "socket": {
        "recv": ("io", "blocking"),
        "recvfrom": ("io", "blocking"),
        "send": ("io", "blocking"),
        "sendall": ("io", "blocking"),
        "sendto": ("io", "blocking"),
        "accept": ("io", "blocking"),
        "connect": ("io", "blocking"),
        "close": ("io",),
    },
    "path": {
        "read_text": ("io", "blocking"),
        "read_bytes": ("io", "blocking"),
        "write_text": ("io", "blocking"),
        "write_bytes": ("io", "blocking"),
        "unlink": ("io",),
        "mkdir": ("io",),
        "rmdir": ("io",),
        "touch": ("io",),
        "rename": ("io", "blocking"),
        "replace": ("io", "blocking"),
        "glob": ("io", "blocking"),
        "rglob": ("io", "blocking"),
    },
    "lock": {"acquire": ("lock",)},
    "rlock": {"acquire": ("lock",)},
    "rng": {"*": ("rng",)},
}

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "popitem", "clear",
     "sort", "reverse", "add", "discard", "update", "setdefault",
     "appendleft", "popleft", "extendleft", "rotate", "fill",
     "write", "put", "put_nowait", "push", "__setitem__"}
)


def propagate(
    facts: Dict[str, "FunctionFacts"],
    ambient_modules: frozenset,
) -> Dict[str, EffectMap]:
    """Fixed-point effect propagation over the call graph.

    Starts from each function's intrinsic effects and folds callee
    effects into callers until nothing changes.  ``ambient_modules``
    effects never cross into callers (sanctioned instrumentation).
    """
    effects: Dict[str, EffectMap] = {
        qual: dict(f.intrinsics) for qual, f in facts.items()
    }
    changed = True
    while changed:
        changed = False
        for qual, fact in facts.items():
            mine = effects[qual]
            for cs in fact.calls:
                callee = effects.get(cs.callee)
                if callee is None:
                    continue
                if in_ambient(cs.callee, ambient_modules):
                    continue
                for eff, origin in callee.items():
                    translated = _translate(eff, cs)
                    if translated is None or translated in mine:
                        continue
                    mine[translated] = EffectOrigin(
                        lineno=cs.lineno,
                        note=origin.note,
                        via=cs.callee,
                        via_line=cs.lineno,
                        src=eff,
                    )
                    changed = True
    return effects


def in_ambient(qualname: str, ambient_modules: frozenset) -> bool:
    """Whether ``qualname`` lives inside one of the ambient modules."""
    return any(
        qualname == mod or qualname.startswith(mod + ".")
        for mod in ambient_modules
    )


def _translate(eff: Effect, cs: "CallSite") -> Optional[Effect]:
    """Callee effect -> caller effect through one call edge."""
    if eff.kind == "blocking" and (cs.off_loop or cs.callee_async):
        # Off-loop: the callee runs on a worker thread / process and
        # cannot stall the caller's thread.  Async callee: the call
        # only builds the coroutine; blocking surfaces where the
        # coroutine itself runs (the ASY rules anchor it there).
        # Either way the callee's other effects still happen.
        return None
    if eff.kind != "mutates_arg":
        return eff
    binding = cs.bindings.get(eff.detail)
    if binding is None:
        return None
    kind, name = binding
    if kind == "param":
        return Effect("mutates_arg", name)
    if kind == "global":
        return Effect("mutates_global", name)
    return None  # caller-local object: not a caller effect


def effect_path(
    qualname: str,
    eff: Effect,
    effects: Dict[str, EffectMap],
    limit: int = 6,
) -> str:
    """``f -> g -> h`` call chain from ``qualname`` to the intrinsic
    site of ``eff`` (for rule messages)."""
    parts = [qualname.rsplit(".", 2)[-1] if "." in qualname else qualname]
    cur_qual, cur_eff = qualname, eff
    for _ in range(limit):
        origin = effects.get(cur_qual, {}).get(cur_eff)
        if origin is None or origin.via is None:
            break
        parts.append(origin.via.split(".", 1)[1]
                     if origin.via.startswith("repro.")
                     else origin.via)
        if origin.src is None:
            break
        cur_qual, cur_eff = origin.via, origin.src
    return " -> ".join(parts)
