"""Analyzer diagnostics: findings, reports, baseline keys.

Mirrors :mod:`repro.lint.violations` (the design-database linter's
diagnostics) so the two surfaces read the same: stable rule ids, an
ordered severity enum, text and JSON renderings, and a ``--fail-on``
threshold that maps to an exit code.  The extra piece here is the
**baseline key** — ``rule:qualname:detail`` — which identifies a finding
across line drift so the ratchet file stays stable under refactors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.lint.violations import Severity

__all__ = ["AnalysisReport", "Finding", "Severity"]


@dataclass(frozen=True)
class Finding:
    """One analyzer finding on one function.

    Attributes:
        rule_id: Stable rule identifier (e.g. ``"EFF101"``).
        severity: Finding severity.
        message: One-line human description (includes the effect path).
        relpath: Repo-relative posix path of the offending module.
        line: 1-based line the finding anchors to (pragma target).
        qualname: Dotted name of the function the finding is about.
        detail: Discriminator within the function (parameter name,
            global, callee) — part of the baseline key.
        hint: Actionable fix hint inherited from the rule.
    """

    rule_id: str
    severity: Severity
    message: str
    relpath: str
    line: int
    qualname: str
    detail: str = ""
    hint: Optional[str] = None

    def key(self) -> str:
        """Line-independent identity used by the ratchet baseline."""
        return f"{self.rule_id}:{self.qualname}:{self.detail}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation with stable key order."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label(),
            "message": self.message,
            "path": self.relpath,
            "line": self.line,
            "qualname": self.qualname,
            "detail": self.detail,
            "key": self.key(),
            "hint": self.hint,
        }

    def format(self) -> str:
        """``path:12: [EFF101] error: message``."""
        return (
            f"{self.relpath}:{self.line}: [{self.rule_id}] "
            f"{self.severity.label()}: {self.message}"
        )

    def sort_key(self) -> tuple:
        return (self.relpath, self.line, self.rule_id, self.detail)


@dataclass
class AnalysisReport:
    """All findings of one analyzer run.

    Attributes:
        findings: Non-baselined findings, sorted by (path, line, rule).
        baselined: Findings matched (and silenced) by the baseline file.
        stale_baseline: Baseline keys that no longer match any finding —
            the ratchet must go down (remove them from the file).
        modules: Number of modules analyzed.
        functions: Number of functions analyzed.
        rules_run: Ids of the rule families that executed.
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    modules: int = 0
    functions: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        """No live findings and no stale baseline entries."""
        return not self.findings and not self.stale_baseline

    def count_at_least(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity >= severity)

    def exit_code(self, fail_on: Union[str, Severity] = Severity.ERROR) -> int:
        """1 when findings at/above ``fail_on`` or stale baseline keys
        exist (the ratchet only goes down), else 0."""
        if self.stale_baseline:
            return 1
        return 1 if self.count_at_least(Severity.parse(fail_on)) else 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "modules": self.modules,
            "functions": self.functions,
            "rules_run": list(self.rules_run),
            "counts": {
                "error": self.count_at_least(Severity.ERROR),
                "warning": sum(
                    1 for f in self.findings
                    if f.severity is Severity.WARNING
                ),
                "total": len(self.findings),
                "baselined": len(self.baselined),
            },
            "findings": [f.as_dict() for f in self.findings],
            "baselined": [f.key() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def format_text(self, verbose: bool = False) -> str:
        """Human-readable multi-line rendering."""
        lines: List[str] = []
        for f in self.findings:
            lines.append(f.format())
            if verbose and f.hint:
                lines.append(f"    hint: {f.hint}")
        for key in self.stale_baseline:
            lines.append(
                f"stale baseline entry {key!r}: the finding is fixed — "
                f"remove it from the baseline (the ratchet only goes down)"
            )
        if self.is_clean:
            lines.append(
                f"analysis clean: {self.functions} functions in "
                f"{self.modules} modules, 0 findings"
                + (
                    f" ({len(self.baselined)} baselined)"
                    if self.baselined else ""
                )
            )
        else:
            lines.append(
                f"analysis: {self.count_at_least(Severity.ERROR)} error(s), "
                f"{sum(1 for f in self.findings if f.severity is Severity.WARNING)} "
                f"warning(s) over {self.functions} functions in "
                f"{self.modules} modules"
            )
        return "\n".join(lines)
