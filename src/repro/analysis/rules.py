"""The EFF / ASY / FRK rule catalogue and their checkers.

=======  =============================================================
EFF101   A declared-pure function mutates one of its arguments.
EFF102   A declared-pure function has a non-argument impurity — module
         state mutation, file/socket I/O, or process spawn — either
         directly or through a transitive callee.
EFF103   A declared-pure function draws from randomness that was not
         passed in (seedless ``default_rng()``, legacy ``np.random``
         globals, stdlib ``random``, or a module-level RNG).
ASY101   A blocking call — ``time.sleep``, ``subprocess``, sync
         file/socket I/O, ``Queue.get`` without timeout — is reachable
         from an ``async def`` in ``repro.service`` without hopping
         off the event loop, or sits in a callback scheduled onto the
         loop (``call_soon*``).  Findings anchor at the *first* sync
         edge out of the async function, so one pragma covers one
         design decision.
ASY102   An internal coroutine is called as a bare statement without
         ``await``: the awaitable is created and dropped.
FRK101   A worker-pool target's closure captures a lock, open file, or
         socket from the enclosing scope — shared with the parent
         across ``fork()``.  ``args=`` is the sanctioned channel.
FRK102   Code reachable inside a forked worker mutates a module-level
         global or draws from a module-level RNG (warning: fork-shared
         state diverges silently between parent and children).
=======  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Set

from repro.analysis.callgraph import FunctionFacts
from repro.analysis.contracts import ContractRegistry
from repro.analysis.effects import EffectMap, effect_path, in_ambient
from repro.analysis.findings import Finding, Severity
from repro.analysis.model import Project

__all__ = ["RULES", "RuleSpec", "check_all"]

#: Prefix of the modules whose ``async def`` functions are event-loop
#: roots for the ASY rules.
SERVICE_PREFIX = "repro.service"

#: Constructor-ish methods exempt from purity contracts (initializing
#: ``self`` is their job).
CONSTRUCTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__"})


class RuleSpec(NamedTuple):
    """One rule: id, severity, summary, fix hint."""

    rule_id: str
    severity: Severity
    summary: str
    hint: str


RULES: Dict[str, RuleSpec] = {
    spec.rule_id: spec
    for spec in [
        RuleSpec(
            "EFF101", Severity.ERROR,
            "declared-pure function mutates an argument",
            "copy the input before editing it, or register the "
            "mutation in the contract if it is the documented API",
        ),
        RuleSpec(
            "EFF102", Severity.ERROR,
            "declared-pure function reaches an impure operation",
            "hoist the side effect to the caller, or drop the callee "
            "from the pure path",
        ),
        RuleSpec(
            "EFF103", Severity.ERROR,
            "declared-pure function draws from an RNG not passed in",
            "take a seeded numpy.random.Generator parameter from the "
            "caller instead of owning randomness",
        ),
        RuleSpec(
            "ASY101", Severity.ERROR,
            "blocking call reachable from the event loop",
            "wrap the call in asyncio.to_thread(...), or pragma the "
            "edge if blocking the loop is the documented contract",
        ),
        RuleSpec(
            "ASY102", Severity.ERROR,
            "coroutine called without await",
            "await the call (or create_task it); a bare call only "
            "builds the awaitable and drops it",
        ),
        RuleSpec(
            "FRK101", Severity.ERROR,
            "fork-unsafe object captured in a worker target's closure",
            "pass the object through args=/initargs= (pickled or "
            "fork-inherited explicitly) instead of the closure",
        ),
        RuleSpec(
            "FRK102", Severity.WARNING,
            "worker-reachable code mutates module-level state",
            "move the state into arguments/returns, or pragma it if "
            "the slot is a deliberate fork-shared design",
        ),
    ]
}


@dataclass
class AnalysisInput:
    """Everything the checkers consume."""

    project: Project
    facts: Dict[str, FunctionFacts]
    effects: Dict[str, EffectMap]
    registry: ContractRegistry


def check_all(
    data: AnalysisInput, rule_ids: List[str]
) -> List[Finding]:
    findings: List[Finding] = []
    if any(r.startswith("EFF") for r in rule_ids):
        findings.extend(_check_purity(data, rule_ids))
    if any(r.startswith("ASY") for r in rule_ids):
        findings.extend(_check_async(data, rule_ids))
    if any(r.startswith("FRK") for r in rule_ids):
        findings.extend(_check_fork(data, rule_ids))
    return sorted(findings, key=Finding.sort_key)


def _emit(
    rule_id: str,
    info_relpath: str,
    line: int,
    qualname: str,
    detail: str,
    message: str,
) -> Finding:
    spec = RULES[rule_id]
    return Finding(
        rule_id=rule_id,
        severity=spec.severity,
        message=message,
        relpath=info_relpath,
        line=line,
        qualname=qualname,
        detail=detail,
        hint=spec.hint,
    )


# --------------------------------------------------------------------- #
# EFF: purity contracts
# --------------------------------------------------------------------- #


def _check_purity(
    data: AnalysisInput, rule_ids: List[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for qual, info in data.project.functions.items():
        if info.name in CONSTRUCTOR_NAMES:
            continue
        contract = data.registry.lookup(info)
        if contract is None:
            continue
        for eff, origin in data.effects.get(qual, {}).items():
            if contract.allows(eff):
                continue
            where = (
                "directly" if origin.is_intrinsic
                else f"via {effect_path(qual, eff, data.effects)}"
            )
            if eff.kind == "mutates_arg":
                rule = "EFF101" if origin.is_intrinsic else "EFF102"
                message = (
                    f"{info.name} is declared pure "
                    f"({contract.reason}) but mutates argument "
                    f"{eff.detail!r} {where}"
                )
                detail = f"mutates_arg:{eff.detail}"
            elif eff.kind == "rng":
                rule = "EFF103"
                message = (
                    f"{info.name} is declared pure "
                    f"({contract.reason}) but draws randomness not "
                    f"passed in: {eff.detail} ({where})"
                )
                detail = f"rng:{eff.detail}"
            else:
                rule = "EFF102"
                message = (
                    f"{info.name} is declared pure "
                    f"({contract.reason}) but has effect "
                    f"{eff.describe()} {where}"
                )
                detail = eff.describe()
            if rule in rule_ids:
                findings.append(
                    _emit(rule, info.relpath, origin.lineno, qual,
                          detail, message)
                )
    return findings


# --------------------------------------------------------------------- #
# ASY: event-loop safety
# --------------------------------------------------------------------- #


def _check_async(
    data: AnalysisInput, rule_ids: List[str]
) -> List[Finding]:
    findings: List[Finding] = []

    def blocks(qual: str) -> bool:
        return any(
            eff.kind == "blocking"
            for eff in data.effects.get(qual, {})
        )

    def blocking_detail(qual: str) -> str:
        for eff in data.effects.get(qual, {}):
            if eff.kind == "blocking":
                return effect_path(qual, eff, data.effects) + (
                    f" [{eff.detail}]" if eff.detail else ""
                )
        return qual

    for qual, info in data.project.functions.items():
        if not info.module.startswith(SERVICE_PREFIX):
            continue
        fact = data.facts[qual]
        if info.is_async:
            # Direct blocking primitives in the async body.
            for eff, origin in data.effects.get(qual, {}).items():
                if eff.kind != "blocking" or not origin.is_intrinsic:
                    continue
                if "ASY101" in rule_ids:
                    findings.append(_emit(
                        "ASY101", info.relpath, origin.lineno, qual,
                        f"blocking:{eff.detail}",
                        f"async {info.name} blocks the event loop: "
                        f"{eff.detail}",
                    ))
            # First sync edge whose transitive closure blocks.
            for cs in fact.calls:
                callee_info = data.project.functions.get(cs.callee)
                if callee_info is None or cs.off_loop:
                    continue
                if callee_info.is_async:
                    if (
                        cs.bare and not cs.awaited
                        and "ASY102" in rule_ids
                    ):
                        findings.append(_emit(
                            "ASY102", info.relpath, cs.lineno, qual,
                            f"unawaited:{cs.callee}",
                            f"coroutine {callee_info.name} called "
                            f"without await: the awaitable is created "
                            f"and dropped",
                        ))
                    continue
                if blocks(cs.callee) and "ASY101" in rule_ids:
                    findings.append(_emit(
                        "ASY101", info.relpath, cs.lineno, qual,
                        f"call:{cs.callee}",
                        f"async {info.name} calls "
                        f"{callee_info.name}, which blocks the event "
                        f"loop ({blocking_detail(cs.callee)})",
                    ))
        # Callbacks scheduled onto the loop run on the loop no matter
        # where they were registered from.
        for reg in fact.loop_callbacks:
            if blocks(reg.callback) and "ASY101" in rule_ids:
                findings.append(_emit(
                    "ASY101", info.relpath, reg.lineno, qual,
                    f"callback:{reg.callback}",
                    f"{reg.api} schedules "
                    f"{reg.callback.rsplit('.', 1)[-1]} onto the event "
                    f"loop, and it blocks "
                    f"({blocking_detail(reg.callback)})",
                ))
    return findings


# --------------------------------------------------------------------- #
# FRK: fork safety
# --------------------------------------------------------------------- #


def _worker_reachable(data: AnalysisInput) -> Dict[str, str]:
    """Function qualname -> the worker entry point it is reachable
    from (first registration wins)."""
    roots: List[str] = []
    for fact in data.facts.values():
        for reg in fact.worker_targets:
            roots.append(reg.target)
    reachable: Dict[str, str] = {}
    for root in roots:
        stack = [root]
        while stack:
            cur = stack.pop()
            if cur in reachable:
                continue
            reachable[cur] = root
            for cs in data.facts.get(
                cur, FunctionFacts(qualname=cur)
            ).calls:
                if cs.callee not in reachable:
                    stack.append(cs.callee)
    return reachable


def _check_fork(
    data: AnalysisInput, rule_ids: List[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for qual, fact in data.facts.items():
        info = data.project.functions[qual]
        for hit in fact.captures:
            if "FRK101" not in rule_ids:
                continue
            findings.append(_emit(
                "FRK101", info.relpath, hit.lineno, qual,
                f"capture:{hit.var}",
                f"worker target "
                f"{hit.target.rsplit('.', 1)[-1]} closes over "
                f"{hit.tag} {hit.var!r} from the enclosing scope; "
                f"fork shares it with the parent",
            ))
    if "FRK102" not in rule_ids:
        return findings
    reachable = _worker_reachable(data)
    seen: Set[str] = set()
    for qual, root in reachable.items():
        info = data.project.functions.get(qual)
        if info is None:
            continue
        if in_ambient(qual, data.registry.ambient_modules):
            continue  # sanctioned instrumentation / chaos hooks
        for eff, origin in data.effects.get(qual, {}).items():
            if not origin.is_intrinsic:
                continue
            is_state = eff.kind == "mutates_global"
            is_module_rng = eff.kind == "rng" and (
                "module RNG" in eff.detail
                or "without a seed" in eff.detail
            )
            if not (is_state or is_module_rng):
                continue
            key = f"{qual}:{eff.describe()}"
            if key in seen:
                continue
            seen.add(key)
            what = (
                f"mutates module state {eff.detail}"
                if is_state else f"draws from {eff.detail}"
            )
            findings.append(_emit(
                "FRK102", info.relpath, origin.lineno, qual,
                eff.describe(),
                f"{info.name} runs inside forked workers (via "
                f"{root.rsplit('.', 1)[-1]}) and {what}; fork-shared "
                f"state diverges between parent and children",
            ))
    return findings
