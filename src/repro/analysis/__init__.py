"""Interprocedural effect & concurrency analysis of the repro sources.

Where :mod:`tools/repro_lint` enforces *local*, single-file determinism
rules, this package checks the **whole-program** contracts every bitwise
guarantee in the repo silently leans on: query paths must not mutate the
design database, worker closures must not capture locks or module RNGs,
and async service handlers must never block the event loop.

The pipeline:

1. :mod:`repro.analysis.model` parses every module under ``src/repro``
   into a light project model (functions, classes, imports, globals).
2. :mod:`repro.analysis.callgraph` resolves call sites, builds per
   function type environments, and records concurrency facts (event-loop
   callbacks, worker-pool targets, closure captures).
3. :mod:`repro.analysis.effects` infers per-function effect sets —
   ``mutates_arg`` / ``mutates_global`` / ``io`` / ``rng`` / ``spawn`` /
   ``blocking`` / ``lock`` — by fixed-point propagation over the graph.
4. :mod:`repro.analysis.rules` checks the inferred effects against the
   declared purity contracts (:mod:`repro.analysis.contracts`) and the
   async/fork safety invariants, emitting EFF/ASY/FRK findings.

Run it as ``repro analyze`` (see the CLI) or programmatically through
:func:`repro.analysis.engine.analyze_tree`.  Findings suppress per line
with the same ``# repro-lint: disable=<RULE>`` pragma as the determinism
lint, and CI ratchets the baseline (``tools/analysis_ratchet.json``)
down only.
"""

from __future__ import annotations

from repro.analysis.engine import analyze_sources, analyze_tree
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.rules import RULES, RuleSpec

__all__ = [
    "AnalysisReport",
    "Finding",
    "RULES",
    "RuleSpec",
    "Severity",
    "analyze_sources",
    "analyze_tree",
]
