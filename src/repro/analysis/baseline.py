"""Ratcheted finding baseline (``tools/analysis_ratchet.json``).

Same only-goes-down semantics as the mypy gate: the file enumerates the
line-independent keys (:meth:`repro.analysis.findings.Finding.key`) of
findings grandfathered at the time the gate was introduced.  A key in
the baseline silences the matching finding; a key that no longer
matches anything is **stale** and fails the run until removed — fixed
findings must be locked in, never re-spendable.  The shipped baseline
is empty: every finding at HEAD was either fixed or pragma-justified.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple

from repro.analysis.findings import Finding
from repro.errors import ReproError

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

BASELINE_SCHEMA_VERSION = 1


def load_baseline(path: Path) -> List[str]:
    """Read the baseline keys; a missing file is an empty baseline."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(
            f"cannot read analysis baseline {path}: {exc}"
        ) from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema_version") != BASELINE_SCHEMA_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise ReproError(
            f"analysis baseline {path} is malformed; expected "
            f'{{"schema_version": {BASELINE_SCHEMA_VERSION}, '
            f'"findings": [...]}}'
        )
    return [str(k) for k in payload["findings"]]


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Serialize the given findings' keys as the new baseline."""
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "findings": sorted({f.key() for f in findings}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    findings: List[Finding], keys: List[str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (live, baselined) and report stale keys."""
    keyset = set(keys)
    live = [f for f in findings if f.key() not in keyset]
    baselined = [f for f in findings if f.key() in keyset]
    matched = {f.key() for f in baselined}
    stale = sorted(keyset - matched)
    return live, baselined, stale
