"""Analyzer orchestration: sources -> model -> effects -> findings.

:func:`analyze_sources` is the synthetic-module entry point the test
fixtures use; :func:`analyze_tree` walks ``src/repro`` on disk.  Both
run the same pipeline and honour ``# repro-lint: disable=<RULE>`` line
pragmas (identical syntax to :mod:`tools/repro_lint`) plus the ratchet
baseline.
"""

from __future__ import annotations

import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.callgraph import build_facts
from repro.analysis.contracts import ContractRegistry, default_registry
from repro.analysis.effects import propagate
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.model import Project, SourceModule, module_name_for
from repro.analysis.rules import RULES, AnalysisInput, check_all
from repro.errors import ReproError

__all__ = ["analyze_sources", "analyze_tree", "default_root",
           "select_rules"]

PRAGMA = "repro-lint:"


def _pragmas(code: str) -> Dict[int, Set[str]]:
    """Line -> rule ids disabled there (same grammar as repro_lint)."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(
            iter(code.splitlines(True)).__next__
        )
        for tok in tokens:
            if tok.type != tokenize.COMMENT or PRAGMA not in tok.string:
                continue
            directive = tok.string.split(PRAGMA, 1)[1].strip()
            if directive.startswith("disable="):
                rule_list = directive[len("disable="):].split(None, 1)[0]
                rules = {
                    r.strip() for r in rule_list.split(",") if r.strip()
                }
                out.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return out


def select_rules(selectors: Optional[Sequence[str]]) -> List[str]:
    """Expand rule selectors (ids or family prefixes) to rule ids."""
    if not selectors:
        return sorted(RULES)
    out: List[str] = []
    for sel in selectors:
        key = sel.strip().upper()
        if key in RULES:
            out.append(key)
            continue
        family = [r for r in sorted(RULES) if r.startswith(key)]
        if not family:
            raise ReproError(
                f"unknown analysis rule {sel!r}; choose from "
                + ", ".join(sorted(RULES))
            )
        out.extend(family)
    return sorted(set(out))


def analyze_sources(
    sources: Sequence[SourceModule],
    registry: Optional[ContractRegistry] = None,
    rules: Optional[Sequence[str]] = None,
    baseline_keys: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the full pipeline over in-memory modules."""
    registry = registry if registry is not None else default_registry()
    rule_ids = select_rules(rules)
    project = Project(list(sources))
    if project.errors:
        raise ReproError(
            "analysis cannot parse the tree: " + "; ".join(project.errors)
        )
    facts = build_facts(project)
    effects = propagate(facts, registry.ambient_modules)
    findings = check_all(
        AnalysisInput(
            project=project,
            facts=facts,
            effects=effects,
            registry=registry,
        ),
        rule_ids,
    )
    findings = _apply_pragmas(project, findings)
    live, baselined, stale = apply_baseline(
        findings, list(baseline_keys or [])
    )
    return AnalysisReport(
        findings=live,
        baselined=baselined,
        stale_baseline=stale,
        modules=len(project.modules),
        functions=len(project.functions),
        rules_run=rule_ids,
    )


def _apply_pragmas(
    project: Project, findings: List[Finding]
) -> List[Finding]:
    pragma_cache: Dict[str, Dict[int, Set[str]]] = {}
    by_relpath = {m.relpath: m for m in project.modules.values()}
    kept: List[Finding] = []
    for f in findings:
        mod = by_relpath.get(f.relpath)
        if mod is None:
            kept.append(f)
            continue
        if f.relpath not in pragma_cache:
            pragma_cache[f.relpath] = _pragmas(mod.source)
        if f.rule_id in pragma_cache[f.relpath].get(f.line, ()):
            continue
        kept.append(f)
    return kept


def _tree_sources(root: Path) -> List[SourceModule]:
    src = root / "src" / "repro"
    if not src.is_dir():
        raise ReproError(f"no src/repro tree under {root}")
    sources: List[SourceModule] = []
    for path in sorted(src.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        sources.append(
            SourceModule(
                name=module_name_for(relpath),
                relpath=relpath,
                source=path.read_text(),
            )
        )
    return sources


def default_root() -> Path:
    """Repo root inferred from this package's location on disk."""
    return Path(__file__).resolve().parents[3]


def analyze_tree(
    root: Optional[Path] = None,
    registry: Optional[ContractRegistry] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
) -> AnalysisReport:
    """Analyze the on-disk ``src/repro`` tree under ``root``.

    ``baseline`` points at a ratchet file (missing file = empty
    baseline); ``None`` skips baseline handling entirely.
    """
    if root is None:
        root = default_root()
    keys = load_baseline(baseline) if baseline is not None else []
    return analyze_sources(
        _tree_sources(root),
        registry=registry,
        rules=rules,
        baseline_keys=keys,
    )
