"""Lightweight whole-project AST model.

Parses every module of the analyzed tree into :class:`ModuleInfo` /
:class:`FunctionInfo` / :class:`ClassInfo` records and builds the name
resolution machinery the call-graph pass leans on: import alias maps,
module-level globals (with the mutable / RNG subsets the fork rules
care about), per-class attribute types recovered from ``__init__``
assignments and dataclass field annotations, and a unique-method-name
index used as a last-resort receiver resolution.

The model is deliberately *optimistic*: anything it cannot resolve is
treated as effect-free.  The rules built on top only ever flag what the
model can positively prove, so unresolved calls cost recall, never
precision.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "Resolved",
    "SourceModule",
    "dotted_chain",
    "module_name_for",
]

#: Constructor calls whose *result type* the type environment tracks.
#: Maps a canonical dotted callable to a type tag.
CONSTRUCTOR_TAGS: Dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "open": "file",
    "io.open": "file",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "queue.Queue": "queue",
    "queue.SimpleQueue": "queue",
    "queue.LifoQueue": "queue",
    "queue.PriorityQueue": "queue",
    "multiprocessing.Queue": "queue",
    "multiprocessing.get_context": "mp_context",
    "multiprocessing.Pool": "mp_pool",
    "concurrent.futures.ProcessPoolExecutor": "mp_pool",
    "concurrent.futures.ThreadPoolExecutor": "thread_pool",
    "asyncio.get_running_loop": "event_loop",
    "asyncio.get_event_loop": "event_loop",
    "pathlib.Path": "path",
    "pathlib.PurePath": "path",
}

#: ``mp_context`` attribute constructors (``ctx.Lock()`` etc.).
MP_CONTEXT_TAGS: Dict[str, str] = {
    "Lock": "lock",
    "RLock": "rlock",
    "Queue": "queue",
    "SimpleQueue": "queue",
    "JoinableQueue": "queue",
    "Pool": "mp_pool",
    "Pipe": "pipe_pair",
}

#: Annotation names that map straight to a type tag.
ANNOTATION_TAGS: Dict[str, str] = {
    "pathlib.Path": "path",
    "Path": "path",
    "threading.Lock": "lock",
    "socket.socket": "socket",
}


class SourceModule(NamedTuple):
    """One module handed to the analyzer: name, repo relpath, source."""

    name: str
    relpath: str
    source: str


class Resolved(NamedTuple):
    """Outcome of resolving a dotted name.

    ``kind`` is one of ``function`` / ``class`` / ``global`` /
    ``rng_global`` / ``external``; ``target`` is the canonical dotted
    name (for internal kinds, a project qualname).
    """

    kind: str
    target: str


@dataclass
class FunctionInfo:
    """One function / method / nested def in the project."""

    qualname: str
    module: str
    name: str
    relpath: str
    lineno: int
    node: ast.AST
    is_async: bool
    params: Tuple[str, ...]
    class_name: Optional[str] = None
    parent: Optional[str] = None
    is_static: bool = False
    param_annotations: Dict[str, str] = field(default_factory=dict)
    #: Names loaded but not bound locally nor module-level: closure
    #: candidates for the fork-capture rule.
    free_vars: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def self_param(self) -> Optional[str]:
        if self.is_method and not self.is_static and self.params:
            return self.params[0]
        return None


@dataclass
class ClassInfo:
    """One class: its methods and what its attributes are typed as."""

    qualname: str
    module: str
    name: str
    methods: Dict[str, str] = field(default_factory=dict)
    #: attr name -> canonical class dotted name or type tag.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its module-level namespace."""

    name: str
    relpath: str
    source: str
    tree: ast.Module
    is_package: bool = False
    imports: Dict[str, str] = field(default_factory=dict)
    #: Every name assigned at module level -> first assignment line.
    global_names: Dict[str, int] = field(default_factory=dict)
    #: Module-level names bound to mutable containers.
    global_mutables: Dict[str, int] = field(default_factory=dict)
    #: Module-level names bound to RNG instances.
    global_rngs: Dict[str, int] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def module_name_for(relpath: str) -> str:
    """``src/repro/service/http.py`` -> ``repro.service.http``."""
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-Name roots."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def annotation_text(node: Optional[ast.expr]) -> Optional[str]:
    """Best-effort dotted text of an annotation expression.

    Unwraps ``Optional[X]`` / string literals; gives up (``None``) on
    anything more exotic — unresolved annotations just lose precision.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = dotted_chain(node.value)
        if base and base[-1] in ("Optional",):
            return annotation_text(node.slice)
        return None
    chain = dotted_chain(node)
    return ".".join(chain) if chain else None


MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque",
     "OrderedDict", "Counter", "WeakKeyDictionary", "WeakValueDictionary"}
)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        if chain and chain[-1] in MUTABLE_CONSTRUCTORS:
            return True
    return False


def _is_rng_constructor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = dotted_chain(node.func)
    if not chain:
        return False
    dotted = ".".join(chain)
    return (
        dotted.endswith("random.default_rng")
        or dotted == "default_rng"
        or dotted.endswith("random.Random")
        or dotted.endswith("random.RandomState")
    )


class _ModuleCollector:
    """Builds one :class:`ModuleInfo` from a parsed tree."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info

    def collect(self) -> None:
        for stmt in self.info.tree.body:
            self._top_level(stmt)

    # -- module body ---------------------------------------------------- #

    def _top_level(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else local
                self.info.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_base(stmt)
            if base is not None:
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.info.imports[local] = target
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(stmt, class_name=None, parent=None)
        elif isinstance(stmt, ast.ClassDef):
            self._class(stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    self.info.global_names.setdefault(
                        target.id, target.lineno
                    )
                    if value is not None and _is_mutable_literal(value):
                        self.info.global_mutables.setdefault(
                            target.id, target.lineno
                        )
                    if value is not None and _is_rng_constructor(value):
                        self.info.global_rngs.setdefault(
                            target.id, target.lineno
                        )
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks and guarded imports.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._top_level(sub)

    def _import_base(self, stmt: ast.ImportFrom) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module or ""
        # Relative import: anchor at the module's package.
        parts = self.info.name.split(".")
        if not self.info.is_package:
            parts = parts[:-1]
        up = stmt.level - 1
        if up > len(parts):
            return None
        base_parts = parts[: len(parts) - up] if up else parts
        if stmt.module:
            base_parts = base_parts + stmt.module.split(".")
        return ".".join(base_parts)

    # -- defs ----------------------------------------------------------- #

    def _function(
        self,
        node: ast.stmt,
        class_name: Optional[str],
        parent: Optional[str],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if parent is not None:
            qual = f"{parent}.<locals>.{node.name}"
        elif class_name is not None:
            qual = f"{self.info.name}.{class_name}.{node.name}"
        else:
            qual = f"{self.info.name}.{node.name}"
        args = node.args
        params = tuple(
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )
        annotations: Dict[str, str] = {}
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            text = annotation_text(a.annotation)
            if text:
                annotations[a.arg] = text
        is_static = any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in node.decorator_list
        )
        info = FunctionInfo(
            qualname=qual,
            module=self.info.name,
            name=node.name,
            relpath=self.info.relpath,
            lineno=node.lineno,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            params=params,
            class_name=class_name,
            parent=parent,
            is_static=is_static,
            param_annotations=annotations,
            free_vars=tuple(sorted(_free_vars(node))),
        )
        self.info.functions[qual] = info
        if class_name is not None and parent is None:
            self.info.classes[class_name].methods[node.name] = qual
        self._nested(node, qual)

    def _nested(self, node: ast.stmt, parent_qual: str) -> None:
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(sub, class_name=None, parent=parent_qual)
            elif isinstance(sub, ast.stmt) and not isinstance(
                sub, ast.ClassDef
            ):
                self._nested(sub, parent_qual)

    def _class(self, node: ast.ClassDef) -> None:
        qual = f"{self.info.name}.{node.name}"
        cls = ClassInfo(qualname=qual, module=self.info.name,
                        name=node.name)
        self.info.classes[node.name] = cls
        self.info.global_names.setdefault(node.name, node.lineno)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, class_name=node.name, parent=None)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                # Dataclass-style field annotation.
                text = annotation_text(stmt.annotation)
                if text:
                    cls.attr_types.setdefault(stmt.target.id, text)


def _free_vars(node: ast.stmt) -> List[str]:
    """Loaded names not bound inside the function (closure candidates)."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    bound = set()
    args = node.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs):
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    loaded: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if isinstance(sub.ctx, (ast.Store, ast.Del)):
                bound.add(sub.id)
            else:
                loaded.append(sub.id)
        elif isinstance(sub, (ast.Global, ast.Nonlocal)):
            bound.update(sub.names)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if sub is not node:
                bound.add(sub.name)
    return sorted(
        {n for n in loaded if n not in bound}
        - set(dir(builtins))
    )


class Project:
    """All parsed modules plus cross-module resolution."""

    def __init__(self, sources: List[SourceModule]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.errors: List[str] = []
        for src in sources:
            try:
                tree = ast.parse(src.source)
            except SyntaxError as exc:
                self.errors.append(
                    f"{src.relpath}:{exc.lineno}: syntax error: {exc.msg}"
                )
                continue
            info = ModuleInfo(
                name=src.name,
                relpath=src.relpath,
                source=src.source,
                tree=tree,
                is_package=src.relpath.endswith("__init__.py"),
            )
            _ModuleCollector(info).collect()
            self.modules[src.name] = info
            self.functions.update(info.functions)
            for cls in info.classes.values():
                self.classes[cls.qualname] = cls
        #: method name -> defining classes (for unique-name fallback).
        self.method_index: Dict[str, List[str]] = {}
        for cls in self.classes.values():
            for mname, fq in cls.methods.items():
                self.method_index.setdefault(mname, []).append(fq)

    # -- name resolution ------------------------------------------------ #

    def canonical(self, module: ModuleInfo, chain: List[str]) -> str:
        """Map a dotted chain through the module's import aliases."""
        root = chain[0]
        target = module.imports.get(root)
        if target is not None:
            return ".".join([target] + chain[1:])
        if (
            root in module.global_names
            or any(f.name == root and f.class_name is None
                   and f.parent is None
                   for f in module.functions.values())
        ):
            return ".".join([module.name] + chain)
        return ".".join(chain)

    def resolve(self, canonical: str, depth: int = 0) -> Resolved:
        """Classify a canonical dotted name against the project."""
        if depth > 4:
            return Resolved("external", canonical)
        parts = canonical.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:split])
            mod = self.modules.get(mod_name)
            if mod is None:
                continue
            rest = parts[split:]
            return self._resolve_in(mod, rest, canonical, depth)
        return Resolved("external", canonical)

    def _resolve_in(
        self,
        mod: ModuleInfo,
        rest: List[str],
        canonical: str,
        depth: int,
    ) -> Resolved:
        head = rest[0]
        if len(rest) == 1:
            fq = f"{mod.name}.{head}"
            if fq in self.functions:
                return Resolved("function", fq)
            if head in mod.classes:
                return Resolved("class", fq)
            if head in mod.global_rngs:
                return Resolved("rng_global", fq)
            if head in mod.global_names:
                return Resolved("global", fq)
            if head in mod.imports:
                return self.resolve(mod.imports[head], depth + 1)
            return Resolved("external", canonical)
        if head in mod.classes:
            cls = mod.classes[head]
            if len(rest) == 2 and rest[1] in cls.methods:
                return Resolved("function", cls.methods[rest[1]])
            return Resolved("external", canonical)
        if head in mod.imports:
            # Re-export through a package __init__.
            return self.resolve(
                ".".join([mod.imports[head]] + rest[1:]), depth + 1
            )
        return Resolved("external", canonical)

    def resolve_class(self, name: str) -> Optional[ClassInfo]:
        """Canonical dotted name -> :class:`ClassInfo`, if internal."""
        resolved = self.resolve(name)
        if resolved.kind == "class":
            return self.classes.get(resolved.target)
        return None

    def unique_method(self, name: str) -> Optional[str]:
        """Resolve ``x.m()`` with unknown receiver: unique def wins."""
        candidates = self.method_index.get(name, [])
        if len(candidates) == 1 and name not in AMBIGUOUS_METHOD_NAMES:
            return candidates[0]
        return None


#: Method names too generic for unique-name receiver resolution even
#: when only one project class happens to define them today.
AMBIGUOUS_METHOD_NAMES = frozenset(
    {"get", "run", "save", "load", "close", "open", "put", "pop", "set",
     "add", "update", "copy", "reset", "clear", "start", "stop", "wait",
     "join", "send", "recv", "read", "write", "format", "parse", "keys",
     "values", "items", "append", "extend"}
)
