"""Exception hierarchy for the GDSII-Guard reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses are grouped by subsystem; the physical-design
substrate raises :class:`LayoutError`/:class:`PlacementError`/... while the
GDSII-Guard flow itself raises :class:`FlowError` and the optimizer raises
:class:`OptimizationError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TechnologyError(ReproError):
    """Invalid technology definition (site size, metal stack, tracks)."""


class LibraryError(ReproError):
    """Unknown cell, malformed cell definition, or duplicate registration."""


class NetlistError(ReproError):
    """Structural netlist inconsistency (dangling pin, duplicate name...)."""


class LayoutError(ReproError):
    """Illegal layout operation (overlap, out-of-core placement...)."""


class PlacementError(ReproError):
    """Placement/legalization failure (insufficient capacity...)."""


class RoutingError(ReproError):
    """Routing failure (no path, malformed non-default rule...)."""


class TimingError(ReproError):
    """STA failure (combinational loop, missing constraint...)."""


class SecurityError(ReproError):
    """Security-metric failure (no assets annotated, bad threshold...)."""


class FlowError(ReproError):
    """GDSII-Guard flow configuration or execution failure."""


class OptimizationError(ReproError):
    """Multi-objective optimizer mis-configuration or failure."""


class DefenseError(ReproError):
    """Baseline defense (ICAS/BISA/Ba) configuration failure."""


class BenchmarkError(ReproError):
    """Unknown benchmark design or malformed design specification."""


class SerializationError(ReproError):
    """DEF-like or Verilog-like text round-trip failure."""


class ResilienceError(ReproError):
    """Supervised-execution failure (worker pool, fault injection)."""


class ServiceError(ReproError):
    """Job-orchestration service failure (bad request, unknown job...)."""


class JobQueueFull(ServiceError):
    """The service's bounded job queue rejected a submission
    (backpressure — the HTTP layer maps this to 429 + Retry-After)."""


class UnknownJob(ServiceError):
    """A job id that no record matches (HTTP 404, not 400)."""


class ExplorationCancelled(ReproError):
    """An exploration was cooperatively cancelled at a generation
    boundary (after that generation's checkpoint was written); carries
    ``generation`` so callers can report how far the run got."""

    def __init__(self, generation: int) -> None:
        super().__init__(
            f"exploration cancelled after generation {generation} "
            f"(checkpoint written; resume to continue)"
        )
        self.generation = generation


class CheckpointError(ResilienceError):
    """Unreadable, unwritable, corrupt, or version-incompatible checkpoint."""


class InjectedFault(ResilienceError):
    """A deliberately injected transient failure (chaos testing only)."""


class InjectedInterrupt(ResilienceError):
    """A deliberately injected process interrupt at a generation boundary
    (chaos testing only) — simulates a crash/kill between checkpoints."""
