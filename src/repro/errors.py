"""Exception hierarchy for the GDSII-Guard reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses are grouped by subsystem; the physical-design
substrate raises :class:`LayoutError`/:class:`PlacementError`/... while the
GDSII-Guard flow itself raises :class:`FlowError` and the optimizer raises
:class:`OptimizationError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TechnologyError(ReproError):
    """Invalid technology definition (site size, metal stack, tracks)."""


class LibraryError(ReproError):
    """Unknown cell, malformed cell definition, or duplicate registration."""


class NetlistError(ReproError):
    """Structural netlist inconsistency (dangling pin, duplicate name...)."""


class LayoutError(ReproError):
    """Illegal layout operation (overlap, out-of-core placement...)."""


class PlacementError(ReproError):
    """Placement/legalization failure (insufficient capacity...)."""


class RoutingError(ReproError):
    """Routing failure (no path, malformed non-default rule...)."""


class TimingError(ReproError):
    """STA failure (combinational loop, missing constraint...)."""


class SecurityError(ReproError):
    """Security-metric failure (no assets annotated, bad threshold...)."""


class FlowError(ReproError):
    """GDSII-Guard flow configuration or execution failure."""


class OptimizationError(ReproError):
    """Multi-objective optimizer mis-configuration or failure."""


class DefenseError(ReproError):
    """Baseline defense (ICAS/BISA/Ba) configuration failure."""


class BenchmarkError(ReproError):
    """Unknown benchmark design or malformed design specification."""


class SerializationError(ReproError):
    """DEF-like or Verilog-like text round-trip failure."""


class ResilienceError(ReproError):
    """Supervised-execution failure (worker pool, fault injection)."""


class CheckpointError(ResilienceError):
    """Unreadable, unwritable, corrupt, or version-incompatible checkpoint."""


class InjectedFault(ResilienceError):
    """A deliberately injected transient failure (chaos testing only)."""


class InjectedInterrupt(ResilienceError):
    """A deliberately injected process interrupt at a generation boundary
    (chaos testing only) — simulates a crash/kill between checkpoints."""
