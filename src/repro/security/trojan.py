"""An additive-Trojan attacker: the paper's threat model, executable.

The attacker starts from the finalized layout (our stand-in for the GDSII),
recovers the exploitable regions, and tries to implant a Trojan shaped
after A2-class additive attacks: a small trigger (counter/logic gates) plus
a payload gate, placed into free sites near a security-critical victim and
wired to it through leftover routing tracks.  Per the threat model the
attacker may only *add* cells and wires — existing cells and routes are
never moved or resized.

Used by the validation benchmark: a defense works iff this attacker fails
(or is pushed to regions so small/far that insertion no longer closes
timing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.layout.layout import Layout
from repro.security.assets import SecurityAssets
from repro.security.exploitable import (
    DEFAULT_THRESH_ER,
    ExploitableRegion,
    find_exploitable_regions,
)
from repro.timing.sta import STAResult

#: Tracks the tap + trigger wiring needs over the insertion area.
_WIRING_DEMAND_TRACKS = 4.0


@dataclass(frozen=True)
class TrojanSpec:
    """Shape of the Trojan the attacker tries to insert.

    The default mirrors an A2-class footprint: A2's analog trigger needs no
    flip-flop (a charge pump stands in for the counter), so the digital
    equivalent is a handful of small gates — trigger logic plus a payload
    gate — totalling ``DEFAULT_THRESH_ER`` region sites.  A counter-based
    digital Trojan (add a ``"DFF_X1"`` to the list) needs a 12-site gap and
    is correspondingly easier to deny.
    """

    gate_masters: Tuple[str, ...] = (
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "INV_X1",
        "INV_X1",
    )
    #: extra tracks needed over the region for trigger-internal wiring
    wiring_demand: float = _WIRING_DEMAND_TRACKS

    def total_sites(self, layout: Layout) -> int:
        """Total sites the Trojan gates occupy."""
        lib = layout.netlist.library
        return sum(lib.cell(m).width_sites for m in self.gate_masters)


@dataclass
class AttackReport:
    """Outcome of one insertion attempt."""

    success: bool
    reason: str
    region_sites: int = 0
    gates_placed: int = 0
    tap_length_um: float = 0.0
    region_distance_um: float = 0.0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.success


def _nearest_asset_distance(
    layout: Layout, region: ExploitableRegion, assets: SecurityAssets
) -> Tuple[float, Optional[str]]:
    """Closest asset to the region (µm, L1 between rectangles)."""
    best = float("inf")
    best_name: Optional[str] = None
    rects = region.gap_rects(layout)
    for name in assets:
        if not layout.is_placed(name):
            continue
        asset_rect = layout.cell_rect(name)
        for rect in rects:
            d = rect.manhattan_distance_to_rect(asset_rect)
            if d < best:
                best = d
                best_name = name
    return best, best_name


def _try_place_gates(
    layout: Layout, region: ExploitableRegion, spec: TrojanSpec
) -> Optional[List[Tuple[str, int, int]]]:
    """First-fit the Trojan gates into the region's gaps.

    Returns the (master, row, start) assignments without mutating the
    layout, or ``None`` when the gates do not fit.
    """
    lib = layout.netlist.library
    widths = [lib.cell(m).width_sites for m in spec.gate_masters]
    order = sorted(range(len(widths)), key=lambda i: -widths[i])
    gaps = sorted(region.component.gaps, key=lambda g: -g.weight)
    remaining = [[g.row, g.lo, g.hi] for g in gaps]
    placements: List[Optional[Tuple[str, int, int]]] = [None] * len(widths)
    for idx in order:
        w = widths[idx]
        placed = False
        for slot in remaining:
            if slot[2] - slot[1] >= w:
                placements[idx] = (spec.gate_masters[idx], slot[0], slot[1])
                slot[1] += w
                placed = True
                break
        if not placed:
            return None
    return [p for p in placements if p is not None]


def attempt_insertion(
    layout: Layout,
    sta: STAResult,
    assets: SecurityAssets,
    routing: Optional[object] = None,
    spec: TrojanSpec = TrojanSpec(),
    thresh_er: int = DEFAULT_THRESH_ER,
) -> AttackReport:
    """Try to insert the Trojan; the layout itself is never mutated.

    The attack succeeds when some exploitable region (1) holds all the
    Trojan gates, and (2) — when a routing result is supplied — has enough
    free tracks over the tap corridor between the region and its victim.

    Returns:
        An :class:`AttackReport` describing the best attempt.
    """
    report = find_exploitable_regions(
        layout, sta, assets, thresh_er=thresh_er, routing=routing
    )
    if not report.regions:
        return AttackReport(
            success=False, reason="no exploitable regions remain"
        )

    # Prefer big regions close to an asset.
    scored = []
    for region in report.regions:
        dist, victim = _nearest_asset_distance(layout, region, assets)
        if victim is None:
            continue
        scored.append((region.num_sites / (1.0 + dist), region, dist, victim))
    scored.sort(key=lambda t: -t[0])

    best_failure = AttackReport(
        success=False, reason="no region fits the Trojan gates"
    )
    for _, region, dist, victim in scored:
        gates = _try_place_gates(layout, region, spec)
        if gates is None:
            continue
        # Tap-corridor routing feasibility.
        if routing is not None:
            victim_rect = layout.cell_rect(victim)
            region_rect = region.gap_rects(layout)[0]
            corridor = victim_rect.union_bbox(region_rect)
            free = routing.grid.free_tracks_over(corridor)
            if free < spec.wiring_demand:
                best_failure = AttackReport(
                    success=False,
                    reason=(
                        f"region of {region.num_sites} sites fits the gates "
                        f"but only {free:.1f} free tracks remain over the "
                        f"tap corridor (need {spec.wiring_demand})"
                    ),
                    region_sites=region.num_sites,
                    gates_placed=len(gates),
                    region_distance_um=dist,
                )
                continue
        return AttackReport(
            success=True,
            reason="trojan gates placed and tap corridor routable",
            region_sites=region.num_sites,
            gates_placed=len(gates),
            tap_length_um=dist,
            region_distance_um=dist,
        )
    return best_failure
