"""An additive-Trojan attacker: the paper's threat model, executable.

The attacker starts from the finalized layout (our stand-in for the GDSII),
recovers the exploitable regions, and tries to implant a Trojan shaped
after A2-class additive attacks: a small trigger (counter/logic gates) plus
a payload gate, placed into free sites near a security-critical victim and
wired to it through leftover routing tracks.  Per the threat model the
attacker may only *add* cells and wires — existing cells and routes are
never moved or resized.

:func:`attempt_insertion` is a pure query: it never mutates the layout it
attacks (the red-team campaign's rollback guarantee is "there is nothing
to roll back").  A successful report carries the concrete gate
``placements`` so :func:`materialize_implant` can build an *independent*
implanted layout — deep-copied netlist included — for slack/DRC impact
measurement without ever touching the victim design database.

Used by the validation benchmark and the :mod:`repro.redteam` campaign
engine: a defense works iff this attacker fails (or is pushed to regions
so small/far that insertion no longer closes timing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SecurityError
from repro.geometry import Point
from repro.layout.layout import Layout
from repro.netlist.netlist import PortDirection
from repro.security.assets import SecurityAssets
from repro.security.exploitable import (
    DEFAULT_THRESH_ER,
    ExploitableRegion,
    find_exploitable_regions,
)
from repro.timing.sta import STAResult

#: Tracks the tap + trigger wiring needs over the insertion area.
_WIRING_DEMAND_TRACKS = 4.0

#: Placement strategies :func:`attempt_insertion` understands.
STRATEGIES = ("first_fit", "random_fit")

#: Instance/net name prefix :func:`materialize_implant` reserves.
IMPLANT_PREFIX = "__trojan"


@dataclass(frozen=True)
class TrojanSpec:
    """Shape of the Trojan the attacker tries to insert.

    The default mirrors an A2-class footprint: A2's analog trigger needs no
    flip-flop (a charge pump stands in for the counter), so the digital
    equivalent is a handful of small gates — trigger logic plus a payload
    gate — totalling ``DEFAULT_THRESH_ER`` region sites.  A counter-based
    digital Trojan (add a ``"DFF_X1"`` to the list) needs a 12-site gap and
    is correspondingly easier to deny.

    ``tap_limit_um`` bounds how far (µm, L1) the insertion region may sit
    from its victim — a distance *exactly at* the limit still passes, per
    the campaign grid's boundary semantics.  ``strategy`` selects the gap
    packing order: ``"first_fit"`` is the deterministic
    biggest-gaps-first packing, ``"random_fit"`` shuffles gate and gap
    order with the caller's seeded RNG (the Monte Carlo campaign axis).
    """

    gate_masters: Tuple[str, ...] = (
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "NAND2_X1",
        "INV_X1",
        "INV_X1",
    )
    #: extra tracks needed over the region for trigger-internal wiring
    wiring_demand: float = _WIRING_DEMAND_TRACKS
    #: max region-to-victim distance in µm (``None`` = unbounded)
    tap_limit_um: Optional[float] = None
    #: gap packing order: ``"first_fit"`` or ``"random_fit"``
    strategy: str = "first_fit"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise SecurityError(
                f"unknown placement strategy {self.strategy!r}; "
                f"pick one of {STRATEGIES}"
            )
        if not self.gate_masters:
            raise SecurityError("a Trojan needs at least one gate")

    def total_sites(self, layout: Layout) -> int:
        """Total sites the Trojan gates occupy."""
        lib = layout.netlist.library
        return sum(lib.cell(m).width_sites for m in self.gate_masters)


@dataclass
class AttackReport:
    """Outcome of one insertion attempt.

    ``placements`` holds the concrete ``(master, row, start)`` gate
    assignments of a successful attempt (empty on failure), and
    ``victim`` names the asset the tap corridor targets — together they
    are everything :func:`materialize_implant` needs to rebuild the
    implant on an independent copy of the design.
    """

    success: bool
    reason: str
    region_sites: int = 0
    gates_placed: int = 0
    tap_length_um: float = 0.0
    region_distance_um: float = 0.0
    placements: Tuple[Tuple[str, int, int], ...] = field(default=())
    victim: Optional[str] = None

    def __bool__(self) -> bool:
        return self.success


def _nearest_asset_distance(
    layout: Layout, region: ExploitableRegion, assets: SecurityAssets
) -> Tuple[float, Optional[str]]:
    """Closest asset to the region (µm, L1 between rectangles)."""
    best = float("inf")
    best_name: Optional[str] = None
    rects = region.gap_rects(layout)
    for name in assets:
        if not layout.is_placed(name):
            continue
        asset_rect = layout.cell_rect(name)
        for rect in rects:
            d = rect.manhattan_distance_to_rect(asset_rect)
            if d < best:
                best = d
                best_name = name
    return best, best_name


def _try_place_gates(
    layout: Layout,
    region: ExploitableRegion,
    spec: TrojanSpec,
    rng: Optional[np.random.Generator] = None,
) -> Optional[List[Tuple[str, int, int]]]:
    """Fit the Trojan gates into the region's gaps (strategy-dependent).

    ``first_fit`` packs the widest gates into the heaviest gaps first;
    ``random_fit`` shuffles both orders with ``rng`` (seeded by the
    campaign, so a given attempt seed reproduces bitwise).  Returns the
    (master, row, start) assignments without mutating the layout, or
    ``None`` when the gates do not fit under the chosen order.
    """
    lib = layout.netlist.library
    widths = [lib.cell(m).width_sites for m in spec.gate_masters]
    if spec.strategy == "random_fit":
        if rng is None:
            rng = np.random.default_rng(0)
        order = list(rng.permutation(len(widths)))
        gaps = list(region.component.gaps)
        gap_order = rng.permutation(len(gaps))
        gaps = [gaps[int(i)] for i in gap_order]
    else:
        order = sorted(range(len(widths)), key=lambda i: -widths[i])
        gaps = sorted(region.component.gaps, key=lambda g: -g.weight)
    remaining = [[g.row, g.lo, g.hi] for g in gaps]
    placements: List[Optional[Tuple[str, int, int]]] = [None] * len(widths)
    for idx in order:
        w = widths[idx]
        placed = False
        for slot in remaining:
            if slot[2] - slot[1] >= w:
                placements[idx] = (spec.gate_masters[idx], slot[0], slot[1])
                slot[1] += w
                placed = True
                break
        if not placed:
            return None
    return [p for p in placements if p is not None]


def attempt_insertion(
    layout: Layout,
    sta: STAResult,
    assets: SecurityAssets,
    routing: Optional[object] = None,
    spec: TrojanSpec = TrojanSpec(),
    thresh_er: int = DEFAULT_THRESH_ER,
    rng: Optional[np.random.Generator] = None,
) -> AttackReport:
    """Try to insert the Trojan; the layout itself is never mutated.

    The attack succeeds when some exploitable region (1) holds all the
    Trojan gates under the spec's placement strategy, (2) sits within the
    spec's tap-distance limit of a victim (a distance exactly at the
    limit passes), and (3) — when a routing result is supplied — has
    enough free tracks over the tap corridor between the region and its
    victim.

    Args:
        rng: Seeded generator consumed by the ``random_fit`` strategy
            (one permutation draw per candidate region); ignored by
            ``first_fit``.

    Returns:
        An :class:`AttackReport` describing the best attempt.
    """
    report = find_exploitable_regions(
        layout, sta, assets, thresh_er=thresh_er, routing=routing
    )
    if not report.regions:
        return AttackReport(
            success=False, reason="no exploitable regions remain"
        )

    # Prefer big regions close to an asset.
    scored = []
    for region in report.regions:
        dist, victim = _nearest_asset_distance(layout, region, assets)
        if victim is None:
            continue
        scored.append((region.num_sites / (1.0 + dist), region, dist, victim))
    scored.sort(key=lambda t: -t[0])
    if not scored:
        return AttackReport(
            success=False,
            reason="no placed security asset to target",
        )

    best_failure = AttackReport(
        success=False, reason="no region fits the Trojan gates"
    )
    for _, region, dist, victim in scored:
        if spec.tap_limit_um is not None and dist > spec.tap_limit_um:
            best_failure = AttackReport(
                success=False,
                reason=(
                    f"region of {region.num_sites} sites sits "
                    f"{dist:.2f} um from its victim, beyond the "
                    f"{spec.tap_limit_um:.2f} um tap limit"
                ),
                region_sites=region.num_sites,
                region_distance_um=dist,
            )
            continue
        gates = _try_place_gates(layout, region, spec, rng=rng)
        if gates is None:
            continue
        # Tap-corridor routing feasibility.
        if routing is not None:
            victim_rect = layout.cell_rect(victim)
            region_rect = region.gap_rects(layout)[0]
            corridor = victim_rect.union_bbox(region_rect)
            free = routing.grid.free_tracks_over(corridor)
            if free < spec.wiring_demand:
                best_failure = AttackReport(
                    success=False,
                    reason=(
                        f"region of {region.num_sites} sites fits the gates "
                        f"but only {free:.1f} free tracks remain over the "
                        f"tap corridor (need {spec.wiring_demand})"
                    ),
                    region_sites=region.num_sites,
                    gates_placed=len(gates),
                    region_distance_um=dist,
                )
                continue
        return AttackReport(
            success=True,
            reason="trojan gates placed and tap corridor routable",
            region_sites=region.num_sites,
            gates_placed=len(gates),
            tap_length_um=dist,
            region_distance_um=dist,
            placements=tuple(gates),
            victim=victim,
        )
    return best_failure


def materialize_implant(
    layout: Layout,
    report: AttackReport,
    spec: TrojanSpec = TrojanSpec(),
    prefix: str = IMPLANT_PREFIX,
) -> Layout:
    """Build an implanted copy of ``layout`` from a successful report.

    The original layout and its netlist are never touched: the implant
    lives on a :meth:`~repro.netlist.netlist.Netlist.copy` of the design
    (the layout's netlist is shared-by-reference across clones, so
    mutating it in place would corrupt every other view of the design).

    Wiring follows the A2 shape: the victim's output net is tapped as the
    trigger input, the trojan gates chain combinationally, and the
    payload output leaves through an attacker-added ``<prefix>_leak``
    port on the core boundary nearest the payload gate.  A flip-flop in
    the footprint clocks from the design's clock net when one exists
    (falling back to the tap net on clock-less designs).

    Returns:
        A new, independent :class:`Layout` with the trojan placed and
        wired — suitable for STA/DRC/lint impact measurement.

    Raises:
        SecurityError: When the report is not a successful one or names
            no victim.
    """
    if not report.success or not report.placements:
        raise SecurityError(
            "materialize_implant needs a successful report with placements"
        )
    if report.victim is None:
        raise SecurityError("attack report names no victim to tap")

    netlist = layout.netlist.copy()
    implanted = Layout(
        netlist,
        layout.technology,
        num_rows=layout.num_rows,
        sites_per_row=layout.sites_per_row,
    )
    for name, pl in layout.placements.items():
        implanted.place(name, pl.row, pl.start)
    for blockage in layout.blockages.values():
        implanted.add_blockage(blockage)
    implanted.fixed = set(layout.fixed)
    implanted.port_positions = dict(layout.port_positions)

    victim = netlist.instance(report.victim)
    tap_net: Optional[str] = None
    for pin in victim.master.output_pins:
        net_name = victim.connections.get(pin.name)
        if net_name is not None:
            tap_net = net_name
            break
    if tap_net is None:
        raise SecurityError(
            f"victim {report.victim!r} has no driven output net to tap"
        )
    clock_nets = sorted(netlist.clock_nets())
    clock_net = clock_nets[0] if clock_nets else tap_net

    prev_net = tap_net
    last_gate: Optional[str] = None
    for i, (master, row, start) in enumerate(report.placements):
        inst_name = f"{prefix}_g{i}"
        inst = netlist.add_instance(inst_name, master)
        out_net = netlist.add_net(f"{prefix}_n{i}").name
        chained = False
        for pin in inst.master.input_pins:
            if pin.is_clock:
                netlist.connect(inst_name, pin.name, clock_net)
            elif not chained:
                # first data input continues the trigger chain
                netlist.connect(inst_name, pin.name, prev_net)
                chained = True
            else:
                # spare data inputs re-tap the victim net
                netlist.connect(inst_name, pin.name, tap_net)
        for pin in inst.master.output_pins:
            netlist.connect(inst_name, pin.name, out_net)
        implanted.place(inst_name, row, start)
        prev_net = out_net
        last_gate = inst_name

    # The payload leaves through an attacker-added boundary port so the
    # implanted netlist stays fully connected (no dangling net).
    leak_port = f"{prefix}_leak"
    netlist.add_port(leak_port, PortDirection.OUTPUT)
    netlist.connect_port(leak_port, prev_net)
    if last_gate is not None:
        center = implanted.cell_center(last_gate)
        core = implanted.core
        implanted.port_positions[leak_port] = Point(
            core.xhi, min(max(center.y, core.ylo), core.yhi)
        )
    netlist.validate()
    return implanted
