"""Security-critical cell assets (Definition 2.1 of the paper).

Assets are the sensitive cells an attacker would target — key-memory
registers and key-control logic.  The benchmark designs annotate them
explicitly; :func:`annotate_key_assets` reproduces the usual convention of
deriving the list from instance-name prefixes (``key_``, ``sbox_ctl_``...),
the way the ISPD-2022 benchmark asset lists are keyed to register banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import SecurityError
from repro.netlist.netlist import Netlist


@dataclass
class SecurityAssets:
    """The annotated security-critical cells of a design."""

    instance_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.instance_names:
            raise SecurityError("asset list is empty")
        if len(set(self.instance_names)) != len(self.instance_names):
            raise SecurityError("duplicate asset names")

    def __len__(self) -> int:
        return len(self.instance_names)

    def __iter__(self):
        return iter(self.instance_names)

    def __contains__(self, name: str) -> bool:
        return name in set(self.instance_names)

    def validate_against(self, netlist: Netlist) -> None:
        """Check every asset exists in the netlist."""
        for name in self.instance_names:
            if not netlist.has_instance(name):
                raise SecurityError(f"asset {name!r} not in netlist")


def annotate_key_assets(
    netlist: Netlist, prefixes: Sequence[str] = ("key_", "kctl_")
) -> SecurityAssets:
    """Derive the asset list from instance-name prefixes."""
    names = [
        inst.name
        for inst in netlist.instances
        if any(inst.name.startswith(p) for p in prefixes)
    ]
    if not names:
        raise SecurityError(
            f"no instances match asset prefixes {list(prefixes)} in "
            f"{netlist.name!r}"
        )
    return SecurityAssets(instance_names=tuple(names))
