"""ICAS's extensible coverage metrics (Trippel et al., S&P 2020).

The paper's conclusion calls for "further exploring the coverage metrics
... of hardware Trojan"; ICAS defines three that complement the
Knechtel-style ERsites/ERtracks pair used by GDSII-Guard:

* **Trigger space** — the histogram of contiguous open placement-site
  runs: how many potential trigger footprints of each size the layout
  still offers.
* **Net blockage** — for each security-critical net, the fraction of the
  routing resources immediately above its bounding region that is already
  occupied (blocked).  1.0 = fully blocked, nothing left to tap through.
* **Route distance** — per asset, the distance from the asset to the
  nearest exploitable region: how far a Trojan's tap must travel.

These are evaluation-only metrics (no operator consumes them); the
coverage-metrics example surveys them across defenses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.geometry import Rect, bounding_box
from repro.layout.layout import Layout
from repro.security.assets import SecurityAssets
from repro.security.exploitable import ExploitableReport


@dataclass
class TriggerSpaceHistogram:
    """Counts of maximal free runs by size bucket."""

    buckets: Dict[str, int] = field(default_factory=dict)
    total_runs: int = 0

    @classmethod
    def bucket_of(cls, size: int) -> str:
        if size < 5:
            return "<5"
        if size < 10:
            return "5-9"
        if size < 20:
            return "10-19"
        if size < 50:
            return "20-49"
        return ">=50"


def trigger_space(layout: Layout) -> TriggerSpaceHistogram:
    """Histogram of contiguous free-site runs across all rows."""
    counts: Counter = Counter()
    total = 0
    for occ in layout.occupancy:
        for gap in occ.free_intervals():
            counts[TriggerSpaceHistogram.bucket_of(len(gap))] += 1
            total += 1
    return TriggerSpaceHistogram(buckets=dict(counts), total_runs=total)


def net_blockage(
    layout: Layout,
    assets: SecurityAssets,
    routing: object,
) -> Dict[str, float]:
    """Per-security-critical-net routing blockage in [0, 1].

    A net is security-critical when it touches an asset.  Blockage is the
    used fraction of the track capacity over the net's bounding region —
    the resource an attacker would need to tap the net.
    """
    netlist = layout.netlist
    asset_set = set(assets)
    result: Dict[str, float] = {}
    grid = routing.grid
    for net in netlist.nets:
        touches = False
        if net.driver_pin is not None and net.driver_pin.instance in asset_set:
            touches = True
        if not touches:
            touches = any(ref.instance in asset_set for ref in net.sink_pins)
        if not touches:
            continue
        points = layout.net_pin_points(net.name)
        if len(points) < 2:
            continue
        region = bounding_box(points).inflated(1.0)
        capacity = 0.0
        used = 0.0
        for ix, iy in grid.gcells_in_rect(region):
            capacity += float(grid.capacity[:, ix, iy].sum())
            used += float(
                np.minimum(grid.usage[:, ix, iy], grid.capacity[:, ix, iy]).sum()
            )
        if capacity > 0:
            result[net.name] = used / capacity
    return result


def route_distance(
    layout: Layout,
    assets: SecurityAssets,
    report: ExploitableReport,
) -> Dict[str, Optional[float]]:
    """Per-asset distance (µm) to the nearest exploitable region.

    ``None`` when no exploitable region remains — the best possible
    outcome (infinite route distance).
    """
    result: Dict[str, Optional[float]] = {}
    region_rects: List[Rect] = [
        rect for region in report.regions for rect in region.gap_rects(layout)
    ]
    for name in assets:
        if not layout.is_placed(name):
            continue
        if not region_rects:
            result[name] = None
            continue
        asset_rect = layout.cell_rect(name)
        result[name] = min(
            asset_rect.manhattan_distance_to_rect(r) for r in region_rects
        )
    return result
