"""Security metrics and the additive-Trojan attacker model."""

from repro.security.assets import SecurityAssets, annotate_key_assets
from repro.security.exploitable import (
    ExploitableRegion,
    ExploitableReport,
    exploitable_distance,
    find_exploitable_regions,
)
from repro.security.metrics import SecurityMetrics, measure_security, security_score
from repro.security.trojan import AttackReport, TrojanSpec, attempt_insertion

__all__ = [
    "SecurityAssets",
    "annotate_key_assets",
    "ExploitableRegion",
    "ExploitableReport",
    "exploitable_distance",
    "find_exploitable_regions",
    "SecurityMetrics",
    "measure_security",
    "security_score",
    "AttackReport",
    "TrojanSpec",
    "attempt_insertion",
]
