"""The paper's security score (§II-C).

``Security(L_opt) = α · ERsites(L_opt)/ERsites(L_base)
                  + (1−α) · ERtracks(L_opt)/ERtracks(L_base)``

Lower is better; 0 means no exploitable resources remain, 1 matches the
unprotected baseline.  The headline "98.8 % risk reduction" is
``1 − mean(Security)`` over the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SecurityError
from repro.layout.layout import Layout
from repro.security.assets import SecurityAssets
from repro.security.exploitable import (
    DEFAULT_THRESH_ER,
    ExploitableReport,
    find_exploitable_regions,
)
from repro.timing.sta import STAResult

#: The paper's equal weighting of free sites and free tracks.
DEFAULT_ALPHA = 0.5


@dataclass(frozen=True)
class SecurityMetrics:
    """The two raw security sub-metrics of one layout."""

    er_sites: int
    er_tracks: float
    num_regions: int

    @classmethod
    def from_report(cls, report: ExploitableReport) -> "SecurityMetrics":
        """Collapse an exploitable-region report into the two sub-metrics."""
        return cls(
            er_sites=report.er_sites,
            er_tracks=report.er_tracks,
            num_regions=report.num_regions,
        )


def measure_security(
    layout: Layout,
    sta: STAResult,
    assets: SecurityAssets,
    routing: Optional[object] = None,
    thresh_er: int = DEFAULT_THRESH_ER,
) -> SecurityMetrics:
    """Compute :class:`SecurityMetrics` of a layout."""
    report = find_exploitable_regions(
        layout, sta, assets, thresh_er=thresh_er, routing=routing
    )
    return SecurityMetrics.from_report(report)


def _safe_ratio(opt: float, base: float) -> float:
    """opt/base with the convention 0/0 = 0 and x/0 = 1 (no improvement)."""
    if base <= 0:
        return 0.0 if opt <= 0 else 1.0
    return opt / base


def security_score(
    optimized: SecurityMetrics,
    baseline: SecurityMetrics,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """The normalized security objective (lower is more secure)."""
    if not 0.0 <= alpha <= 1.0:
        raise SecurityError(f"alpha {alpha} not in [0, 1]")
    sites_ratio = _safe_ratio(optimized.er_sites, baseline.er_sites)
    tracks_ratio = _safe_ratio(optimized.er_tracks, baseline.er_tracks)
    return alpha * sites_ratio + (1.0 - alpha) * tracks_ratio
