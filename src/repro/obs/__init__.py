"""``repro.obs`` — observability: metrics, stage timers, flow tracing.

The flow is a multi-stage pipeline (ECO placement → routing → STA →
security scoring inside an NSGA-II outer loop); this package answers
"where does the time go" for all of it:

* a :class:`~repro.obs.metrics.Metrics` registry (counters, gauges,
  histograms) with JSON snapshots CI can archive and diff;
* :class:`timed` — a context-manager/decorator recording wall-clock and
  peak RSS per stage into the registry and the trace;
* a structured JSONL event trace with nested spans
  (flow → operator → generation); see :mod:`repro.obs.trace`.

Everything is **off by default** and near-zero-cost while off: the
library call sites allocate one small handle and check one boolean, and
no metric, span, or I/O work happens.  Turn it on explicitly::

    from repro import obs

    obs.enable(trace_path="run.jsonl")
    ...  # run flows / exploration
    obs.disable()                      # flushes + closes the trace
    print(obs.get_metrics().snapshot())

or from the environment: ``REPRO_OBS=1`` (optionally
``REPRO_OBS_TRACE=/path/to/trace.jsonl``) enables collection at import
time — handy for profiling a CLI run without touching code.

Process-parallel note: a forked GA worker inherits the enabled flag,
the registry contents, and the trace writer's shared file description;
:func:`worker_detach` (called from the pool initializer in
:mod:`repro.optimize.explorer`) drops the latter two so each task can
report a clean per-worker delta, folded back into the parent registry
with :meth:`Metrics.merge_snapshot`.
"""

from __future__ import annotations

import functools
import os
import time
from pathlib import Path
from typing import IO, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.trace import Span, TraceWriter, read_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "Span",
    "TraceWriter",
    "read_trace",
    "timed",
    "point",
    "count",
    "gauge_set",
    "observe",
    "enable",
    "disable",
    "is_enabled",
    "get_metrics",
    "get_trace",
    "worker_detach",
]

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None


def _peak_rss_kb() -> float:
    """Process peak RSS in KB (a monotonic high-water mark on Linux)."""
    if _resource is None:  # pragma: no cover - non-POSIX platform
        return 0.0
    return float(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class _ObsState:
    """Module-global observability state (one per process)."""

    __slots__ = ("enabled", "metrics", "trace")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = Metrics()
        self.trace: Optional[TraceWriter] = None


_STATE = _ObsState()


def enable(
    trace_path: Union[str, Path, IO[str], None] = None,
    reset: bool = True,
) -> Metrics:
    """Turn collection on; optionally open a JSONL trace sink.

    Args:
        trace_path: File path (or open text handle) for the event trace;
            ``None`` collects metrics only.
        reset: Start from an empty registry (default).  Pass ``False`` to
            accumulate across enable/disable windows.

    Returns:
        The active :class:`Metrics` registry.
    """
    if _STATE.trace is not None:
        _STATE.trace.close()
        _STATE.trace = None
    if reset:
        _STATE.metrics.reset()
    if trace_path is not None:
        _STATE.trace = TraceWriter(trace_path)
    _STATE.enabled = True
    return _STATE.metrics


def disable() -> None:
    """Turn collection off and flush/close the trace (metrics persist)."""
    _STATE.enabled = False
    if _STATE.trace is not None:
        _STATE.trace.close()
        _STATE.trace = None


def is_enabled() -> bool:
    return _STATE.enabled


def get_metrics() -> Metrics:
    """The process-global registry (valid whether or not enabled)."""
    return _STATE.metrics


def get_trace() -> Optional[TraceWriter]:
    """The active trace writer, or ``None``."""
    return _STATE.trace


def worker_detach() -> None:
    """Prepare a forked worker process for clean collection.

    A fork inherits the parent's state wholesale: the enabled flag (which
    we keep), the registry contents (which would double-count if merged
    back), and the trace writer — whose underlying file description is
    *shared* with the parent, so worker writes would interleave duplicate
    span ids into the parent's trace.  Drop the trace reference without
    closing it (closing would emit forced-end events onto the shared
    description) and start from an empty registry so a later snapshot is a
    pure per-worker delta, mergeable with :meth:`Metrics.merge_snapshot`.
    """
    _STATE.trace = None
    _STATE.metrics.reset()


# ---------------------------------------------------------------------- #
# gated convenience recorders (no-ops while disabled)
# ---------------------------------------------------------------------- #


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` if observability is enabled."""
    if _STATE.enabled:
        _STATE.metrics.counter(name).inc(n)


def gauge_set(name: str, value: float, keep_max: bool = False) -> None:
    """Set gauge ``name`` if observability is enabled."""
    if _STATE.enabled:
        g = _STATE.metrics.gauge(name)
        g.set_max(value) if keep_max else g.set(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` if enabled."""
    if _STATE.enabled:
        _STATE.metrics.histogram(name).observe(value)


def point(name: str, **attrs) -> None:
    """Emit an instantaneous trace event (and nothing else) if enabled."""
    if _STATE.enabled and _STATE.trace is not None:
        _STATE.trace.point(name, attrs or None)


class timed:
    """Stage timer: context manager and decorator.

    As a context manager::

        with obs.timed("flow.sta"):
            run_sta(...)

    As a decorator (the enabled check happens per call, so decorating at
    import time is safe)::

        @obs.timed("route.global")
        def global_route(...): ...

    Per stage it records, under the stage name:

    * ``<stage>.calls`` (counter), ``<stage>.errors`` (counter, only on
      exceptions),
    * ``<stage>.wall_s`` (histogram of wall-clock seconds),
    * ``<stage>.peak_rss_kb`` (gauge, process high-water mark at exit),

    and opens a nested span in the active trace.  While observability is
    disabled the whole thing is one attribute check per enter/exit.
    """

    __slots__ = ("stage", "attrs", "_active", "_t0", "_span")

    def __init__(self, stage: str, **attrs) -> None:
        self.stage = stage
        self.attrs = attrs
        self._active = False
        self._t0 = 0.0
        self._span: Optional[Span] = None

    def __enter__(self) -> "timed":
        st = _STATE
        if not st.enabled:
            return self
        self._active = True
        self._span = (
            st.trace.begin(self.stage, self.attrs or None)
            if st.trace is not None
            else None
        )
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        self._active = False
        wall = time.perf_counter() - self._t0
        rss = _peak_rss_kb()
        st = _STATE
        m = st.metrics
        m.counter(f"{self.stage}.calls").inc()
        m.histogram(f"{self.stage}.wall_s").observe(wall)
        m.gauge(f"{self.stage}.peak_rss_kb").set_max(rss)
        if exc_type is not None:
            m.counter(f"{self.stage}.errors").inc()
        if st.trace is not None and self._span is not None:
            st.trace.end(self._span, peak_rss_kb=rss, ok=exc_type is None)
            self._span = None
        return False

    def __call__(self, fn):
        stage, attrs = self.stage, self.attrs

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with timed(stage, **attrs):
                return fn(*args, **kwargs)

        return wrapper


# Environment opt-in: REPRO_OBS=1 [REPRO_OBS_TRACE=/path/trace.jsonl]
if os.environ.get("REPRO_OBS", "").strip() not in ("", "0"):  # pragma: no cover
    enable(trace_path=os.environ.get("REPRO_OBS_TRACE") or None)
