"""Structured JSONL event trace with nested spans.

One line per event, in strict emission order.  Three event shapes:

``begin``
    ``{"ev": "begin", "id": 7, "parent": 3, "depth": 2, "name":
    "flow.sta", "t": 1.0421, "attrs": {...}}`` — a span opened.  ``t`` is
    seconds since the trace started; ``parent`` is ``null`` for roots.

``end``
    ``{"ev": "end", "id": 7, "name": "flow.sta", "t": 1.3109, "dur_s":
    0.2688, "peak_rss_kb": 84312, "ok": true}`` — the matching close.
    ``ok`` is false when the span exited with an exception.

``point``
    ``{"ev": "point", "parent": 3, "depth": 2, "name":
    "explorer.generation_stats", "t": 2.01, "attrs": {...}}`` — an
    instantaneous annotation attached to the enclosing span.

Span nesting is positional: the writer maintains the open-span stack, so
``flow → operator → generation`` nesting falls out of call structure.
Unclosed spans are force-closed (``"ok": false``) on :meth:`TraceWriter.close`.
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional, Union

__all__ = ["Span", "TraceWriter"]


@dataclass
class Span:
    """An open span handle (returned by :meth:`TraceWriter.begin`)."""

    id: int
    name: str
    t0: float


class TraceWriter:
    """Writes the JSONL event stream and tracks the open-span stack."""

    def __init__(self, sink: Union[str, Path, IO[str]]) -> None:
        if isinstance(sink, (str, Path)):
            self._fh: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_fh = True
            self.path: Optional[Path] = Path(sink)
        else:
            self._fh = sink
            self._owns_fh = False
            self.path = None
        self._t0 = time.perf_counter()
        self._next_id = 1
        self._stack: List[Span] = []
        self.events_written = 0

    # ------------------------------------------------------------------ #

    def _emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        # Flush per event: spans are stage-grained (milliseconds+), so the
        # cost is noise, and an empty userspace buffer keeps the trace
        # crash-robust and fork-safe — a forked GA worker inherits no
        # pending bytes it could re-flush into the shared description.
        self._fh.flush()
        self.events_written += 1

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def begin(self, name: str, attrs: Optional[dict] = None) -> Span:
        """Open a span nested under the current innermost span."""
        span = Span(id=self._next_id, name=name, t0=self._now())
        self._next_id += 1
        event = {
            "ev": "begin",
            "id": span.id,
            "parent": self._stack[-1].id if self._stack else None,
            "depth": len(self._stack),
            "name": name,
            "t": round(span.t0, 6),
        }
        if attrs:
            event["attrs"] = attrs
        self._emit(event)
        self._stack.append(span)
        return span

    def end(
        self,
        span: Span,
        peak_rss_kb: Optional[float] = None,
        ok: bool = True,
    ) -> float:
        """Close ``span`` (and any spans erroneously left open inside it).

        Returns the span's duration in seconds.
        """
        while self._stack:
            top = self._stack.pop()
            t = self._now()
            event = {
                "ev": "end",
                "id": top.id,
                "name": top.name,
                "t": round(t, 6),
                "dur_s": round(t - top.t0, 6),
                "ok": ok if top.id == span.id else False,
            }
            if peak_rss_kb is not None and top.id == span.id:
                event["peak_rss_kb"] = peak_rss_kb
            self._emit(event)
            if top.id == span.id:
                return t - top.t0
        return 0.0

    def point(self, name: str, attrs: Optional[dict] = None) -> None:
        """Record an instantaneous event under the current span."""
        event = {
            "ev": "point",
            "parent": self._stack[-1].id if self._stack else None,
            "depth": len(self._stack),
            "name": name,
            "t": round(self._now(), 6),
        }
        if attrs:
            event["attrs"] = attrs
        self._emit(event)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        """Force-close open spans and release the sink (if we opened it)."""
        while self._stack:
            top = self._stack[-1]
            self.end(top, ok=False)
        self.flush()
        if self._owns_fh:
            self._fh.close()


def read_trace(source: Union[str, Path, IO[str]]) -> List[dict]:
    """Parse a JSONL trace back into a list of event dicts."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]
    if isinstance(source, io.StringIO):
        source.seek(0)
    return [json.loads(line) for line in source if line.strip()]
