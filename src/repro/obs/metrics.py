"""Metric primitives: counters, gauges, histograms, and their registry.

The registry is deliberately a plain data structure with no global state
and no enable/disable gate — instrumented *call sites* are gated (see
:mod:`repro.obs`), but anyone may always construct a :class:`Metrics`
and record into it directly (the benchmarks do, so CI can archive a
machine-readable perf snapshot even with tracing off).

All three instruments share the registry namespace; re-registering a name
with a different instrument kind raises.  Snapshots are JSON-serializable
dicts so they can be diffed across CI runs.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "Metrics"]

#: Histogram sample cap: beyond this the reservoir decimates (keeps every
#: other sample and doubles its stride) so memory stays bounded while the
#: retained samples remain spread over the whole observation stream.
_RESERVOIR_CAP = 4096


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self._value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A point-in-time value (last-write-wins, with max/min helpers)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (peak-RSS style high-water mark)."""
        v = float(value)
        if self._value is None or v > self._value:
            self._value = v

    def set_min(self, value: float) -> None:
        """Keep the running minimum."""
        v = float(value)
        if self._value is None or v < self._value:
            self._value = v

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Streaming distribution: exact moments + a decimating reservoir.

    Count, sum, min, max, and the sum of squares are exact over every
    observation; percentiles come from a bounded sample (every value until
    :data:`_RESERVOIR_CAP`, then a stride-doubling decimation), which keeps
    memory O(1) per metric while staying deterministic — no RNG, so two
    identical runs produce identical snapshots.
    """

    __slots__ = ("name", "count", "total", "sq_total", "min", "max",
                 "_sample", "_stride", "_skip")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sq_total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sample: List[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.sq_total += v * v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        # deterministic decimating reservoir
        if self._skip:
            self._skip -= 1
            return
        self._sample.append(v)
        self._skip = self._stride - 1
        if len(self._sample) >= _RESERVOIR_CAP:
            self._sample = self._sample[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.sq_total / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``q`` in [0, 100]) of the sample."""
        if not self._sample:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        s = sorted(self._sample)
        pos = (len(s) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(s) - 1)
        frac = pos - lo
        return s[lo] * (1.0 - frac) + s[hi] * frac

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "stddev": self.stddev,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


Instrument = Union[Counter, Gauge, Histogram]


class Metrics:
    """A named registry of counters, gauges, and histograms.

    Get-or-create accessors are idempotent per kind::

        m = Metrics()
        m.counter("flow.evals").inc()
        m.histogram("flow.sta.wall_s").observe(0.12)
        m.gauge("route.overflows").set(3)
        m.snapshot()  # JSON-serializable {name: {...}} dict
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = cls(name)
                    self._instruments[name] = inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, "
                f"not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every registered instrument."""
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> Dict[str, dict]:
        """Name → serialized instrument state, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge_snapshot(self, other: Dict[str, dict]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters add, gauges keep the max, histograms fold in the summary
        moments (the reservoir only absorbs min/max/mean so percentiles
        stay approximate after a merge).
        """
        for name, snap in other.items():
            kind = snap.get("type")
            if kind == "counter":
                self.counter(name).inc(int(snap["value"]))
            elif kind == "gauge":
                if snap["value"] is not None:
                    self.gauge(name).set_max(snap["value"])
            elif kind == "histogram":
                h = self.histogram(name)
                n = int(snap["count"])
                if n <= 0:
                    continue
                h.count += n
                h.total += snap["sum"]
                h.sq_total += (
                    snap["stddev"] ** 2 + snap["mean"] ** 2
                ) * n
                for probe in (snap["min"], snap["mean"], snap["max"]):
                    if probe is None:
                        continue
                    if h.min is None or probe < h.min:
                        h.min = probe
                    if h.max is None or probe > h.max:
                        h.max = probe
                    h._sample.append(probe)
            else:
                raise ValueError(f"unknown instrument type {kind!r} for {name!r}")
