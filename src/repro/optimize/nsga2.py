"""NSGA-II primitives (Deb et al., 2002) with constraint domination.

Generic over genome type: an :class:`Individual` carries its genome, its
objective vector (all objectives minimized), and an aggregate constraint
violation (0 = feasible).  Selection uses Deb's constrained-domination
rule — a feasible solution dominates any infeasible one; among infeasible
ones, smaller violation wins — followed by fast non-dominated sorting and
crowding-distance truncation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.errors import OptimizationError


@dataclass
class Individual:
    """One evaluated point of the search.

    Attributes:
        genome: The decoded configuration (any hashable-ish payload).
        objectives: Objective vector, every component minimized.
        violation: Aggregate constraint violation; 0 when feasible.
        payload: Optional evaluation artifact (e.g. a FlowResult).
    """

    genome: Any
    objectives: Tuple[float, ...]
    violation: float = 0.0
    payload: Any = None

    # Filled by the sorter:
    rank: int = field(default=-1, compare=False)
    crowding: float = field(default=0.0, compare=False)

    @property
    def feasible(self) -> bool:
        """Whether all hard constraints hold."""
        return self.violation <= 0.0


def dominates(a: Individual, b: Individual) -> bool:
    """Deb's constrained-domination: does ``a`` dominate ``b``?"""
    if a.feasible and not b.feasible:
        return True
    if not a.feasible and b.feasible:
        return False
    if not a.feasible and not b.feasible:
        return a.violation < b.violation
    if len(a.objectives) != len(b.objectives):
        raise OptimizationError("objective arity mismatch")
    not_worse = all(x <= y for x, y in zip(a.objectives, b.objectives))
    strictly_better = any(x < y for x, y in zip(a.objectives, b.objectives))
    return not_worse and strictly_better


def fast_non_dominated_sort(population: Sequence[Individual]) -> List[List[Individual]]:
    """Partition the population into non-domination fronts (rank 0 first).

    Assigns ``rank`` on every individual as a side effect.
    """
    n = len(population)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(population[i], population[j]):
                dominated_by[i].append(j)
            elif dominates(population[j], population[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            population[i].rank = 0
            fronts[0].append(i)
    k = 0
    while fronts[k]:
        nxt: List[int] = []
        for i in fronts[k]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    population[j].rank = k + 1
                    nxt.append(j)
        fronts.append(nxt)
        k += 1
    return [[population[i] for i in front] for front in fronts if front]


def crowding_distance(front: Sequence[Individual]) -> None:
    """Assign crowding distances within one front (in place)."""
    n = len(front)
    if n == 0:
        return
    for ind in front:
        ind.crowding = 0.0
    m = len(front[0].objectives)
    for k in range(m):
        ordered = sorted(front, key=lambda ind: ind.objectives[k])
        lo = ordered[0].objectives[k]
        hi = ordered[-1].objectives[k]
        ordered[0].crowding = float("inf")
        ordered[-1].crowding = float("inf")
        if hi - lo <= 0:
            continue
        for idx in range(1, n - 1):
            gap = ordered[idx + 1].objectives[k] - ordered[idx - 1].objectives[k]
            ordered[idx].crowding += gap / (hi - lo)


def crowded_less(a: Individual, b: Individual) -> bool:
    """NSGA-II's crowded-comparison operator: is ``a`` preferred?"""
    if a.rank != b.rank:
        return a.rank < b.rank
    return a.crowding > b.crowding


def nsga2_select(
    population: Sequence[Individual], k: int
) -> List[Individual]:
    """Environmental selection: the best ``k`` by rank then crowding."""
    fronts = fast_non_dominated_sort(population)
    selected: List[Individual] = []
    for front in fronts:
        crowding_distance(front)
        if len(selected) + len(front) <= k:
            selected.extend(front)
        else:
            remaining = k - len(selected)
            front_sorted = sorted(front, key=lambda i: -i.crowding)
            selected.extend(front_sorted[:remaining])
            break
    return selected


def tournament(
    population: Sequence[Individual], rng: np.random.Generator
) -> Individual:
    """Binary tournament under the crowded-comparison operator."""
    i, j = rng.integers(len(population)), rng.integers(len(population))
    a, b = population[int(i)], population[int(j)]
    return a if crowded_less(a, b) else b


@dataclass(frozen=True)
class NSGA2Config:
    """Hyper-parameters of the NSGA-II loop.

    Attributes:
        population_size: µ (also the offspring count λ).
        generations: Maximum generations.
        crossover_rate: Probability a pair undergoes crossover.
        mutation_rate: Per-gene mutation probability (None = 1/genes).
        stall_generations: Stop early after this many generations without
            hypervolume-proxy improvement (the paper's convergence test:
            "does not reproduce offsprings with pronounced improvements").
        seed: RNG seed.
    """

    population_size: int = 16
    generations: int = 8
    crossover_rate: float = 0.9
    mutation_rate: float = None
    stall_generations: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise OptimizationError("population must be >= 4")
        if self.generations < 1:
            raise OptimizationError("generations must be >= 1")
