"""Single-objective GA baseline (ablation of the multi-objective model).

Optimizes a fixed weighted sum ``security + w·(−TNS)`` under the same
hard constraints.  Used by the ablation benchmark to show what the
NSGA-II trade-off exploration buys over a scalarized search: one run of
this GA yields a single compromise point instead of a front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.flow import GDSIIGuard
from repro.core.params import FlowConfig, ParameterSpace
from repro.optimize.nsga2 import NSGA2Config


@dataclass
class ScalarResult:
    """Outcome of the scalarized GA."""

    best_config: FlowConfig
    best_fitness: float
    best_objectives: Tuple[float, float]
    evaluations: int


class SingleObjectiveGA:
    """Elitist GA over the flow space with a weighted-sum fitness."""

    def __init__(
        self,
        guard: GDSIIGuard,
        space: Optional[ParameterSpace] = None,
        config: NSGA2Config = NSGA2Config(),
        timing_weight: float = 1.0,
        infeasible_penalty: float = 100.0,
    ) -> None:
        self.guard = guard
        self.space = space or ParameterSpace(
            guard.baseline.technology.num_layers
        )
        self.config = config
        self.timing_weight = timing_weight
        self.infeasible_penalty = infeasible_penalty
        self._cache = {}
        self.evaluations = 0

    def _fitness(self, config: FlowConfig) -> Tuple[float, Tuple[float, float]]:
        key = config.canonical()
        if key in self._cache:
            return self._cache[key]
        result = self.guard.run(config)
        self.evaluations += 1
        violation = result.constraint_violation(
            n_drc=self.guard.n_drc,
            beta_power=self.guard.beta_power,
            base_power=self.guard.baseline_power,
        )
        fitness = (
            result.score
            + self.timing_weight * (-result.tns)
            + self.infeasible_penalty * violation
        )
        value = (fitness, result.objectives)
        self._cache[key] = value
        return value

    def run(self) -> ScalarResult:
        """Run the GA; returns the best configuration found."""
        rng = np.random.default_rng(self.config.seed)
        pop: List[FlowConfig] = [self.space.default()]
        while len(pop) < self.config.population_size:
            pop.append(self.space.random(rng))
        scored = [(self._fitness(c)[0], c) for c in pop]
        scored.sort(key=lambda t: t[0])
        for _ in range(self.config.generations):
            elite = [c for _, c in scored[: max(2, len(scored) // 4)]]
            children: List[FlowConfig] = list(elite)
            while len(children) < self.config.population_size:
                i = int(rng.integers(len(elite)))
                j = int(rng.integers(len(elite)))
                c1, c2 = self.space.crossover(elite[i], elite[j], rng)
                children.append(self.space.mutate(c1, rng))
                if len(children) < self.config.population_size:
                    children.append(self.space.mutate(c2, rng))
            scored = [(self._fitness(c)[0], c) for c in children]
            scored.sort(key=lambda t: t[0])
        best_fit, best_cfg = scored[0]
        return ScalarResult(
            best_config=best_cfg,
            best_fitness=best_fit,
            best_objectives=self._fitness(best_cfg)[1],
            evaluations=self.evaluations,
        )
