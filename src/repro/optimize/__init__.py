"""Multi-objective flow-parameter optimization (NSGA-II + explorer)."""

from repro.optimize.nsga2 import (
    Individual,
    NSGA2Config,
    crowding_distance,
    fast_non_dominated_sort,
    nsga2_select,
)
from repro.optimize.ga import SingleObjectiveGA
from repro.optimize.explorer import ExplorationResult, ParetoExplorer

__all__ = [
    "Individual",
    "NSGA2Config",
    "crowding_distance",
    "fast_non_dominated_sort",
    "nsga2_select",
    "SingleObjectiveGA",
    "ExplorationResult",
    "ParetoExplorer",
]
