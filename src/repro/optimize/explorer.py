"""The GDSII-Guard parameter-space explorer (Fig. 2's outer loop).

Wraps the :class:`~repro.core.flow.GDSIIGuard` flow in an NSGA-II search
over the Table-I space: chromosomes are :class:`FlowConfig` vectors, the
objectives are ``(Security(L_opt), −TNS(L_opt))`` (both minimized), and
the DRC/power limits enter as Deb-style constraint violations.

Evaluation supports process-level parallelism via a supervised worker
pool (:mod:`repro.resilience.supervisor` — per-evaluation timeouts,
crash isolation, bounded retry, degradation to serial) and memoizes
configurations so the GA never pays for a duplicate chromosome.

Long campaigns are crash-safe: give the explorer a ``checkpoint_dir``
and every generation boundary atomically persists the full loop state
(population, history, RNG stream, evaluation cache, counters); with
``resume=True`` a restarted run continues mid-campaign and produces a
final Pareto front bitwise identical to the uninterrupted run (see
:mod:`repro.resilience.checkpoint` for the determinism argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.flow import FlowResult, GDSIIGuard
from repro.core.params import FlowConfig, ParameterSpace
from repro.optimize.nsga2 import (
    Individual,
    NSGA2Config,
    fast_non_dominated_sort,
    nsga2_select,
    tournament,
)
from repro.resilience import faults
from repro.resilience.checkpoint import (
    CheckpointManager,
    ExplorationCheckpoint,
)
from repro.resilience.supervisor import (  # noqa: F401 - re-exported
    EvalTask,
    ResilienceState,
    SupervisionConfig,
    TaskSupervisor,
    _evaluate_config,
    _evaluate_config_traced,
    _init_worker,
)
from repro.errors import CheckpointError, ExplorationCancelled


@dataclass
class ExplorationResult:
    """Everything the explorer produced.

    Attributes:
        population: Final population (evaluated individuals).
        pareto_front: Feasible rank-0 individuals of the final population.
        history: Per-generation snapshots of (objectives, violation) for
            every individual evaluated that generation — the scatter data
            behind the paper's Fig. 5.
        evaluations: Total flow evaluations run (cache misses).
        cache_requests: Total configuration lookups the GA issued.
        cache_hits: Lookups answered by the memo table (duplicate
            chromosomes that never paid for a flow evaluation).
        resumed_from: Generation the run was resumed from (None when the
            run started fresh).
        resilience: Supervision counters accumulated over the run.
    """

    population: List[Individual]
    pareto_front: List[Individual]
    history: List[List[Tuple[Tuple[float, float], float]]]
    evaluations: int
    cache_requests: int = 0
    cache_hits: int = 0
    resumed_from: Optional[int] = None
    resilience: Optional[ResilienceState] = None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lookups served from the memo table (0 when none)."""
        if self.cache_requests <= 0:
            return 0.0
        return self.cache_hits / self.cache_requests

    def pareto_configs(self) -> List[FlowConfig]:
        """The Pareto-optimal parameter vectors."""
        return [ind.genome for ind in self.pareto_front]

    def best_security(self) -> Optional[Individual]:
        """The feasible individual with the lowest security score."""
        feas = [i for i in self.population if i.feasible]
        if not feas:
            return None
        return min(feas, key=lambda i: i.objectives[0])

    def knee_point(self) -> Optional[Individual]:
        """A balanced Pareto pick: minimal normalized L2 to the ideal."""
        front = self.pareto_front or [i for i in self.population if i.feasible]
        if not front:
            return None
        objs = np.array([i.objectives for i in front], dtype=float)
        lo = objs.min(axis=0)
        hi = objs.max(axis=0)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        norm = (objs - lo) / span
        dist = (norm**2).sum(axis=1)
        return front[int(np.argmin(dist))]


class ParetoExplorer:
    """NSGA-II exploration of one design's flow parameter space."""

    def __init__(
        self,
        guard: GDSIIGuard,
        space: Optional[ParameterSpace] = None,
        config: NSGA2Config = NSGA2Config(),
        processes: int = 0,
        incremental: Optional[bool] = None,
        checkpoint_dir: Union[str, Path, None] = None,
        resume: bool = False,
        supervision: Optional[SupervisionConfig] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        on_generation: Optional[
            Callable[[int, List[Individual]], None]
        ] = None,
    ) -> None:
        """
        Args:
            guard: The flow bound to a baseline design.
            space: Parameter space; defaults to the guard's layer count.
            config: GA hyper-parameters.
            processes: Worker processes for population evaluation
                (0 = inline sequential evaluation).
            incremental: Override the guard's evaluation mode — ``True``
                delta-evaluates the GA inner loop, ``False`` forces the
                full recompute (the correctness oracle); ``None`` keeps
                the guard's current setting.  Inherited by forked workers
                (each accrues its own per-operator incremental caches).
            checkpoint_dir: Run directory for per-generation checkpoints
                (``None`` disables checkpointing).
            resume: Continue from ``checkpoint_dir``'s checkpoint if one
                exists (a fresh run starts when the directory is empty).
                Raises :class:`CheckpointError` if the checkpoint is
                corrupt, version-incompatible, or was written with
                different GA settings.
            supervision: Worker-supervision knobs (timeouts, retries,
                degradation thresholds); defaults are production-safe.
            should_stop: Cooperative-cancellation probe, polled at every
                generation boundary *after* that generation's checkpoint
                is written; returning ``True`` raises
                :class:`~repro.errors.ExplorationCancelled` so callers
                (the serving layer) can hand the checkpoint off to a
                later resume.
            on_generation: Progress hook called with ``(generation,
                selected_population)`` after each generation's selection
                (the population carries rank/crowding, so rank-0
                feasible members are the Pareto-front-so-far).  Must not
                mutate the individuals.
        """
        self.guard = guard
        if incremental is not None:
            guard.incremental = incremental
        self.space = space or ParameterSpace(
            guard.baseline.technology.num_layers
        )
        self.config = config
        self.processes = processes
        self.supervision = supervision or SupervisionConfig()
        self.resilience = ResilienceState()
        self.checkpoint_manager = (
            CheckpointManager(checkpoint_dir)
            if checkpoint_dir is not None
            else None
        )
        self.resume = resume
        self.should_stop = should_stop
        self.on_generation = on_generation
        self.resumed_from: Optional[int] = None
        self._cache: Dict[tuple, Tuple[tuple, float]] = {}
        self.evaluations = 0
        self.cache_requests = 0
        self.cache_hits = 0

    @property
    def cache_hit_rate(self) -> float:
        """Memoization hit rate over every lookup issued so far."""
        if self.cache_requests <= 0:
            return 0.0
        return self.cache_hits / self.cache_requests

    # ------------------------------------------------------------------ #

    def _cache_key(self, config: FlowConfig) -> tuple:
        c = config.canonical()
        return (c.op_select, c.lda_n, c.lda_n_iter, c.rws_scales)

    def _evaluate_population(
        self, configs: Sequence[FlowConfig], generation: int = 0
    ) -> List[Individual]:
        """Evaluate configurations (supervised-parallel, memoized).

        ``generation`` is the fault-injection / supervision coordinate:
        task ``i`` of the batch is addressed as ``(generation, i)`` where
        ``i`` indexes the deduplicated cache-miss batch.
        """
        missing = []
        seen = set()
        hits = 0
        for cfg in configs:
            key = self._cache_key(cfg)
            if key in self._cache:
                hits += 1
            elif key not in seen:
                missing.append(cfg)
                seen.add(key)
        self.cache_requests += len(configs)
        self.cache_hits += hits
        if missing:
            workers = min(self.processes, len(missing)) if self.processes else 0
            with obs.timed(
                "explorer.eval_batch", size=len(missing), workers=workers
            ):
                tasks = [
                    EvalTask(
                        index=i,
                        config=cfg,
                        generation=generation,
                        individual=i,
                    )
                    for i, cfg in enumerate(missing)
                ]
                supervisor = TaskSupervisor(
                    self.guard,
                    workers=workers,
                    config=self.supervision,
                    state=self.resilience,
                )
                results = supervisor.run(tasks)
            for cfg, objectives, violation in results:
                self._cache[self._cache_key(cfg)] = (objectives, violation)
            self.evaluations += len(missing)
            if obs.is_enabled():
                obs.count("explorer.evaluations", len(missing))
                if self.processes:
                    # Fraction of the configured pool this batch kept busy
                    # (duplicate pruning shrinks batches below pool size).
                    obs.observe(
                        "explorer.worker_utilization",
                        len(missing)
                        / (self.processes * max(
                            1, -(-len(missing) // self.processes)
                        )),
                    )
        if obs.is_enabled():
            obs.count("explorer.cache_requests", len(configs))
            obs.count("explorer.cache_hits", hits)
        individuals = []
        for cfg in configs:
            objectives, violation = self._cache[self._cache_key(cfg)]
            individuals.append(
                Individual(genome=cfg, objectives=objectives, violation=violation)
            )
        return individuals

    def _seeded_initial_population(
        self, rng: np.random.Generator
    ) -> List[FlowConfig]:
        """Random initial population seeded with the two pure operators."""
        n = self.config.population_size
        pop = [self.space.default()]
        lda_seed = FlowConfig(
            op_select="LDA",
            lda_n=16,
            lda_n_iter=2,
            rws_scales=tuple([1.0] * self.space.num_layers),
        )
        pop.append(lda_seed)
        while len(pop) < n:
            pop.append(self.space.random(rng))
        return pop[:n]

    # ------------------------------------------------------------------ #
    # checkpoint / resume
    # ------------------------------------------------------------------ #

    def _nsga2_identity(self) -> dict:
        c = self.config
        return {
            "population_size": c.population_size,
            "generations": c.generations,
            "crossover_rate": c.crossover_rate,
            "mutation_rate": c.mutation_rate,
            "stall_generations": c.stall_generations,
            "seed": c.seed,
        }

    def _write_checkpoint(
        self,
        generation: int,
        population: List[Individual],
        history: list,
        rng: np.random.Generator,
        stall: int,
        best_proxy: float,
    ) -> None:
        if self.checkpoint_manager is None:
            return
        ckpt = ExplorationCheckpoint(
            generation=generation,
            population=population,
            history=history,
            rng_state=rng.bit_generator.state,
            eval_cache=self._cache,
            evaluations=self.evaluations,
            cache_requests=self.cache_requests,
            cache_hits=self.cache_hits,
            stall=stall,
            best_proxy=best_proxy,
            nsga2=self._nsga2_identity(),
            num_layers=self.space.num_layers,
            obs_snapshot=(
                obs.get_metrics().snapshot() if obs.is_enabled() else None
            ),
        )
        with obs.timed("explorer.checkpoint", generation=generation):
            ckpt.save(self.checkpoint_manager)

    def _load_resume_state(self) -> Optional[ExplorationCheckpoint]:
        if not (self.resume and self.checkpoint_manager is not None):
            return None
        ckpt = ExplorationCheckpoint.load(self.checkpoint_manager)
        if ckpt is None:
            return None
        mine = self._nsga2_identity()
        if ckpt.nsga2 != mine or ckpt.num_layers != self.space.num_layers:
            diffs = sorted(
                k for k in set(mine) | set(ckpt.nsga2)
                if mine.get(k) != ckpt.nsga2.get(k)
            )
            raise CheckpointError(
                f"checkpoint {self.checkpoint_manager.path} was written "
                f"with different settings (differing: "
                f"{', '.join(diffs) or 'num_layers'}); rerun with the "
                f"original GA parameters or start a fresh run directory"
            )
        return ckpt

    def _restore(self, ckpt: ExplorationCheckpoint, rng: np.random.Generator):
        rng.bit_generator.state = ckpt.rng_state
        self._cache.update(ckpt.eval_cache)
        self.evaluations = ckpt.evaluations
        self.cache_requests = ckpt.cache_requests
        self.cache_hits = ckpt.cache_hits
        self.resumed_from = ckpt.generation
        if (
            ckpt.obs_snapshot
            and obs.is_enabled()
            and not obs.get_metrics().names()
        ):
            # a fresh process resuming a profiled run: fold the pre-crash
            # counters back in so profile tables cover the whole campaign
            obs.get_metrics().merge_snapshot(ckpt.obs_snapshot)
        return ckpt.population, ckpt.history, ckpt.stall, ckpt.best_proxy

    # ------------------------------------------------------------------ #

    def explore(self) -> ExplorationResult:
        """Run the NSGA-II loop; returns the exploration result."""
        rng = np.random.default_rng(self.config.seed)
        history: List[List[Tuple[Tuple[float, float], float]]] = []
        population: Optional[List[Individual]] = None
        stall = 0
        best_proxy = float("inf")
        start_gen = 0

        ckpt = self._load_resume_state()
        if ckpt is not None:
            population, history, stall, best_proxy = self._restore(ckpt, rng)
            start_gen = ckpt.generation

        with obs.timed("explorer.explore"):
            if population is None:
                with obs.timed("explorer.generation", index=0):
                    population = self._evaluate_population(
                        self._seeded_initial_population(rng), generation=0
                    )
                    history.append(
                        [(i.objectives, i.violation) for i in population]
                    )
                    population = nsga2_select(
                        population, self.config.population_size
                    )
                    self._generation_stats(0)
                stall = 0
                best_proxy = self._front_proxy(population)
                if self.on_generation is not None:
                    self.on_generation(0, population)
                self._write_checkpoint(
                    0, population, history, rng, stall, best_proxy
                )
                faults.maybe_interrupt(0)
                if self.should_stop is not None and self.should_stop():
                    raise ExplorationCancelled(0)

            for gen in range(start_gen + 1, self.config.generations + 1):
                if stall >= self.config.stall_generations:
                    break
                with obs.timed("explorer.generation", index=gen):
                    offspring_cfgs: List[FlowConfig] = []
                    while len(offspring_cfgs) < self.config.population_size:
                        p1 = tournament(population, rng)
                        p2 = tournament(population, rng)
                        c1, c2 = p1.genome, p2.genome
                        if rng.random() < self.config.crossover_rate:
                            c1, c2 = self.space.crossover(c1, c2, rng)
                        c1 = self.space.mutate(
                            c1, rng, self.config.mutation_rate
                        )
                        c2 = self.space.mutate(
                            c2, rng, self.config.mutation_rate
                        )
                        offspring_cfgs.extend([c1, c2])
                    offspring = self._evaluate_population(
                        offspring_cfgs[: self.config.population_size],
                        generation=gen,
                    )
                    history.append(
                        [(i.objectives, i.violation) for i in offspring]
                    )
                    population = nsga2_select(
                        list(population) + offspring,
                        self.config.population_size,
                    )
                    self._generation_stats(gen)
                proxy = self._front_proxy(population)
                if proxy >= best_proxy - 1e-9:
                    stall += 1
                else:
                    best_proxy = proxy
                    stall = 0
                if self.on_generation is not None:
                    self.on_generation(gen, population)
                self._write_checkpoint(
                    gen, population, history, rng, stall, best_proxy
                )
                faults.maybe_interrupt(gen)
                if self.should_stop is not None and self.should_stop():
                    raise ExplorationCancelled(gen)

        fronts = fast_non_dominated_sort(population)
        pareto = [i for i in fronts[0] if i.feasible] if fronts else []
        return ExplorationResult(
            population=list(population),
            pareto_front=pareto,
            history=history,
            evaluations=self.evaluations,
            cache_requests=self.cache_requests,
            cache_hits=self.cache_hits,
            resumed_from=self.resumed_from,
            resilience=self.resilience,
        )

    def _generation_stats(self, generation: int) -> None:
        """Emit the per-generation trace annotation (no-op when disabled)."""
        if not obs.is_enabled():
            return
        obs.point(
            "explorer.generation_stats",
            generation=generation,
            evaluations=self.evaluations,
            cache_requests=self.cache_requests,
            cache_hits=self.cache_hits,
            cache_hit_rate=round(self.cache_hit_rate, 4),
        )

    @staticmethod
    def _front_proxy(population: Sequence[Individual]) -> float:
        """Scalar convergence proxy: sum of the feasible ideal point."""
        feas = [i for i in population if i.feasible]
        if not feas:
            return float("inf")
        best0 = min(i.objectives[0] for i in feas)
        best1 = min(i.objectives[1] for i in feas)
        return best0 + best1

    def rerun(self, config: FlowConfig) -> FlowResult:
        """Re-evaluate one configuration to materialize its layout."""
        return self.guard.run(config)
