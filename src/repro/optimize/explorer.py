"""The GDSII-Guard parameter-space explorer (Fig. 2's outer loop).

Wraps the :class:`~repro.core.flow.GDSIIGuard` flow in an NSGA-II search
over the Table-I space: chromosomes are :class:`FlowConfig` vectors, the
objectives are ``(Security(L_opt), −TNS(L_opt))`` (both minimized), and
the DRC/power limits enter as Deb-style constraint violations.

Evaluation supports process-level parallelism via ``multiprocessing``
(the paper's speed-up) and memoizes configurations so the GA never pays
for a duplicate chromosome.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.flow import FlowResult, GDSIIGuard
from repro.core.params import FlowConfig, ParameterSpace
from repro.optimize.nsga2 import (
    Individual,
    NSGA2Config,
    fast_non_dominated_sort,
    nsga2_select,
    tournament,
)

# Module-level slot so a forked worker can reach the guard without pickling
# it through every task (fork shares the parent's memory image).
_WORKER_GUARD: Optional[GDSIIGuard] = None


def _init_worker(guard: GDSIIGuard) -> None:
    global _WORKER_GUARD
    _WORKER_GUARD = guard


def _init_pool_worker(guard: GDSIIGuard) -> None:
    """Pool initializer: set the guard and detach inherited obs state.

    A forked worker shares the parent's trace file description and starts
    with a copy of its registry; :func:`repro.obs.worker_detach` drops both
    so the worker records pure deltas (see `_evaluate_config_traced`).
    """
    _init_worker(guard)
    if obs.is_enabled():
        obs.worker_detach()


def _evaluate_config(config: FlowConfig) -> Tuple[FlowConfig, tuple, float]:
    """Worker-side evaluation returning picklable scalars only."""
    result = _WORKER_GUARD.run(config)
    violation = result.constraint_violation(
        n_drc=_WORKER_GUARD.n_drc,
        beta_power=_WORKER_GUARD.beta_power,
        base_power=_WORKER_GUARD.baseline_power,
    )
    return (config, result.objectives, violation)


def _evaluate_config_traced(config: FlowConfig):
    """Pool task: evaluate plus this task's metrics delta (or ``None``).

    Tasks run serially within a worker, so reset-before / snapshot-after
    brackets exactly one evaluation; the parent folds the deltas into its
    registry with :meth:`Metrics.merge_snapshot`.
    """
    if not obs.is_enabled():
        return _evaluate_config(config), None
    obs.get_metrics().reset()
    result = _evaluate_config(config)
    return result, obs.get_metrics().snapshot()


@dataclass
class ExplorationResult:
    """Everything the explorer produced.

    Attributes:
        population: Final population (evaluated individuals).
        pareto_front: Feasible rank-0 individuals of the final population.
        history: Per-generation snapshots of (objectives, violation) for
            every individual evaluated that generation — the scatter data
            behind the paper's Fig. 5.
        evaluations: Total flow evaluations run (cache misses).
        cache_requests: Total configuration lookups the GA issued.
        cache_hits: Lookups answered by the memo table (duplicate
            chromosomes that never paid for a flow evaluation).
    """

    population: List[Individual]
    pareto_front: List[Individual]
    history: List[List[Tuple[Tuple[float, float], float]]]
    evaluations: int
    cache_requests: int = 0
    cache_hits: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lookups served from the memo table (0 when none)."""
        if self.cache_requests <= 0:
            return 0.0
        return self.cache_hits / self.cache_requests

    def pareto_configs(self) -> List[FlowConfig]:
        """The Pareto-optimal parameter vectors."""
        return [ind.genome for ind in self.pareto_front]

    def best_security(self) -> Optional[Individual]:
        """The feasible individual with the lowest security score."""
        feas = [i for i in self.population if i.feasible]
        if not feas:
            return None
        return min(feas, key=lambda i: i.objectives[0])

    def knee_point(self) -> Optional[Individual]:
        """A balanced Pareto pick: minimal normalized L2 to the ideal."""
        front = self.pareto_front or [i for i in self.population if i.feasible]
        if not front:
            return None
        objs = np.array([i.objectives for i in front], dtype=float)
        lo = objs.min(axis=0)
        hi = objs.max(axis=0)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        norm = (objs - lo) / span
        dist = (norm**2).sum(axis=1)
        return front[int(np.argmin(dist))]


class ParetoExplorer:
    """NSGA-II exploration of one design's flow parameter space."""

    def __init__(
        self,
        guard: GDSIIGuard,
        space: Optional[ParameterSpace] = None,
        config: NSGA2Config = NSGA2Config(),
        processes: int = 0,
        incremental: Optional[bool] = None,
    ) -> None:
        """
        Args:
            guard: The flow bound to a baseline design.
            space: Parameter space; defaults to the guard's layer count.
            config: GA hyper-parameters.
            processes: Worker processes for population evaluation
                (0 = inline sequential evaluation).
            incremental: Override the guard's evaluation mode — ``True``
                delta-evaluates the GA inner loop, ``False`` forces the
                full recompute (the correctness oracle); ``None`` keeps
                the guard's current setting.  Inherited by forked workers
                (each accrues its own per-operator incremental caches).
        """
        self.guard = guard
        if incremental is not None:
            guard.incremental = incremental
        self.space = space or ParameterSpace(
            guard.baseline.technology.num_layers
        )
        self.config = config
        self.processes = processes
        self._cache: Dict[tuple, Tuple[tuple, float]] = {}
        self.evaluations = 0
        self.cache_requests = 0
        self.cache_hits = 0

    @property
    def cache_hit_rate(self) -> float:
        """Memoization hit rate over every lookup issued so far."""
        if self.cache_requests <= 0:
            return 0.0
        return self.cache_hits / self.cache_requests

    # ------------------------------------------------------------------ #

    def _cache_key(self, config: FlowConfig) -> tuple:
        c = config.canonical()
        return (c.op_select, c.lda_n, c.lda_n_iter, c.rws_scales)

    def _evaluate_population(
        self, configs: Sequence[FlowConfig]
    ) -> List[Individual]:
        """Evaluate configurations (parallel, memoized)."""
        missing = []
        seen = set()
        hits = 0
        for cfg in configs:
            key = self._cache_key(cfg)
            if key in self._cache:
                hits += 1
            elif key not in seen:
                missing.append(cfg)
                seen.add(key)
        self.cache_requests += len(configs)
        self.cache_hits += hits
        if missing:
            workers = min(self.processes, len(missing)) if self.processes else 0
            with obs.timed(
                "explorer.eval_batch", size=len(missing), workers=workers
            ):
                if workers > 1:
                    ctx = multiprocessing.get_context("fork")
                    with ctx.Pool(
                        processes=workers,
                        initializer=_init_pool_worker,
                        initargs=(self.guard,),
                    ) as pool:
                        traced = pool.map(_evaluate_config_traced, missing)
                    results = [r for r, _ in traced]
                    if obs.is_enabled():
                        registry = obs.get_metrics()
                        for _, snap in traced:
                            if snap:
                                registry.merge_snapshot(snap)
                else:
                    _init_worker(self.guard)
                    results = [_evaluate_config(c) for c in missing]
            for cfg, objectives, violation in results:
                self._cache[self._cache_key(cfg)] = (objectives, violation)
            self.evaluations += len(missing)
            if obs.is_enabled():
                obs.count("explorer.evaluations", len(missing))
                if self.processes:
                    # Fraction of the configured pool this batch kept busy
                    # (duplicate pruning shrinks batches below pool size).
                    obs.observe(
                        "explorer.worker_utilization",
                        len(missing)
                        / (self.processes * max(
                            1, -(-len(missing) // self.processes)
                        )),
                    )
        if obs.is_enabled():
            obs.count("explorer.cache_requests", len(configs))
            obs.count("explorer.cache_hits", hits)
        individuals = []
        for cfg in configs:
            objectives, violation = self._cache[self._cache_key(cfg)]
            individuals.append(
                Individual(genome=cfg, objectives=objectives, violation=violation)
            )
        return individuals

    def _seeded_initial_population(
        self, rng: np.random.Generator
    ) -> List[FlowConfig]:
        """Random initial population seeded with the two pure operators."""
        n = self.config.population_size
        pop = [self.space.default()]
        lda_seed = FlowConfig(
            op_select="LDA",
            lda_n=16,
            lda_n_iter=2,
            rws_scales=tuple([1.0] * self.space.num_layers),
        )
        pop.append(lda_seed)
        while len(pop) < n:
            pop.append(self.space.random(rng))
        return pop[:n]

    def explore(self) -> ExplorationResult:
        """Run the NSGA-II loop; returns the exploration result."""
        rng = np.random.default_rng(self.config.seed)
        history: List[List[Tuple[Tuple[float, float], float]]] = []

        with obs.timed("explorer.explore"):
            with obs.timed("explorer.generation", index=0):
                population = self._evaluate_population(
                    self._seeded_initial_population(rng)
                )
                history.append(
                    [(i.objectives, i.violation) for i in population]
                )
                population = nsga2_select(
                    population, self.config.population_size
                )
                self._generation_stats(0)

            stall = 0
            best_proxy = self._front_proxy(population)
            for gen in range(1, self.config.generations + 1):
                with obs.timed("explorer.generation", index=gen):
                    offspring_cfgs: List[FlowConfig] = []
                    while len(offspring_cfgs) < self.config.population_size:
                        p1 = tournament(population, rng)
                        p2 = tournament(population, rng)
                        c1, c2 = p1.genome, p2.genome
                        if rng.random() < self.config.crossover_rate:
                            c1, c2 = self.space.crossover(c1, c2, rng)
                        c1 = self.space.mutate(
                            c1, rng, self.config.mutation_rate
                        )
                        c2 = self.space.mutate(
                            c2, rng, self.config.mutation_rate
                        )
                        offspring_cfgs.extend([c1, c2])
                    offspring = self._evaluate_population(
                        offspring_cfgs[: self.config.population_size]
                    )
                    history.append(
                        [(i.objectives, i.violation) for i in offspring]
                    )
                    population = nsga2_select(
                        list(population) + offspring,
                        self.config.population_size,
                    )
                    self._generation_stats(gen)
                proxy = self._front_proxy(population)
                if proxy >= best_proxy - 1e-9:
                    stall += 1
                    if stall >= self.config.stall_generations:
                        break
                else:
                    best_proxy = proxy
                    stall = 0

        fronts = fast_non_dominated_sort(population)
        pareto = [i for i in fronts[0] if i.feasible] if fronts else []
        return ExplorationResult(
            population=list(population),
            pareto_front=pareto,
            history=history,
            evaluations=self.evaluations,
            cache_requests=self.cache_requests,
            cache_hits=self.cache_hits,
        )

    def _generation_stats(self, generation: int) -> None:
        """Emit the per-generation trace annotation (no-op when disabled)."""
        if not obs.is_enabled():
            return
        obs.point(
            "explorer.generation_stats",
            generation=generation,
            evaluations=self.evaluations,
            cache_requests=self.cache_requests,
            cache_hits=self.cache_hits,
            cache_hit_rate=round(self.cache_hit_rate, 4),
        )

    @staticmethod
    def _front_proxy(population: Sequence[Individual]) -> float:
        """Scalar convergence proxy: sum of the feasible ideal point."""
        feas = [i for i in population if i.feasible]
        if not feas:
            return float("inf")
        best0 = min(i.objectives[0] for i in feas)
        best1 = min(i.objectives[1] for i in feas)
        return best0 + best1

    def rerun(self, config: FlowConfig) -> FlowResult:
        """Re-evaluate one configuration to materialize its layout."""
        return self.guard.run(config)
