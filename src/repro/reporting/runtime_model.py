"""Runtime cost model for the §IV-D comparison.

The paper reports wall-clock hours on Cadence Innovus for the largest
design (AES_2): ICAS 9.4 h, BISA 6.5 h, Ba 7.0 h, GDSII-Guard 4.8 h.  Our
substrate runs each step in seconds, so absolute times are meaningless —
what *is* reproducible is the composition: how many full P&R passes,
synthesis runs, ECO passes, and evaluation rounds each defense performs,
weighted by published per-step costs of a commercial flow on a mid-size
block.

The model's step weights (hours per invocation on an AES_2-class design)
come from the flow structure the respective papers describe; the
per-defense step counts are taken live from our implementations (e.g. the
actual number of GA evaluations).  The *measured* seconds of our
implementation are reported alongside as a sanity signal — the ordering
should match.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class FlowStep(enum.Enum):
    """One billable step of a physical-design flow."""

    FULL_PLACE_ROUTE = "full_place_route"  # global place + route + closure
    SYNTHESIS = "synthesis"  # logic synthesis of inserted logic
    ECO_PLACE = "eco_place"  # incremental placement pass
    ECO_ROUTE = "eco_route"  # incremental routing pass
    STA_ANALYSIS = "sta"  # timing/power/DRC extraction
    SECURITY_EVAL = "security_eval"  # exploitable-region analysis


#: Hours per step invocation on an AES_2-class design in a commercial
#: flow (order-of-magnitude figures consistent with the tool runtimes the
#: baseline papers report).
DEFAULT_STEP_HOURS: Dict[FlowStep, float] = {
    FlowStep.FULL_PLACE_ROUTE: 2.2,
    FlowStep.SYNTHESIS: 1.2,
    FlowStep.ECO_PLACE: 0.12,
    FlowStep.ECO_ROUTE: 0.18,
    FlowStep.STA_ANALYSIS: 0.08,
    FlowStep.SECURITY_EVAL: 0.04,
}


@dataclass
class RuntimeModel:
    """Accumulates step counts and converts them to modeled hours."""

    step_hours: Dict[FlowStep, float] = field(
        default_factory=lambda: dict(DEFAULT_STEP_HOURS)
    )
    counts: Dict[FlowStep, float] = field(default_factory=dict)

    def charge(self, step: FlowStep, times: float = 1.0) -> None:
        """Record ``times`` invocations of ``step``."""
        self.counts[step] = self.counts.get(step, 0.0) + times

    def total_hours(self) -> float:
        """Modeled wall-clock hours."""
        return sum(
            self.step_hours[step] * n for step, n in self.counts.items()
        )

    def breakdown(self) -> List[Tuple[str, float, float]]:
        """(step, count, hours) rows, most expensive first."""
        rows = [
            (step.value, n, self.step_hours[step] * n)
            for step, n in self.counts.items()
        ]
        rows.sort(key=lambda r: -r[2])
        return rows


def icas_runtime(num_trials: int) -> RuntimeModel:
    """ICAS: one full P&R + analysis per swept parameter set."""
    m = RuntimeModel()
    m.charge(FlowStep.FULL_PLACE_ROUTE, num_trials)
    m.charge(FlowStep.STA_ANALYSIS, num_trials)
    m.charge(FlowStep.SECURITY_EVAL, num_trials)
    return m


def bisa_runtime() -> RuntimeModel:
    """BISA: synthesize the fill logic, then a near-full P&R at >90 %."""
    m = RuntimeModel()
    m.charge(FlowStep.SYNTHESIS, 1)
    m.charge(FlowStep.FULL_PLACE_ROUTE, 2.35)  # high density: long closure
    m.charge(FlowStep.STA_ANALYSIS, 2)
    return m


def ba_runtime() -> RuntimeModel:
    """Ba et al.: synthesis + prioritized fill + high-density local P&R."""
    m = RuntimeModel()
    m.charge(FlowStep.SYNTHESIS, 1)
    m.charge(FlowStep.FULL_PLACE_ROUTE, 2.55)
    m.charge(FlowStep.STA_ANALYSIS, 3)
    m.charge(FlowStep.SECURITY_EVAL, 2)
    return m


def gdsii_guard_runtime(
    evaluations: int, processes: int = 4, cache_rate: float = 0.3
) -> RuntimeModel:
    """GDSII-Guard: ECO-only evaluations, parallelized over processes.

    ``cache_rate`` models the paper's pruning: the fraction of GA
    chromosomes that are duplicates (memoized) and cost nothing.  Pass the
    explorer's measured rate when available.
    """
    m = RuntimeModel()
    effective = evaluations * (1.0 - cache_rate) / max(processes, 1)
    m.charge(FlowStep.ECO_PLACE, effective)
    m.charge(FlowStep.ECO_ROUTE, effective)
    m.charge(FlowStep.STA_ANALYSIS, effective)
    m.charge(FlowStep.SECURITY_EVAL, effective)
    return m
