"""Render red-team campaign results as an operator table and as JSON.

The table is the human view ``repro attack`` prints; the JSON view is
exactly :meth:`~repro.redteam.campaign.CampaignResult.summary` (the
canonical bitwise-comparable document), so ``--json`` output, service
job results, and golden fixtures are all the same bytes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.reporting.tables import format_table

__all__ = [
    "attack_table",
    "attack_summary_json",
    "hardened_regressions",
]


def _fmt_opt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def attack_table(summary: dict, title: str = "") -> str:
    """The per-(target, spec) campaign table.

    Columns: success count / rate, attempts-to-first-insertion, mean
    exploitable-region size used, and the worst timing / DRC impact a
    successful implant inflicted.
    """
    rows = []
    for r in summary["results"]:
        first = r["first_success_attempt"]
        rows.append(
            [
                r["target"],
                r["spec_id"],
                f"{r['successes']}/{r['attempts']}",
                f"{r['success_rate']:.2f}",
                "-" if first is None else str(first),
                f"{r['mean_region_sites']:.1f}",
                _fmt_opt(r["worst_tns_delta"]),
                "-" if r["max_drc_delta"] is None
                else str(r["max_drc_delta"]),
            ]
        )
    return format_table(
        [
            "target", "spec", "hits", "rate", "first",
            "sites", "dTNS (ns)", "dDRC",
        ],
        rows,
        title=title or (
            f"Attack campaign — grid {summary['grid']['name']!r}, "
            f"{summary['attempts_per_spec']} attempts/spec, "
            f"seed {summary['seed']}"
        ),
    )


def attack_summary_json(summary: dict) -> str:
    """The canonical JSON text (matches ``CampaignResult.to_json``)."""
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


def hardened_regressions(
    summary: dict, baseline: str = "baseline"
) -> List[Tuple[str, str, float, float]]:
    """Specs where a non-baseline target is *easier* to attack.

    Returns ``(target, spec_id, rate, baseline_rate)`` for every grid
    spec on which any hardened/front target shows a strictly higher
    success rate than the baseline — the condition the CI gate
    (``repro attack --gate-hardened``) fails on.  Empty when the
    campaign had no baseline target.
    """
    rates: Dict[str, Dict[str, float]] = {}
    for r in summary["results"]:
        rates.setdefault(r["target"], {})[r["spec_id"]] = r["success_rate"]
    base = rates.get(baseline)
    if base is None:
        return []
    out = []
    for target in summary["targets"]:
        if target == baseline:
            continue
        for spec_id, rate in rates[target].items():
            if rate > base.get(spec_id, 1.0):
                out.append((target, spec_id, rate, base[spec_id]))
    return out
