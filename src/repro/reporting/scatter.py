"""ASCII scatter plots for terminal-rendered figures (Fig. 5)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

Series = Tuple[str, str, Sequence[Tuple[float, float]]]  # label, marker, pts


def ascii_scatter(
    series: Sequence[Series],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled point series on one character grid.

    Args:
        series: (label, marker, points) triples; markers are single chars.
            Later series draw over earlier ones.
        width, height: Plot area in characters.
        x_label, y_label: Axis captions.

    Returns:
        The plot as a multi-line string; ``"(no points)"`` when empty.
    """
    pts = [(x, y) for _, _, ps in series for x, y in ps]
    if not pts:
        return "(no points)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for _, marker, points in series:
        for x, y in points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker[0]

    lines = [f"{y_hi:9.3f} |" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append(" " * 9 + " |" + "".join(grid[r]))
    lines.append(f"{y_lo:9.3f} |" + "".join(grid[-1]))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<.3f} .. {x_hi:.3f}  ({x_label})")
    legend = "   ".join(f"{marker} {label}" for label, marker, _ in series)
    lines.append(" " * 10 + f"y: {y_label}    {legend}")
    return "\n".join(lines)
