"""Consolidated per-design security report (markdown).

Collects everything a security signoff reviewer would ask for into one
document: design summary, floorplan sketch, exploitable-region inventory,
extended coverage metrics, timing/power/DRC status, and the outcome of an
actual Trojan-insertion attempt.
"""

from __future__ import annotations

from typing import List, Optional

from repro.drc.checker import check_drc
from repro.layout.layout import Layout
from repro.power.power import analyze_power
from repro.reporting.layout_view import layout_to_ascii
from repro.route.router import RoutingResult
from repro.security.assets import SecurityAssets
from repro.security.exploitable import find_exploitable_regions
from repro.security.icas_metrics import (
    net_blockage,
    route_distance,
    trigger_space,
)
from repro.security.trojan import attempt_insertion
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAResult


def security_report(
    title: str,
    layout: Layout,
    sta: STAResult,
    assets: SecurityAssets,
    constraints: TimingConstraints,
    routing: Optional[RoutingResult] = None,
) -> str:
    """Build the markdown report for one (baseline or hardened) layout."""
    lines: List[str] = [f"# Security report — {title}", ""]

    lines += [
        "## Design",
        "",
        f"- instances: {layout.netlist.num_instances}",
        f"- core: {layout.num_rows} rows × {layout.sites_per_row} sites "
        f"({layout.core.width:.1f} × {layout.core.height:.1f} µm)",
        f"- utilization: {layout.utilization():.2f}",
        f"- clock period: {constraints.clock_period:.3f} ns",
        f"- security-critical assets: {len(assets)}",
        "",
        "## Floorplan",
        "",
        "```",
        layout_to_ascii(layout, assets=assets, width=64, height=16),
        "```",
        "",
    ]

    report = find_exploitable_regions(layout, sta, assets, routing=routing)
    lines += [
        "## Exploitable regions (Thresh_ER = "
        f"{report.thresh_er})",
        "",
        f"- regions: {report.num_regions}",
        f"- free placement sites: {report.er_sites}",
        f"- free routing tracks: {report.er_tracks:.0f}",
        "",
    ]
    for k, region in enumerate(
        sorted(report.regions, key=lambda r: -r.num_sites)[:8], start=1
    ):
        lo, hi = region.component.bounding_sites()
        rows = region.component.rows()
        lines.append(
            f"  {k}. {region.num_sites} sites, rows {rows[0]}–{rows[-1]}, "
            f"columns {lo}–{hi}, {region.free_tracks:.0f} free tracks"
        )
    if report.regions:
        lines.append("")

    hist = trigger_space(layout)
    lines += [
        "## Coverage metrics",
        "",
        f"- trigger-space runs ≥ 50 sites: {hist.buckets.get('>=50', 0)}",
        f"- trigger-space runs 20–49 sites: {hist.buckets.get('20-49', 0)}",
    ]
    if routing is not None:
        blockage = net_blockage(layout, assets, routing)
        if blockage:
            mean_blockage = sum(blockage.values()) / len(blockage)
            lines.append(
                f"- mean security-net routing blockage: {mean_blockage:.2f}"
            )
        dists = route_distance(layout, assets, report)
        finite = [v for v in dists.values() if v is not None]
        lines.append(
            "- min asset-to-region route distance: "
            + (f"{min(finite):.1f} µm" if finite else "∞ (no regions)")
        )
    lines.append("")

    power = analyze_power(layout, constraints, routing)
    drc = check_drc(layout, routing)
    lines += [
        "## Implementation status",
        "",
        f"- TNS: {sta.tns:.3f} ns (WNS {sta.wns:.3f} ns)",
        f"- power: {power.total:.3f} mW "
        f"(leak {power.leakage:.3f} / int {power.internal:.3f} / "
        f"sw {power.switching:.3f})",
        f"- #DRC: {drc.count}",
        "",
    ]

    attack = attempt_insertion(layout, sta, assets, routing=routing)
    lines += [
        "## Trojan insertion attempt (A2-class)",
        "",
        f"- outcome: {'**BREACHED**' if attack.success else 'held'}",
        f"- detail: {attack.reason}",
        "",
    ]
    return "\n".join(lines)
