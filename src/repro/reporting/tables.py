"""Plain-text table rendering for benchmark outputs."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table.

    Floats are shown with 3 decimals, everything else via ``str``.
    """
    def fmt(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.3f}"
        return str(x)

    cells: List[List[str]] = [[fmt(h) for h in headers]]
    for row in rows:
        cells.append([fmt(c) for c in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for r, row_cells in enumerate(cells):
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row_cells, widths))
        )
        if r == 0:
            lines.append(sep)
    return "\n".join(lines)
