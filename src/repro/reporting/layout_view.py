"""ASCII rendering of a layout — a quick visual check in any terminal.

Downsamples the site grid into a character raster: ``#`` occupied, ``.``
free, ``A`` security-critical asset, ``f`` filler.  Mixed raster cells
show the majority occupant, with assets winning ties (they are what the
eye is looking for).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.layout.layout import Layout


def layout_to_ascii(
    layout: Layout,
    assets: Optional[Iterable[str]] = None,
    width: int = 72,
    height: int = 24,
) -> str:
    """Render the placement as a ``width × height`` character raster."""
    asset_set = set(assets or ())
    netlist = layout.netlist
    width = min(width, layout.sites_per_row)
    height = min(height, layout.num_rows)
    sites_per_col = layout.sites_per_row / width
    rows_per_line = layout.num_rows / height

    lines: List[str] = []
    for line in range(height - 1, -1, -1):
        row_lo = int(line * rows_per_line)
        row_hi = max(int((line + 1) * rows_per_line), row_lo + 1)
        chars = []
        for col in range(width):
            site_lo = int(col * sites_per_col)
            site_hi = max(int((col + 1) * sites_per_col), site_lo + 1)
            occupied = 0
            total = 0
            has_asset = False
            has_filler = False
            for row in range(row_lo, min(row_hi, layout.num_rows)):
                occ = layout.occupancy[row]
                for site in range(site_lo, min(site_hi, occ.row.num_sites)):
                    total += 1
                    p = occ.occupant_at(site)
                    if p is None:
                        continue
                    occupied += 1
                    if p.name in asset_set:
                        has_asset = True
                    elif netlist.instance(p.name).is_filler:
                        has_filler = True
            if has_asset:
                chars.append("A")
            elif total == 0 or occupied * 2 < total:
                chars.append(".")
            elif has_filler:
                chars.append("f")
            else:
                chars.append("#")
        lines.append("".join(chars))
    legend = "A=asset  #=cell  f=filler  .=free   (top row first)"
    return "\n".join(lines) + "\n" + legend
