"""Per-stage profile table from an observability metrics snapshot.

Consumes the JSON-serializable snapshot produced by
:meth:`repro.obs.Metrics.snapshot` and renders the stage breakdown the
paper-style runtime analyses need: wall time (total / mean / p95), call
counts, and peak RSS per instrumented stage, sorted by total time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.reporting.tables import format_table

__all__ = [
    "stage_rows",
    "profile_table",
    "counters_table",
    "write_metrics_json",
]

_WALL_SUFFIX = ".wall_s"


def stage_rows(snapshot: Dict[str, dict]) -> List[dict]:
    """Extract per-stage stats from a metrics snapshot.

    A *stage* is any name with a ``<stage>.wall_s`` histogram (that is,
    anything measured with :class:`repro.obs.timed`).  Returns one dict
    per stage with ``stage``, ``calls``, ``total_s``, ``mean_s``,
    ``p95_s``, ``max_s``, ``peak_rss_kb`` (None when absent), sorted by
    descending total wall time.
    """
    rows = []
    for name, snap in snapshot.items():
        if not name.endswith(_WALL_SUFFIX) or snap.get("type") != "histogram":
            continue
        stage = name[: -len(_WALL_SUFFIX)]
        calls_snap = snapshot.get(f"{stage}.calls", {})
        rss_snap = snapshot.get(f"{stage}.peak_rss_kb", {})
        rows.append(
            {
                "stage": stage,
                "calls": int(calls_snap.get("value", snap["count"])),
                "total_s": snap["sum"],
                "mean_s": snap["mean"],
                "p95_s": snap["p95"],
                "max_s": snap["max"] or 0.0,
                "peak_rss_kb": rss_snap.get("value"),
            }
        )
    rows.sort(key=lambda r: -r["total_s"])
    return rows


def profile_table(
    snapshot: Dict[str, dict], title: str = "Stage profile"
) -> str:
    """Render the per-stage breakdown as an ASCII table."""
    rows = stage_rows(snapshot)
    if not rows:
        return f"{title}: no stages recorded (is observability enabled?)"
    # Stages nest (flow.run contains flow.sta), so percentages are of the
    # largest single stage rather than a meaningless grand sum.
    top = max(r["total_s"] for r in rows)
    table_rows = [
        [
            r["stage"],
            r["calls"],
            f"{r['total_s']:.3f}",
            f"{100.0 * r['total_s'] / top:.1f}%" if top > 0 else "-",
            f"{r['mean_s'] * 1e3:.1f}",
            f"{r['p95_s'] * 1e3:.1f}",
            f"{r['max_s'] * 1e3:.1f}",
            f"{r['peak_rss_kb'] / 1024.0:.1f}"
            if r["peak_rss_kb"] is not None
            else "-",
        ]
        for r in rows
    ]
    return format_table(
        ["stage", "calls", "total s", "% of top", "mean ms", "p95 ms",
         "max ms", "peak RSS MB"],
        table_rows,
        title=title,
    )


def counters_table(
    snapshot: Dict[str, dict],
    prefix: str = "",
    title: str = "Counters",
) -> str:
    """Render plain counters (optionally filtered by name prefix).

    Stage bookkeeping counters (``*.calls`` / ``*.errors``) belong to the
    stage table and are excluded here; what remains are the event
    counters — e.g. the ``resilience.*`` supervision counters or the
    ``flow.incremental.*`` cache statistics.  Returns ``""`` when no
    counter matches, so callers can print conditionally.
    """
    rows = [
        [name, int(snap["value"])]
        for name, snap in snapshot.items()
        if snap.get("type") == "counter"
        and name.startswith(prefix)
        and not name.endswith((".calls", ".errors"))
    ]
    if not rows:
        return ""
    return format_table(["counter", "value"], rows, title=title)


def write_metrics_json(
    snapshot: Dict[str, dict],
    path: Union[str, Path],
    extra: Optional[dict] = None,
) -> Path:
    """Archive a snapshot as JSON (CI's machine-readable perf artifact).

    ``extra`` entries (e.g. design name, git SHA, budget knobs) are stored
    under a ``"meta"`` key beside the ``"metrics"`` payload.
    """
    path = Path(path)
    payload = {"meta": extra or {}, "metrics": snapshot}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
