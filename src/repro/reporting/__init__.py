"""Experiment reporting: ASCII tables, the runtime cost model, profiles."""

from repro.reporting.tables import format_table
from repro.reporting.runtime_model import RuntimeModel, FlowStep
from repro.reporting.profile_report import (
    profile_table,
    stage_rows,
    write_metrics_json,
)

__all__ = [
    "format_table",
    "RuntimeModel",
    "FlowStep",
    "profile_table",
    "stage_rows",
    "write_metrics_json",
]
