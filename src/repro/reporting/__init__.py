"""Experiment reporting: ASCII tables and the runtime cost model."""

from repro.reporting.tables import format_table
from repro.reporting.runtime_model import RuntimeModel, FlowStep

__all__ = ["format_table", "RuntimeModel", "FlowStep"]
