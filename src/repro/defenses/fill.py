"""The functional-filling engine shared by the BISA and Ba defenses.

Fills selected free gaps with functional cells (tamper-evident logic: if
the foundry removes a filler to make room for a Trojan, the
self-authentication chain's signature breaks) and wires them into scan-like
chains: each chain starts at a dedicated ``bisa_in`` port, threads through
the fillers, is pipelined with a flip-flop every ``segment_length`` gates
(so the chains themselves meet timing), and terminates at a ``bisa_out_*``
port.

The original netlist is never touched: the caller passes a *copied*
netlist bound to a cloned layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import DefenseError
from repro.geometry import Interval, Point
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist, PortDirection

#: Functional filler masters in preference order (widest first).
_FILL_MASTERS: Tuple[Tuple[str, int], ...] = (
    ("NAND2_X1", 3),
    ("BUF_X1", 3),
    ("INV_X1", 2),
)
_DFF_WIDTH = 12


@dataclass
class FillReport:
    """What a filling pass did."""

    cells_added: int = 0
    dffs_added: int = 0
    sites_filled: int = 0
    chains: int = 0


def _new_port(
    layout: Layout,
    netlist: Netlist,
    name: str,
    direction: PortDirection,
    net_name: Optional[str] = None,
) -> None:
    """Declare a defense port and park its pad on the bottom edge.

    Input ports get a fresh same-named net; output ports listen on
    ``net_name`` directly.
    """
    netlist.add_port(name, direction)
    if direction is PortDirection.INPUT:
        netlist.add_net(name)
        netlist.connect_port(name, name)
    else:
        if net_name is None:
            raise DefenseError(f"output port {name} needs a net")
        netlist.connect_port(name, net_name)
    core = layout.core
    n_ports = sum(1 for p in netlist.ports if p.name.startswith("bisa"))
    x = (n_ports * 7.3) % max(core.width, 1.0)
    layout.port_positions[name] = Point(x, 0.0)


def fill_free_space(
    layout: Layout,
    region_filter: Optional[Callable[[int, Interval], bool]] = None,
    segment_length: int = 12,
    min_gap: int = 2,
    seed: int = 0,
) -> FillReport:
    """Fill admissible gaps of ``layout`` with chained functional logic.

    Args:
        layout: The layout to mutate; its ``netlist`` must be a private
            copy (this function adds instances, nets, and ports).
        region_filter: Optional predicate ``(row, gap) -> bool``; only
            gaps passing it are filled (Ba's locality restriction).
        segment_length: Combinational gates between pipeline flip-flops.
        min_gap: Smallest gap (sites) worth filling.
        seed: RNG seed for master mixing.

    Returns:
        A :class:`FillReport`.
    """
    netlist = layout.netlist
    rng = np.random.default_rng(seed)
    clock_nets = netlist.clock_nets()
    clock_net = next(iter(clock_nets), None)

    # ---- geometric fill -------------------------------------------------#
    placements: List[Tuple[str, int, int]] = []  # (master, row, start)
    dff_slots: List[Tuple[int, int]] = []
    report = FillReport()
    serial = 0
    for row in range(layout.num_rows):
        for gap in layout.occupancy[row].free_intervals():
            if region_filter is not None and not region_filter(row, gap):
                continue
            cursor = gap.lo
            remaining = len(gap)
            # Reserve an occasional wide slot for a pipeline flip-flop.
            if (
                clock_net is not None
                and remaining >= _DFF_WIDTH + 2
                and rng.random() < 0.25
            ):
                dff_slots.append((row, cursor))
                cursor += _DFF_WIDTH
                remaining -= _DFF_WIDTH
            while remaining >= min_gap:
                for master, width in _FILL_MASTERS:
                    if width <= remaining:
                        placements.append((master, row, cursor))
                        cursor += width
                        remaining -= width
                        break
                else:
                    break

    if not placements:
        return report

    # ---- instantiate and place ------------------------------------------#
    placed: List[Tuple[str, int, int]] = []  # (inst name, row, start)
    for master, row, start in placements:
        serial += 1
        name = f"bisa_f{serial}"
        netlist.add_instance(name, master)
        layout.place(name, row, start)
        placed.append((name, row, start))
        report.cells_added += 1
        report.sites_filled += netlist.instance(name).width_sites
    dffs: List[Tuple[str, int, int]] = []
    for row, start in dff_slots:
        serial += 1
        name = f"bisa_d{serial}"
        netlist.add_instance(name, "DFF_X1")
        layout.place(name, row, start)
        dffs.append((name, row, start))
        report.dffs_added += 1
        report.sites_filled += _DFF_WIDTH

    # ---- wire the self-authentication chains ----------------------------#
    _new_port(layout, netlist, "bisa_in", PortDirection.INPUT)
    # serpentine order: row-major, alternating direction
    placed.sort(key=lambda t: (t[1], t[2] if t[1] % 2 == 0 else -t[2]))
    dff_pool = sorted(dffs, key=lambda t: (t[1], t[2]))

    chain_out = 0
    signal = "bisa_in"
    seg_count = 0
    prev_signal = "bisa_in"
    for name, _, _ in placed:
        inst = netlist.instance(name)
        in_pins = [p.name for p in inst.master.input_pins if not p.is_clock]
        out_pin = inst.master.output_pins[0].name
        out_net = netlist.add_net(f"bisa_n{name}")
        netlist.connect(name, out_pin, out_net.name)
        netlist.connect(name, in_pins[0], signal)
        for extra in in_pins[1:]:
            netlist.connect(name, extra, prev_signal)
        prev_signal = signal
        signal = out_net.name
        seg_count += 1
        if seg_count >= segment_length:
            seg_count = 0
            if dff_pool and clock_net is not None:
                dname, _, _ = dff_pool.pop(0)
                q_net = netlist.add_net(f"bisa_q{dname}")
                netlist.connect(dname, "D", signal)
                netlist.connect(dname, "CK", clock_net)
                netlist.connect(dname, "Q", q_net.name)
                prev_signal = signal
                signal = q_net.name
            else:
                # No pipeline slot left: terminate this chain at a port
                # and start the next one from the chain input.
                chain_out += 1
                _new_port(
                    layout,
                    netlist,
                    f"bisa_out{chain_out}",
                    PortDirection.OUTPUT,
                    net_name=signal,
                )
                signal = "bisa_in"
                prev_signal = "bisa_in"
                report.chains += 1
    # final termination
    if signal != "bisa_in":
        chain_out += 1
        _new_port(
            layout,
            netlist,
            f"bisa_out{chain_out}",
            PortDirection.OUTPUT,
            net_name=signal,
        )
        report.chains += 1

    # Unused reserved DFF slots: wire leftover flops into the chain input
    # so the netlist stays fully connected.
    for dname, _, _ in dff_pool:
        q_net = netlist.add_net(f"bisa_q{dname}")
        netlist.connect(dname, "D", "bisa_in")
        netlist.connect(dname, "CK", clock_net)
        netlist.connect(dname, "Q", q_net.name)
        chain_out += 1
        _new_port(
            layout,
            netlist,
            f"bisa_out{chain_out}",
            PortDirection.OUTPUT,
            net_name=q_net.name,
        )
    return report
