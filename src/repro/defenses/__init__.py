"""Baseline design-time anti-Trojan defenses (comparison targets)."""

from repro.defenses.base import DefenseResult, evaluate_layout
from repro.defenses.icas import icas_defense
from repro.defenses.bisa import bisa_defense
from repro.defenses.ba import ba_defense

__all__ = [
    "DefenseResult",
    "evaluate_layout",
    "icas_defense",
    "bisa_defense",
    "ba_defense",
]
