"""BISA — Built-In Self-Authentication (Xiao & Tehranipoor, HOST 2013).

Fills *every* usable free gap on the layout with functional logic wired
into self-authentication chains.  Near-total coverage (only sub-minimum
slivers remain), at the cost of >90 % local density everywhere: routing
congestion, timing degradation, DRC violations, and the leakage/dynamic
power of thousands of extra gates — the trade-off profile Table II
reports.
"""

from __future__ import annotations

import time

from repro.bench.designs import BuiltDesign
from repro.defenses.base import DefenseResult, evaluate_layout
from repro.defenses.fill import fill_free_space
from repro.layout.layout import Layout
from repro.security.exploitable import DEFAULT_THRESH_ER


def bisa_defense(
    design: BuiltDesign,
    thresh_er: int = DEFAULT_THRESH_ER,
    segment_length: int = 12,
) -> DefenseResult:
    """Apply BISA to a built design and measure the result."""
    t0 = time.perf_counter()
    netlist = design.netlist.copy()
    layout = _rebind(design.layout, netlist)
    fill_free_space(layout, segment_length=segment_length, seed=1)
    layout.validate()
    runtime = time.perf_counter() - t0
    return evaluate_layout(
        "BISA",
        layout,
        design.constraints,
        design.assets,
        thresh_er=thresh_er,
        runtime_s=runtime,
    )


def _rebind(layout: Layout, netlist) -> Layout:
    """Clone a layout onto a (copied) netlist."""
    clone = layout.clone()
    clone.netlist = netlist
    return clone
