"""Ba et al. — locality-prioritized layout filling (ECCTD'15 / ISVLSI'16).

Improves on BISA by filling only the neighborhoods of the
security-critical cells (where Trojan insertion is actually dangerous),
keeping the global density — and thus the PPA overheads — lower.  The
price is discounted coverage: free space outside the protected radius
stays exploitable whenever an asset's slack still reaches it.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.bench.designs import BuiltDesign
from repro.defenses.base import DefenseResult, evaluate_layout
from repro.defenses.bisa import _rebind
from repro.defenses.fill import fill_free_space
from repro.geometry import Interval, Rect
from repro.security.exploitable import DEFAULT_THRESH_ER, exploitable_distance


def ba_defense(
    design: BuiltDesign,
    thresh_er: int = DEFAULT_THRESH_ER,
    radius_scale: float = 0.75,
    segment_length: int = 12,
) -> DefenseResult:
    """Apply Ba et al.'s local filling to a built design.

    Args:
        design: The baseline design.
        thresh_er: Exploitable-region threshold for the evaluation.
        radius_scale: Fraction of each asset's exploitable distance that
            gets filled (Ba et al. protect a bounded neighborhood; 1.0
            would degenerate to BISA-near-assets).
        segment_length: Chain pipeline length.
    """
    t0 = time.perf_counter()
    netlist = design.netlist.copy()
    layout = _rebind(design.layout, netlist)

    distances: Dict[str, float] = {
        a: exploitable_distance(design.layout, design.sta, a) * radius_scale
        for a in design.assets
    }
    asset_rects = [
        (design.layout.cell_rect(a), distances[a])
        for a in design.assets
        if design.layout.is_placed(a)
    ]
    tech = layout.technology

    def near_assets(row: int, gap: Interval) -> bool:
        y = row * tech.row_height
        rect = Rect(
            gap.lo * tech.site_width, y, gap.hi * tech.site_width, y + tech.row_height
        )
        for a_rect, dist in asset_rects:
            if dist > 0 and a_rect.manhattan_distance_to_rect(rect) <= dist:
                return True
        return False

    fill_free_space(
        layout, region_filter=near_assets, segment_length=segment_length, seed=2
    )
    layout.validate()
    runtime = time.perf_counter() - t0
    return evaluate_layout(
        "Ba",
        layout,
        design.constraints,
        design.assets,
        thresh_er=thresh_er,
        runtime_s=runtime,
    )
