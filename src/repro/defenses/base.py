"""Common scaffolding for the baseline defenses.

Every defense takes a built design and produces a :class:`DefenseResult`
with the same metric set the GDSII-Guard flow reports, so Fig. 4 /
Table II rows compare like for like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.drc.checker import check_drc
from repro.layout.layout import Layout
from repro.power.power import analyze_power
from repro.route.router import RoutingResult, global_route
from repro.security.assets import SecurityAssets
from repro.security.exploitable import DEFAULT_THRESH_ER
from repro.security.metrics import SecurityMetrics, measure_security
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAResult, run_sta


@dataclass
class DefenseResult:
    """Metrics of one defended layout.

    Attributes:
        name: Defense name (``"ICAS"``, ``"BISA"``, ``"Ba"``...).
        layout: The defended layout.
        routing: Its routing.
        sta: Its timing analysis.
        security: Raw security metrics.
        tns: Total negative slack (ns).
        power: Total power (mW).
        drc_count: #DRC violations.
        runtime_s: Wall-clock seconds the defense took.
    """

    name: str
    layout: Layout
    routing: RoutingResult
    sta: STAResult
    security: SecurityMetrics
    tns: float
    power: float
    drc_count: int
    runtime_s: float = 0.0


def evaluate_layout(
    name: str,
    layout: Layout,
    constraints: TimingConstraints,
    assets: SecurityAssets,
    thresh_er: int = DEFAULT_THRESH_ER,
    routing: Optional[RoutingResult] = None,
    runtime_s: float = 0.0,
) -> DefenseResult:
    """Route (if needed), time, and measure one defended layout."""
    if routing is None:
        routing = global_route(layout)
    sta = run_sta(layout, constraints, routing=routing)
    security = measure_security(
        layout, sta, assets, routing=routing, thresh_er=thresh_er
    )
    power = analyze_power(layout, constraints, routing)
    drc = check_drc(layout, routing)
    return DefenseResult(
        name=name,
        layout=layout,
        routing=routing,
        sta=sta,
        security=security,
        tns=sta.tns,
        power=power.total,
        drc_count=drc.count,
        runtime_s=runtime_s,
    )
