"""ICAS-style undirected CAD parameter tuning (Trippel et al., S&P 2020).

ICAS estimates a layout's susceptibility to additive Trojans and then
*tunes generic CAD parameters* — core density, slew targets — re-running
the full P&R flow until the metrics improve.  It is security-agnostic: no
step knows where the assets are.  We reproduce it as a sweep over the
global placer's packing knob (tighter packing = higher effective placement
density = fewer scattered gaps), re-placing and re-routing the whole design
per trial and keeping the most secure DRC-clean result — which is also why
ICAS is the slowest defense in the paper's runtime comparison.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.bench.designs import BuiltDesign
from repro.defenses.base import DefenseResult, evaluate_layout
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.security.exploitable import DEFAULT_THRESH_ER
from repro.security.metrics import measure_security, security_score

#: The packing (density) schedule ICAS sweeps, least aggressive first.
DEFAULT_PACKING_SWEEP: Sequence[float] = (0.3, 0.45, 0.6, 0.75)


def icas_defense(
    design: BuiltDesign,
    thresh_er: int = DEFAULT_THRESH_ER,
    packing_sweep: Sequence[float] = DEFAULT_PACKING_SWEEP,
    max_drc: int = 20,
) -> DefenseResult:
    """Apply the ICAS parameter sweep to a built design.

    Each trial re-places the design from scratch into the same core at a
    higher packing, re-routes, and measures; the most secure trial whose
    DRC count stays under ``max_drc`` wins (falling back to the most
    secure overall when none is clean).
    """
    t0 = time.perf_counter()
    spec = design.spec
    baseline_sec = measure_security(
        design.layout,
        design.sta,
        design.assets,
        routing=design.routing,
        thresh_er=thresh_er,
    )
    best: Optional[DefenseResult] = None
    best_clean: Optional[DefenseResult] = None
    for packing in packing_sweep:
        layout = global_place(
            design.netlist,
            design.technology,
            GlobalPlacementSpec(
                target_utilization=spec.target_utilization,
                packing=packing,
                seed=spec.params.seed,
                num_rows=design.layout.num_rows,
                sites_per_row=design.layout.sites_per_row,
                clustered=tuple(design.assets),
            ),
        )
        trial = evaluate_layout(
            "ICAS",
            layout,
            design.constraints,
            design.assets,
            thresh_er=thresh_er,
        )
        score = security_score(trial.security, baseline_sec)
        if best is None or score < security_score(best.security, baseline_sec):
            best = trial
        if trial.drc_count <= max_drc and (
            best_clean is None
            or score < security_score(best_clean.security, baseline_sec)
        ):
            best_clean = trial
    chosen = best_clean or best
    assert chosen is not None  # packing_sweep is never empty
    chosen.runtime_s = time.perf_counter() - t0
    return chosen
