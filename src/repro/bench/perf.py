"""Pinned performance-benchmark suite behind ``repro bench``.

The suite measures the evaluator hot paths end to end on fixed workloads
so wall-clock regressions are caught in CI (``tools/bench_compare.py``
diffs two result files and fails on >15% median regression):

* ``harden_present`` / ``harden_seed`` — one cold (non-incremental)
  GDSII-Guard flow run at the default configuration.
* ``explore_present_full`` — the pinned NSGA-II exploration (PRESENT,
  population 10, 4 generations, seed 9) with incremental evaluation off:
  every individual pays the full ECO-place → route → STA → security
  pipeline.  This case is additionally measured with the scalar reference
  kernels (``REPRO_KERNELS=scalar``) to report the vectorized-kernel
  speedup.
* ``explore_present_incremental`` — the same exploration with the
  incremental engine on.

Every measurement runs in a child process (clean peak-RSS high-water
mark, no warm caches leaking between cases) with ``PYTHONPATH`` pinned
to the repository ``src`` tree and ``REPRO_KERNELS`` set explicitly.
Results land in ``BENCH_<rev>.json``: per case the median/p95 wall-clock
over the repeats, peak RSS, and evaluations per second (counted by the
flow itself via :mod:`repro.obs`).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError

#: Result-file schema version (bump on breaking layout changes).
SCHEMA = 1

#: The pinned exploration workload (overridable only for self-tests).
PERF_DESIGN = "PRESENT"
PERF_POP = int(os.environ.get("REPRO_PERF_POP", "10"))
PERF_GENS = int(os.environ.get("REPRO_PERF_GENS", "4"))
PERF_SEED = 9

#: Median regression threshold shared with ``tools/bench_compare.py``.
DEFAULT_THRESHOLD = 0.15


def _src_dir() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent.parent


# ---------------------------------------------------------------------- #
# case bodies (run inside the child process)
# ---------------------------------------------------------------------- #


def _run_harden(design_name: str) -> int:
    from repro.bench.designs import build_design
    from repro.core.flow import GDSIIGuard
    from repro.core.params import FlowConfig

    d = build_design(design_name)
    guard = GDSIIGuard(
        d.layout,
        d.constraints,
        d.assets,
        baseline_routing=d.routing,
        incremental=False,
    )
    # Same configuration `repro harden <design>` runs by default.
    guard.run(
        FlowConfig(
            op_select="CS",
            lda_n=16,
            lda_n_iter=2,
            rws_scales=tuple([1.0] * d.technology.num_layers),
        )
    )
    return 1


def _run_explore(incremental: bool) -> int:
    from repro.bench.designs import build_design
    from repro.core.flow import GDSIIGuard
    from repro.optimize.explorer import ParetoExplorer
    from repro.optimize.nsga2 import NSGA2Config

    d = build_design(PERF_DESIGN)
    guard = GDSIIGuard(
        d.layout,
        d.constraints,
        d.assets,
        baseline_routing=d.routing,
        incremental=incremental,
    )
    explorer = ParetoExplorer(
        guard,
        config=NSGA2Config(
            population_size=PERF_POP,
            generations=PERF_GENS,
            seed=PERF_SEED,
        ),
    )
    return explorer.explore().evaluations


#: case name → zero-argument body returning the number of evaluations.
CASES: Dict[str, Callable[[], int]] = {
    "harden_present": lambda: _run_harden("PRESENT"),
    "harden_seed": lambda: _run_harden("SEED"),
    "explore_present_full": lambda: _run_explore(incremental=False),
    "explore_present_incremental": lambda: _run_explore(incremental=True),
}

#: The case whose scalar-kernel leg yields the reported speedup.
SPEEDUP_CASE = "explore_present_full"


def _peak_rss_kb() -> float:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_case_inline(case: str) -> Dict[str, float]:
    """Execute one case in this process and return its raw measurements."""
    try:
        body = CASES[case]
    except KeyError:
        raise ReproError(
            f"unknown bench case {case!r}; valid: {', '.join(sorted(CASES))}"
        ) from None
    from repro import obs

    obs.enable()
    try:
        t0 = time.perf_counter()
        evaluations = body()
        wall = time.perf_counter() - t0
    finally:
        obs.disable()
    return {
        "wall_s": wall,
        "peak_rss_kb": _peak_rss_kb(),
        "evaluations": float(evaluations),
    }


# ---------------------------------------------------------------------- #
# parent-side orchestration
# ---------------------------------------------------------------------- #


def _child_env(kernels: str) -> Dict[str, str]:
    env = dict(os.environ)
    src = str(_src_dir())
    prior = env.get("PYTHONPATH", "")
    # Pin the repository src tree first so the child resolves the same
    # code under measurement regardless of the caller's install state.
    env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
    env["REPRO_KERNELS"] = kernels
    return env


def _run_child(case: str, kernels: str) -> Dict[str, float]:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.perf", "--child", case],
        env=_child_env(kernels),
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise ReproError(
            f"bench case {case!r} ({kernels}) failed:\n{proc.stderr[-2000:]}"
        )
    for line in reversed(proc.stdout.splitlines()):
        if line.startswith("{"):
            return json.loads(line)
    raise ReproError(f"bench case {case!r} emitted no measurement")


def _median(values: Sequence[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def _p95(values: Sequence[float]) -> float:
    s = sorted(values)
    return s[min(int(round(0.95 * (len(s) - 1))), len(s) - 1)]


def _aggregate(runs: List[Dict[str, float]], kernels: str) -> Dict[str, object]:
    walls = [r["wall_s"] for r in runs]
    med = _median(walls)
    evals = runs[0]["evaluations"]
    return {
        "kernels": kernels,
        "repeats": len(runs),
        "wall_s": {
            "median": med,
            "p95": _p95(walls),
            "runs": [round(w, 4) for w in walls],
        },
        "peak_rss_kb": max(r["peak_rss_kb"] for r in runs),
        "evaluations": int(evals),
        "evals_per_sec": (evals / med) if med > 0 else 0.0,
    }


@dataclass
class SuiteOptions:
    """Knobs for one ``repro bench`` invocation."""

    quick: bool = False
    repeat: Optional[int] = None
    cases: Optional[List[str]] = None
    with_scalar: bool = True

    def effective_repeat(self) -> int:
        if self.repeat is not None:
            if self.repeat < 1:
                raise ReproError("--repeat must be >= 1")
            return self.repeat
        return 1 if self.quick else 3

    def effective_cases(self) -> List[str]:
        if not self.cases:
            return list(CASES)
        for c in self.cases:
            if c not in CASES:
                raise ReproError(
                    f"unknown bench case {c!r}; "
                    f"valid: {', '.join(sorted(CASES))}"
                )
        return list(self.cases)


def run_suite(
    options: SuiteOptions,
    rev: str = "unknown",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the pinned suite and return the ``BENCH_<rev>.json`` record."""
    say = progress or (lambda msg: None)
    repeat = options.effective_repeat()
    names = options.effective_cases()
    cases: Dict[str, object] = {}
    for case in names:
        runs = []
        for i in range(repeat):
            say(f"{case} [vector] {i + 1}/{repeat} ...")
            runs.append(_run_child(case, "vector"))
        cases[case] = _aggregate(runs, "vector")
    derived: Dict[str, float] = {}
    if options.with_scalar and SPEEDUP_CASE in names:
        runs = []
        for i in range(repeat):
            say(f"{SPEEDUP_CASE} [scalar] {i + 1}/{repeat} ...")
            runs.append(_run_child(SPEEDUP_CASE, "scalar"))
        scalar = _aggregate(runs, "scalar")
        cases[SPEEDUP_CASE + "_scalar"] = scalar
        vec_med = cases[SPEEDUP_CASE]["wall_s"]["median"]  # type: ignore[index]
        sca_med = scalar["wall_s"]["median"]  # type: ignore[index]
        if vec_med > 0:
            derived["vector_speedup_full_eval"] = sca_med / vec_med
    return {
        "schema": SCHEMA,
        "rev": rev,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "mode": "quick" if options.quick else "full",
        "workload": {
            "design": PERF_DESIGN,
            "population": PERF_POP,
            "generations": PERF_GENS,
            "seed": PERF_SEED,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "cases": cases,
        "derived": derived,
    }


def git_rev(repo_dir: Optional[Path] = None) -> str:
    """Short git revision of the repo (``unknown`` outside a checkout)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir or Path.cwd(),
            capture_output=True,
            text=True,
        )
    except OSError:  # pragma: no cover - git missing entirely
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def format_suite_table(record: Dict[str, object]) -> str:
    """Human-readable summary of a bench record."""
    from repro.reporting.tables import format_table

    rows = []
    for name, case in record["cases"].items():  # type: ignore[union-attr]
        wall = case["wall_s"]
        rows.append(
            [
                name,
                case["kernels"],
                f"{wall['median']:.2f}",
                f"{wall['p95']:.2f}",
                f"{case['peak_rss_kb'] / 1024:.0f}",
                f"{case['evals_per_sec']:.2f}",
            ]
        )
    title = f"repro bench — rev {record['rev']} ({record['mode']})"
    table = format_table(
        ["case", "kernels", "median s", "p95 s", "peak RSS MB", "evals/s"],
        rows,
        title=title,
    )
    derived = record.get("derived") or {}
    if "vector_speedup_full_eval" in derived:  # type: ignore[operator]
        speedup = derived["vector_speedup_full_eval"]  # type: ignore[index]
        table += f"\nvector kernel speedup (full eval): {speedup:.2f}x"
    return table


def _child_main(case: str) -> int:
    # Child half of the measurement protocol: one JSON line on stdout,
    # parsed by _run_child in the parent (not user-facing output).
    sys.stdout.write(json.dumps(run_case_inline(case)) + "\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.perf")
    parser.add_argument("--child", metavar="CASE", default=None)
    args = parser.parse_args(argv)
    if args.child is None:
        parser.error("--child CASE required (use `repro bench` as the UI)")
    return _child_main(args.child)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
