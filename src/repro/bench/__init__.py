"""Benchmark suite: synthetic designs standing in for the ISPD-2022 set."""

from repro.bench.generators import GeneratorParams, generate_design
from repro.bench.designs import (
    DESIGN_NAMES,
    DesignSpec,
    design_spec,
    build_design,
    BuiltDesign,
)
from repro.bench.suite import build_suite, baseline_metrics

__all__ = [
    "GeneratorParams",
    "generate_design",
    "DESIGN_NAMES",
    "DesignSpec",
    "design_spec",
    "build_design",
    "BuiltDesign",
    "build_suite",
    "baseline_metrics",
]
