"""Suite-level helpers: build all designs, summarize baseline metrics."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bench.designs import DESIGN_NAMES, BuiltDesign, build_design
from repro.drc.checker import check_drc
from repro.power.power import analyze_power
from repro.security.metrics import SecurityMetrics, measure_security


def build_suite(names: Optional[Iterable[str]] = None) -> Dict[str, BuiltDesign]:
    """Build every requested design (default: the full 12-design suite)."""
    return {name: build_design(name) for name in (names or DESIGN_NAMES)}


def baseline_metrics(design: BuiltDesign, thresh_er: int = 20) -> Dict[str, float]:
    """Baseline (unprotected) metric row for one design.

    Returns a dict with keys ``tns``, ``wns``, ``power``, ``drc``,
    ``er_sites``, ``er_tracks``, ``utilization``, ``cells``.
    """
    power = analyze_power(design.layout, design.constraints, design.routing)
    drc = check_drc(design.layout, design.routing)
    security = measure_security(
        design.layout,
        design.sta,
        design.assets,
        routing=design.routing,
        thresh_er=thresh_er,
    )
    return {
        "tns": design.sta.tns,
        "wns": design.sta.wns,
        "power": power.total,
        "drc": float(drc.count),
        "er_sites": float(security.er_sites),
        "er_tracks": security.er_tracks,
        "utilization": design.layout.utilization(),
        "cells": float(design.netlist.num_instances),
    }


def baseline_security(design: BuiltDesign, thresh_er: int = 20) -> SecurityMetrics:
    """Baseline security metrics of one design (ERsites/ERtracks)."""
    return measure_security(
        design.layout,
        design.sta,
        design.assets,
        routing=design.routing,
        thresh_er=thresh_er,
    )
