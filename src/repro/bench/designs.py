"""The 12-design benchmark suite (stand-ins for the ISPD-2022 set).

Each paper design is reproduced by a synthetic netlist whose *relative*
attributes — size, utilization, and timing tightness — are calibrated from
the paper's own baseline numbers (Table II): AES_1/2/3 are the big, dense,
timing-tight cores; PRESENT/openMSP430_1 are small and timing-loose; CAST
and SEED carry the worst baseline TNS, and so on.  The clock period is
self-calibrated: the design is placed, routed and timed once, then the
period is set to ``period_factor ×`` the zero-slack period, so a
``period_factor`` below 1 yields the paper's negative baseline TNS and one
above 1 yields TNS = 0.

Designs are cached per process: ``build_design("AES_1")`` is expensive the
first time and free afterwards.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bench.generators import GeneratorParams, generate_design
from repro.errors import BenchmarkError
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.route.router import RoutingResult, global_route
from repro.security.assets import SecurityAssets, annotate_key_assets
from repro.tech.library import nangate45_library
from repro.tech.technology import Technology, nangate45_like
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAResult, run_sta


@dataclass(frozen=True)
class DesignSpec:
    """Recipe for one benchmark design.

    Attributes:
        name: Paper design name (``"AES_1"``...).
        params: Netlist generator knobs.
        target_utilization: Baseline placement utilization.
        packing: Baseline gap-scatter packing (see the global placer).
        period_factor: Clock period as a multiple of the measured
            zero-slack period; < 1 makes the design timing-tight.
    """

    name: str
    params: GeneratorParams
    target_utilization: float
    packing: float
    period_factor: float


def _spec(
    name: str,
    n_state: int,
    n_key: int,
    depth: int,
    util: float,
    pf: float,
    style: str = "crypto",
    seed: int = 0,
    packing: float = 0.12,
) -> DesignSpec:
    return DesignSpec(
        name=name,
        params=GeneratorParams(
            n_state=n_state,
            n_key=n_key,
            cone_inputs=5,
            cone_depth=depth,
            n_inputs=max(n_state // 8, 8),
            n_outputs=max(n_state // 8, 8),
            style=style,
            seed=seed if seed else abs(hash(name)) % (2**31),
        ),
        target_utilization=util,
        packing=packing,
        period_factor=pf,
    )


#: The calibrated specifications, one per paper design.  Seeds are fixed
#: explicitly so the suite is reproducible across Python hash seeds.
_SPECS: Dict[str, DesignSpec] = {
    s.name: s
    for s in (
        _spec("AES_1", 140, 56, 10, 0.66, 0.985, seed=101),
        _spec("AES_2", 160, 64, 11, 0.70, 0.975, seed=102),
        _spec("AES_3", 150, 60, 10, 0.68, 0.980, seed=103),
        _spec("Camellia", 60, 24, 6, 0.58, 1.20, seed=104),
        _spec("CAST", 90, 36, 9, 0.62, 0.955, seed=105),
        _spec("MISTY", 72, 32, 7, 0.57, 1.18, seed=106),
        _spec("openMSP430_1", 40, 12, 5, 0.52, 1.25, style="cpu", seed=107),
        _spec("openMSP430_2", 56, 16, 8, 0.60, 0.975, style="cpu", seed=108),
        _spec("PRESENT", 36, 20, 4, 0.55, 1.30, seed=109),
        _spec("SEED", 90, 36, 9, 0.62, 0.955, seed=110),
        _spec("SPARX", 64, 28, 6, 0.56, 1.20, seed=111),
        _spec("TDEA", 56, 24, 6, 0.57, 1.22, seed=112),
    )
}

#: All design names in the paper's table order.
DESIGN_NAMES: Tuple[str, ...] = tuple(_SPECS.keys())


def design_spec(name: str) -> DesignSpec:
    """Look up the spec of one paper design."""
    try:
        return _SPECS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown design {name!r}; choose from {list(_SPECS)}"
        ) from None


@dataclass
class BuiltDesign:
    """A fully prepared baseline design: netlist, layout, routing, timing.

    Attributes mirror the inputs of the GDSII-Guard problem formulation:
    the baseline layout L_base, the asset list, and the timing spec.
    """

    spec: DesignSpec
    netlist: Netlist
    technology: Technology
    layout: Layout
    routing: RoutingResult
    constraints: TimingConstraints
    sta: STAResult
    assets: SecurityAssets

    @property
    def name(self) -> str:
        """Design name."""
        return self.spec.name

    def fresh_layout(self) -> Layout:
        """An independent copy of the baseline layout for an experiment."""
        return self.layout.clone()


@functools.lru_cache(maxsize=None)
def _build_design_cached(name: str) -> BuiltDesign:
    spec = design_spec(name)
    library = nangate45_library()
    technology = nangate45_like(num_layers=10)
    netlist = generate_design(name, library, spec.params)
    assets = annotate_key_assets(netlist)
    # The asset bank (key registers + key-control logic) is placed as a
    # compact 2-D block, the shape placers give tightly-interconnected
    # register banks — and the geometry the ISPD-2022 layouts exhibit.
    layout = global_place(
        netlist,
        technology,
        GlobalPlacementSpec(
            target_utilization=spec.target_utilization,
            packing=spec.packing,
            seed=spec.params.seed,
            clustered=tuple(assets),
        ),
    )
    routing = global_route(layout)

    # Self-calibrate the clock: measure the zero-slack period (with the
    # boundary paths constrained by a realistic external arrival), then
    # apply the spec's tightness factor.
    probe = TimingConstraints(clock_period=1000.0)
    sta0 = run_sta(layout, probe, routing=routing)
    worst_arrival = max((e.arrival for e in sta0.endpoints), default=1.0)
    input_delay = 0.35 * worst_arrival
    probe2 = TimingConstraints(clock_period=1000.0, input_delay=input_delay)
    sta1 = run_sta(layout, probe2, routing=routing)
    worst_arrival = max((e.arrival for e in sta1.endpoints), default=1.0)
    zero_slack_period = worst_arrival + probe.ff_setup
    constraints = TimingConstraints(
        clock_period=zero_slack_period * spec.period_factor,
        input_delay=input_delay,
    )
    sta = run_sta(layout, constraints, routing=routing)
    return BuiltDesign(
        spec=spec,
        netlist=netlist,
        technology=technology,
        layout=layout,
        routing=routing,
        constraints=constraints,
        sta=sta,
        assets=assets,
    )


def build_design(name: str) -> BuiltDesign:
    """Build (or fetch from cache) one baseline benchmark design."""
    return _build_design_cached(name)
