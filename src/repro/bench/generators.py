"""Synthetic netlist generators shaped like the paper's benchmarks.

The ISPD-2022 security-closure benchmarks (crypto cores and
microprocessors with annotated security assets) are not redistributable
here, so these generators build structurally comparable designs:

* a bank of **state registers** updated every cycle through random logic
  cones (the round function / datapath),
* a bank of **key registers** with a key-schedule ring of key-control
  gates (named ``key_*`` / ``kctl_*`` — the security-critical assets),
* boundary ports feeding and observing the datapath, and a clock.

Logic cones are balanced reduction trees over randomly sampled state/key
signals followed by a depth-padding chain, so the critical-path length is
directly controlled by ``cone_depth`` — which is how the per-design timing
tightness of the paper's suite is reproduced.  Everything is driven by a
seeded RNG: the same parameters always produce the identical netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import BenchmarkError
from repro.netlist.netlist import Netlist, PortDirection
from repro.tech.library import CellLibrary

#: Two-input gate masters used inside logic cones, with sampling weights.
_CONE_GATES = (
    ("XOR2_X1", 0.30),
    ("NAND2_X1", 0.20),
    ("NOR2_X1", 0.10),
    ("AND2_X1", 0.15),
    ("OR2_X1", 0.10),
    ("XNOR2_X1", 0.10),
    ("AOI21_X1", 0.05),  # third input tied to another sample
)

#: Gate masters used in the depth-padding chain.
_CHAIN_GATES = ("INV_X1", "BUF_X1", "XOR2_X1")


@dataclass(frozen=True)
class GeneratorParams:
    """Size/shape knobs of :func:`generate_design`.

    Attributes:
        n_state: Number of state (datapath) registers.
        n_key: Number of key registers (the asset bank).
        cone_inputs: Signals sampled into each logic cone's tree.
        cone_depth: Extra chain depth after the tree (critical-path knob).
        n_inputs: Data input ports.
        n_outputs: Data output ports.
        style: ``"crypto"`` (assets in one bank, wide XOR datapath) or
            ``"cpu"`` (assets are a protected sub-bank, more control logic).
        seed: RNG seed.
    """

    n_state: int = 64
    n_key: int = 32
    cone_inputs: int = 5
    cone_depth: int = 6
    n_inputs: int = 16
    n_outputs: int = 16
    style: str = "crypto"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_state < 4 or self.n_key < 4:
            raise BenchmarkError("need at least 4 state and 4 key registers")
        if self.cone_inputs < 2:
            raise BenchmarkError("cone_inputs must be >= 2")
        if self.style not in ("crypto", "cpu"):
            raise BenchmarkError(f"unknown style {self.style!r}")


class _Builder:
    """Incremental netlist builder with unique-name counters."""

    def __init__(self, name: str, library: CellLibrary, rng: np.random.Generator):
        self.netlist = Netlist(name, library)
        self.rng = rng
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def gate(self, master: str, inputs: Sequence[str], prefix: str = "g_") -> str:
        """Instantiate ``master`` fed by ``inputs``; returns the output net."""
        nl = self.netlist
        name = self.fresh(prefix)
        inst = nl.add_instance(name, master)
        out_pin = inst.master.output_pins[0].name
        out_net = nl.add_net(f"n_{name}")
        nl.connect(name, out_pin, out_net.name)
        in_pins = [p.name for p in inst.master.input_pins if not p.is_clock]
        if len(inputs) != len(in_pins):
            raise BenchmarkError(
                f"{master} wants {len(in_pins)} inputs, got {len(inputs)}"
            )
        for pin, net in zip(in_pins, inputs):
            nl.connect(name, pin, net)
        return out_net.name

    def dff(self, name: str, d_net: str, clk_net: str) -> str:
        """Instantiate a named flip-flop; returns its Q net."""
        nl = self.netlist
        nl.add_instance(name, "DFF_X1")
        q_net = nl.add_net(f"n_{name}_q")
        nl.connect(name, "Q", q_net.name)
        nl.connect(name, "D", d_net)
        nl.connect(name, "CK", clk_net)
        return q_net.name

    def pick_gate(self) -> str:
        names = [g for g, _ in _CONE_GATES]
        weights = np.array([w for _, w in _CONE_GATES])
        return str(self.rng.choice(names, p=weights / weights.sum()))


def _cone(builder: _Builder, sources: List[str], depth: int, prefix: str) -> str:
    """Balanced reduction tree over ``sources`` plus a depth chain."""
    rng = builder.rng
    frontier = list(sources)
    while len(frontier) > 1:
        a = frontier.pop(0)
        b = frontier.pop(0)
        master = builder.pick_gate()
        n_in = 3 if master == "AOI21_X1" else 2
        ins = [a, b]
        if n_in == 3:
            ins.append(frontier[0] if frontier else a)
        out = builder.gate(master, ins, prefix=prefix)
        frontier.append(out)
    signal = frontier[0]
    for _ in range(depth):
        master = str(rng.choice(_CHAIN_GATES))
        if master in ("INV_X1", "BUF_X1"):
            signal = builder.gate(master, [signal], prefix=prefix)
        else:
            other = str(rng.choice(sources))
            signal = builder.gate(master, [signal, other], prefix=prefix)
    return signal


def generate_design(
    name: str, library: CellLibrary, params: GeneratorParams
) -> Netlist:
    """Generate one benchmark netlist.

    The result validates (:meth:`~repro.netlist.Netlist.validate`) and
    carries the asset naming convention consumed by
    :func:`repro.security.annotate_key_assets`.
    """
    rng = np.random.default_rng(params.seed)
    b = _Builder(name, library, rng)
    nl = b.netlist

    # --- boundary ------------------------------------------------------- #
    nl.add_port("clk", PortDirection.INPUT, is_clock=True)
    clk = nl.add_net("clk").name
    nl.connect_port("clk", clk)
    input_nets: List[str] = []
    for i in range(params.n_inputs):
        pname = f"pt_{i}"
        nl.add_port(pname, PortDirection.INPUT)
        nl.add_net(pname)
        nl.connect_port(pname, pname)
        input_nets.append(pname)

    # --- registers ------------------------------------------------------ #
    # Cones are built over *named future* Q nets; reserve them first and
    # create the flops after the cones that drive their D pins.
    state_q = [nl.add_net(f"state_q_{i}").name for i in range(params.n_state)]
    key_q = [nl.add_net(f"key_q_{i}").name for i in range(params.n_key)]

    # --- key control / schedule ----------------------------------------- #
    kctl_out: List[str] = []
    n_kctl = max(params.n_key // 4, 2)
    for i in range(n_kctl):
        # key-control gates read a local window of the key register bank
        base_idx = i * params.n_key // n_kctl
        picks = [
            key_q[(base_idx + int(rng.integers(6))) % params.n_key]
            for _ in range(3)
        ]
        t = b.gate("NAND2_X1", picks[:2], prefix="kctl_")
        out = b.gate("XOR2_X1", [t, picks[2]], prefix="kctl_")
        kctl_out.append(out)

    # --- datapath cones --------------------------------------------------#
    pool = state_q + key_q + input_nets
    extra_ctl = params.style == "cpu"

    def sample_pool(center: float) -> str:
        """Locality-biased source sampling (Rent's-rule-like fan-in).

        Most cone inputs come from a tight Gaussian window around the
        cone's own position in the register file; a small fraction are
        medium-range jumps and a sliver are true global picks (the
        diffusion/permutation long wires of a real crypto core).
        """
        u = rng.random()
        if u < 0.04:
            idx = int(rng.integers(len(pool)))  # global diffusion wire
        elif u < 0.18:
            idx = int(rng.normal(center, len(pool) / 4.0))  # mid-range
        else:
            idx = int(rng.normal(center, max(len(pool) / 16.0, 2.0)))
        return pool[idx % len(pool)]

    state_d: List[str] = []
    for i in range(params.n_state):
        k = params.cone_inputs
        center = i * len(pool) / max(params.n_state, 1)
        sources = [sample_pool(center) for _ in range(k)]
        # Low depth jitter: synthesis/timing-driven P&R balances paths into
        # a slack wall, so endpoint depths of a closed design are near-
        # uniform.  (Large jitter would give most assets huge slack and an
        # exploitable distance beyond the core on every design.)
        depth = params.cone_depth + int(rng.integers(0, 2))
        cone_out = _cone(b, sources, depth, prefix="dp_")
        if extra_ctl and i % 3 == 0:
            # cpu style: control-qualified writes through a mux
            sel = kctl_out[i % len(kctl_out)]
            cone_out = b.gate(
                "MUX2_X1", [cone_out, state_q[i], sel], prefix="ctl_"
            )
        state_d.append(cone_out)

    # Key schedule: as deep as the round function (real key expansions run
    # S-boxes too), so key-register paths sit on the same slack wall as
    # the datapath instead of enjoying huge slack through a lone XOR.
    key_d: List[str] = []
    for i in range(params.n_key):
        rot = key_q[(i + 1) % params.n_key]
        mix = kctl_out[i % len(kctl_out)]
        extra = key_q[(i + 7) % params.n_key]
        depth = max(params.cone_depth - 2, 1)
        # prefix ks_ (key schedule datapath) — NOT kctl_: only the control
        # gates above are security-critical assets, not the whole schedule
        key_d.append(
            _cone(b, [rot, mix, extra], depth, prefix="ks_")
        )

    # --- create the flops, stitching Q placeholders ---------------------- #
    for i in range(params.n_state):
        inst_name = f"st_{i}"
        nl.add_instance(inst_name, "DFF_X1")
        nl.connect(inst_name, "Q", state_q[i])
        nl.connect(inst_name, "D", state_d[i])
        nl.connect(inst_name, "CK", clk)
    for i in range(params.n_key):
        inst_name = f"key_{i}"
        nl.add_instance(inst_name, "DFF_X1")
        nl.connect(inst_name, "Q", key_q[i])
        nl.connect(inst_name, "D", key_d[i])
        nl.connect(inst_name, "CK", clk)

    # --- outputs ---------------------------------------------------------#
    for i in range(params.n_outputs):
        pname = f"ct_{i}"
        nl.add_port(pname, PortDirection.OUTPUT)
        src = state_q[i % params.n_state]
        buf_out = b.gate("BUF_X1", [src], prefix="ob_")
        # output ports listen on the buffer's net; rename convention: the
        # port's net must carry the port name, so add an alias buffer net.
        nl.add_net(pname)
        alias = b.fresh("ob_")
        nl.add_instance(alias, "BUF_X1")
        nl.connect(alias, "A", buf_out)
        nl.connect(alias, "Z", pname)
        nl.connect_port(pname, pname)

    _absorb_sinkless_nets(b)
    nl.validate()
    return nl


def _absorb_sinkless_nets(builder: _Builder) -> None:
    """Give every dangling net a consumer, ending in a check output port.

    Random sampling can leave some register Q nets or input ports without
    sinks; real netlists have no dangling signals, and
    :meth:`~repro.netlist.Netlist.validate` enforces that.  All dangling
    nets are XOR-reduced into a single ``chk`` output.
    """
    nl = builder.netlist
    dangling = [n.name for n in nl.nets if n.has_driver and n.num_sinks == 0]
    if not dangling:
        return
    # Balanced XOR tree: O(log n) depth so the check logic never becomes
    # the design's critical path.
    frontier = list(dangling)
    while len(frontier) > 1:
        nxt = []
        for i in range(0, len(frontier) - 1, 2):
            nxt.append(
                builder.gate(
                    "XOR2_X1", [frontier[i], frontier[i + 1]], prefix="chk_"
                )
            )
        if len(frontier) % 2 == 1:
            nxt.append(frontier[-1])
        frontier = nxt
    signal = frontier[0]
    if len(dangling) == 1:
        signal = builder.gate("BUF_X1", [signal], prefix="chk_")
    nl.add_port("chk", PortDirection.OUTPUT)
    nl.add_net("chk")
    tail = builder.fresh("chk_")
    nl.add_instance(tail, "BUF_X1")
    nl.connect(tail, "A", signal)
    nl.connect(tail, "Z", "chk")
    nl.connect_port("chk", "chk")
