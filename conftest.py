"""Repository-root pytest conftest: one import-path pin for everything.

Pins ``src/`` onto ``sys.path`` so every suite — ``tests/``,
``benchmarks/``, and any future top-level collection — runs against the
checkout without requiring ``PYTHONPATH=src`` or an installed package.
This is the *only* place that pin lives; per-directory conftests must
not duplicate it (a second pin can shadow an installed ``repro`` with a
stale checkout half-way through collection).
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
