"""Tests for the standard-cell library model."""

import pytest

from repro.errors import LibraryError
from repro.tech.liberty import PinTiming, PowerSpec, TimingArc
from repro.tech.library import (
    CellLibrary,
    Pin,
    PinDirection,
    StdCell,
    nangate45_library,
)


class TestTimingArc:
    def test_delay_grows_with_load(self):
        arc = TimingArc("A", "ZN", intrinsic_delay=0.02, drive_resistance=4.0)
        assert arc.delay(0.0) == pytest.approx(0.02)
        assert arc.delay(1000.0) == pytest.approx(0.02 + 4.0)

    def test_negative_characterization_rejected(self):
        with pytest.raises(LibraryError):
            TimingArc("A", "Z", -0.1, 1.0)


class TestPinAndCell:
    def test_input_pin_requires_timing(self):
        with pytest.raises(LibraryError):
            Pin("A", PinDirection.INPUT)

    def test_clock_pin_must_be_input(self):
        with pytest.raises(LibraryError):
            Pin("CK", PinDirection.OUTPUT, is_clock=True)

    def test_duplicate_pin_names_rejected(self):
        pins = (
            Pin("A", PinDirection.INPUT, timing=PinTiming(1.0)),
            Pin("A", PinDirection.OUTPUT),
        )
        with pytest.raises(LibraryError):
            StdCell("BAD", 2, pins)

    def test_arc_referencing_unknown_pin_rejected(self):
        pins = (
            Pin("A", PinDirection.INPUT, timing=PinTiming(1.0)),
            Pin("Z", PinDirection.OUTPUT),
        )
        with pytest.raises(LibraryError):
            StdCell("BAD", 2, pins, arcs=(TimingArc("B", "Z", 0.1, 1.0),))

    def test_zero_width_rejected(self):
        with pytest.raises(LibraryError):
            StdCell("BAD", 0, ())


class TestNangateLibrary:
    @pytest.fixture(scope="class")
    def lib(self):
        return nangate45_library()

    def test_has_core_cells(self, lib):
        for name in ("INV_X1", "NAND2_X1", "DFF_X1", "FILLCELL_X1", "XOR2_X1"):
            assert name in lib

    def test_unknown_cell_raises(self, lib):
        with pytest.raises(LibraryError):
            lib.cell("NONEXISTENT")

    def test_duplicate_registration_rejected(self, lib):
        with pytest.raises(LibraryError):
            lib.add(lib.cell("INV_X1"))

    def test_smallest_functional_width(self, lib):
        assert lib.smallest_functional_width() == 2  # INV_X1

    def test_filler_cells_sorted(self, lib):
        widths = [c.width_sites for c in lib.filler_cells()]
        assert widths == sorted(widths)
        assert all(c.is_filler for c in lib.filler_cells())

    def test_dff_is_sequential_with_clock(self, lib):
        dff = lib.cell("DFF_X1")
        assert dff.is_sequential
        assert dff.clock_pin is not None
        assert dff.clock_pin.name == "CK"

    def test_combinational_excludes_dff(self, lib):
        names = {c.name for c in lib.combinational_cells()}
        assert "DFF_X1" not in names
        assert "NAND2_X1" in names

    def test_drive_strength_scaling(self, lib):
        x1 = lib.cell("INV_X1").arcs[0].drive_resistance
        x4 = lib.cell("INV_X4").arcs[0].drive_resistance
        assert x4 < x1  # stronger drive = lower resistance
        assert lib.cell("INV_X4").power.leakage > lib.cell("INV_X1").power.leakage

    def test_arcs_to(self, lib):
        nand = lib.cell("NAND2_X1")
        assert len(nand.arcs_to("ZN")) == 2

    def test_pin_lookup_error(self, lib):
        with pytest.raises(LibraryError):
            lib.cell("INV_X1").pin("Q")

    def test_library_iteration_and_len(self, lib):
        assert len(lib) == len(list(lib))

    def test_empty_functional_library_rejected(self):
        lib = CellLibrary("empty")
        with pytest.raises(LibraryError):
            lib.smallest_functional_width()
