"""Tests for the technology model."""

import pytest

from repro.errors import TechnologyError
from repro.tech.technology import MetalLayer, Technology, nangate45_like


class TestMetalLayer:
    def test_bad_direction(self):
        with pytest.raises(TechnologyError):
            MetalLayer("m1", 1, "X", 0.19, 0.07, 0.38, 0.2)

    def test_bad_geometry(self):
        with pytest.raises(TechnologyError):
            MetalLayer("m1", 1, "H", 0.0, 0.07, 0.38, 0.2)

    def test_bad_rc(self):
        with pytest.raises(TechnologyError):
            MetalLayer("m1", 1, "H", 0.19, 0.07, -1.0, 0.2)


class TestTechnology:
    def test_default_stack_size(self):
        t = nangate45_like()
        assert t.num_layers == 10

    def test_alternating_directions(self):
        t = nangate45_like()
        for layer in t.layers:
            expected = "H" if layer.index % 2 == 1 else "V"
            assert layer.direction == expected

    def test_layer_lookup(self):
        t = nangate45_like()
        assert t.layer(3).name == "metal3"
        with pytest.raises(TechnologyError):
            t.layer(0)
        with pytest.raises(TechnologyError):
            t.layer(11)

    def test_misordered_stack_rejected(self):
        layers = nangate45_like(2).layers
        with pytest.raises(TechnologyError):
            Technology("bad", 0.19, 1.4, (layers[1], layers[0]))

    def test_needs_layers(self):
        with pytest.raises(TechnologyError):
            Technology("bad", 0.19, 1.4, ())

    def test_site_conversions(self):
        t = nangate45_like()
        assert t.sites_to_um(10) == pytest.approx(1.9)
        assert t.um_to_sites(1.9) == 10

    def test_upper_layers_lower_rc(self):
        t = nangate45_like()
        assert t.layer(9).unit_resistance < t.layer(1).unit_resistance
        assert t.layer(9).track_pitch > t.layer(1).track_pitch

    def test_direction_partitions(self):
        t = nangate45_like()
        h = t.horizontal_layers()
        v = t.vertical_layers()
        assert len(h) + len(v) == t.num_layers
        assert {l.index % 2 for l in h} == {1}

    def test_small_stack(self):
        t = nangate45_like(num_layers=3)
        assert t.num_layers == 3

    def test_invalid_stack_size(self):
        with pytest.raises(TechnologyError):
            nangate45_like(num_layers=0)
