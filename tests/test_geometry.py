"""Unit + property tests for geometric primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Interval,
    Point,
    Rect,
    bounding_box,
    half_perimeter_wirelength,
    merge_intervals,
    subtract_intervals,
)


class TestPoint:
    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance(Point(3, 4)) == 7

    def test_euclidean_distance(self):
        assert Point(0, 0).euclidean_distance(Point(3, 4)) == pytest.approx(5)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestRect:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(2, 0, 1, 5)

    def test_degenerate_allowed(self):
        r = Rect(1, 1, 1, 5)
        assert r.area == 0

    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert r.center == Point(2.5, 5)

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(0, 0), strict=True)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 5, 5))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(5, 5, 11, 6))

    def test_intersects_and_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersects(b)
        assert a.intersection(b) == Rect(2, 2, 4, 4)

    def test_touching_rects_do_not_intersect(self):
        assert not Rect(0, 0, 2, 2).intersects(Rect(2, 0, 4, 2))
        assert Rect(0, 0, 2, 2).intersection(Rect(2, 0, 4, 2)) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_inflated(self):
        assert Rect(2, 2, 4, 4).inflated(1) == Rect(1, 1, 5, 5)

    def test_inflated_negative_collapses(self):
        r = Rect(0, 0, 2, 2).inflated(-2)
        assert r.width == 0 and r.height == 0

    def test_manhattan_distance_to_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.manhattan_distance_to_point(Point(1, 1)) == 0
        assert r.manhattan_distance_to_point(Point(4, 1)) == 2
        assert r.manhattan_distance_to_point(Point(4, 5)) == 5

    def test_manhattan_distance_to_rect(self):
        a = Rect(0, 0, 2, 2)
        assert a.manhattan_distance_to_rect(Rect(1, 1, 3, 3)) == 0
        assert a.manhattan_distance_to_rect(Rect(5, 0, 6, 2)) == 3
        assert a.manhattan_distance_to_rect(Rect(5, 4, 6, 6)) == 5


class TestBoundingBoxAndHpwl:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_bounding_box(self):
        box = bounding_box([Point(1, 5), Point(3, 2), Point(0, 4)])
        assert box == Rect(0, 2, 3, 5)

    def test_hpwl_two_points(self):
        assert half_perimeter_wirelength([Point(0, 0), Point(3, 4)]) == 7

    def test_hpwl_single_point_zero(self):
        assert half_perimeter_wirelength([Point(2, 2)]) == 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=2,
            max_size=12,
        )
    )
    def test_hpwl_invariant_under_point_permutation(self, coords):
        pts = [Point(x, y) for x, y in coords]
        assert half_perimeter_wirelength(pts) == pytest.approx(
            half_perimeter_wirelength(list(reversed(pts)))
        )

    @given(
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=2,
            max_size=10,
        )
    )
    def test_hpwl_lower_bounds_any_pair_distance(self, coords):
        pts = [Point(x, y) for x, y in coords]
        hp = half_perimeter_wirelength(pts)
        for p in pts:
            for q in pts:
                assert hp >= p.manhattan_distance(q) - 1e-9


class TestInterval:
    def test_len_and_contains(self):
        iv = Interval(2, 6)
        assert len(iv) == 4
        assert 2 in iv and 5 in iv and 6 not in iv

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_overlap_vs_touch(self):
        assert Interval(0, 3).touches_or_overlaps(Interval(3, 5))
        assert not Interval(0, 3).overlaps(Interval(3, 5))
        assert Interval(0, 4).overlaps(Interval(3, 5))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersection(Interval(3, 5)) is None

    def test_equality_and_hash(self):
        assert Interval(1, 3) == Interval(1, 3)
        assert hash(Interval(1, 3)) == hash(Interval(1, 3))


class TestMergeSubtract:
    def test_merge_overlapping(self):
        merged = merge_intervals([Interval(0, 3), Interval(2, 5), Interval(7, 8)])
        assert merged == [Interval(0, 5), Interval(7, 8)]

    def test_merge_adjacent(self):
        assert merge_intervals([Interval(0, 2), Interval(2, 4)]) == [Interval(0, 4)]

    def test_merge_drops_empty(self):
        assert merge_intervals([Interval(1, 1), Interval(2, 3)]) == [Interval(2, 3)]

    def test_subtract_middle_hole(self):
        parts = list(subtract_intervals(Interval(0, 10), [Interval(3, 5)]))
        assert parts == [Interval(0, 3), Interval(5, 10)]

    def test_subtract_everything(self):
        assert list(subtract_intervals(Interval(2, 6), [Interval(0, 10)])) == []

    def test_subtract_nothing(self):
        assert list(subtract_intervals(Interval(2, 6), [])) == [Interval(2, 6)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
                lambda t: Interval(min(t), max(t))
            ),
            max_size=8,
        )
    )
    def test_subtract_then_holes_partition_base(self, holes):
        base = Interval(0, 50)
        parts = list(subtract_intervals(base, holes))
        # Parts are disjoint, inside base, and disjoint from every hole.
        covered = set()
        for p in parts:
            for s in range(p.lo, p.hi):
                assert s not in covered
                covered.add(s)
                assert base.lo <= s < base.hi
                for h in holes:
                    assert s not in h
        # Every base site not in a hole is covered.
        for s in range(base.lo, base.hi):
            in_hole = any(s in h for h in holes)
            assert (s in covered) == (not in_hole)
