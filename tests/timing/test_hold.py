"""Tests for min-delay (hold) analysis."""

import pytest

from repro.timing.delay import DelayCalculator
from repro.timing.sta import run_hold_sta, run_sta


class TestHold:
    def test_clean_design_meets_hold(self, misty_design):
        d = misty_design
        result = run_hold_sta(d.layout, d.constraints, routing=d.routing)
        assert result.endpoints
        assert result.tns == 0.0  # ideal clock: no hold violations

    def test_min_arrival_below_max_arrival(self, misty_design):
        d = misty_design
        hold = run_hold_sta(d.layout, d.constraints, routing=d.routing)
        setup = run_sta(d.layout, d.constraints, routing=d.routing)
        hold_by_name = {e.name: e.required for e in hold.endpoints}
        for e in setup.endpoints:
            if e.kind == "ff_d" and e.name in hold_by_name:
                assert hold_by_name[e.name] <= e.arrival + 1e-9

    def test_huge_hold_time_violates(self, misty_design):
        d = misty_design
        result = run_hold_sta(
            d.layout, d.constraints, routing=d.routing, hold_time=10.0
        )
        assert result.tns < 0

    def test_fast_corner_hold(self, misty_design):
        """The intended usage: check hold with a fast-corner calculator."""
        d = misty_design
        dc = DelayCalculator(
            d.layout, d.routing, cell_derate=0.88, wire_derate=0.92
        )
        result = run_hold_sta(
            d.layout, d.constraints, routing=d.routing, delay_calc=dc
        )
        assert result.tns == 0.0
