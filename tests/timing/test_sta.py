"""Tests for the STA engine, including a networkx longest-path oracle."""

import networkx as nx
import pytest

from repro.errors import TimingError
from repro.netlist.netlist import Netlist, PortDirection
from repro.layout.layout import Layout
from repro.place.global_place import assign_port_positions
from repro.timing.constraints import TimingConstraints
from repro.timing.delay import DelayCalculator
from repro.timing.sta import run_sta
from tests.conftest import make_inverter_chain, make_registered_pipeline


class TestCombinational:
    def test_chain_arrival_accumulates(self, small_layout):
        sta = run_sta(small_layout, TimingConstraints(clock_period=10.0))
        # arrivals along the chain are strictly increasing
        ats = [sta.arrival[n] for n in ("in", "n0", "n1", "n2", "out")]
        assert all(b > a for a, b in zip(ats, ats[1:]))

    def test_loose_clock_no_violations(self, small_layout):
        sta = run_sta(small_layout, TimingConstraints(clock_period=100.0))
        assert sta.tns == 0.0
        assert sta.wns == 0.0

    def test_tight_clock_negative_slack(self, small_layout):
        sta = run_sta(small_layout, TimingConstraints(clock_period=0.01))
        assert sta.tns < 0
        assert sta.wns < 0
        assert sta.wns >= sta.tns

    def test_input_delay_shifts_arrivals(self, small_layout):
        a = run_sta(small_layout, TimingConstraints(clock_period=10.0))
        b = run_sta(
            small_layout,
            TimingConstraints(clock_period=10.0, input_delay=0.5),
        )
        assert b.arrival["out"] == pytest.approx(a.arrival["out"] + 0.5)

    def test_against_longest_path_oracle(self, small_layout):
        """Arrival at 'out' equals the longest path in an explicit graph."""
        constraints = TimingConstraints(clock_period=10.0)
        sta = run_sta(small_layout, constraints)
        dc = DelayCalculator(small_layout)
        g = nx.DiGraph()
        nl = small_layout.netlist
        for net in nl.nets:
            g.add_node(net.name)
        for inst in nl.instances:
            if inst.is_sequential or inst.is_filler:
                continue
            out_net = inst.connections["ZN"] if "ZN" in inst.connections else None
            for pin, net in inst.connections.items():
                if pin == "ZN":
                    continue
                w = dc.wire_delay(nl.net(net)) + dc.arc_delay(inst.name, pin, "ZN")
                g.add_edge(net, out_net, weight=w)
        longest = nx.dag_longest_path_length(g, weight="weight")
        assert sta.arrival["out"] == pytest.approx(longest, rel=1e-9)


class TestSequential:
    def test_ff_breaks_paths(self, library, tech):
        nl = make_registered_pipeline(library, stages=2, name="seq")
        layout = Layout(nl, tech, num_rows=2, sites_per_row=80)
        for i, name in enumerate(n.name for n in nl.functional_instances()):
            layout.place(name, i % 2, 20 * (i // 2))
        assign_port_positions(layout)
        sta = run_sta(layout, TimingConstraints(clock_period=5.0))
        # Each FF D pin is an endpoint; each Q net a fresh source.
        ff_endpoints = [e for e in sta.endpoints if e.kind == "ff_d"]
        assert len(ff_endpoints) == 2
        # Q-net arrival equals clk->q delay alone, not the upstream chain.
        q0 = nl.instance("ff0").connections["Q"]
        assert sta.arrival[q0] < 0.5

    def test_endpoint_slacks_vs_period(self, library, tech):
        nl = make_registered_pipeline(library, stages=2, name="seq2")
        layout = Layout(nl, tech, num_rows=2, sites_per_row=80)
        for i, name in enumerate(n.name for n in nl.functional_instances()):
            layout.place(name, i % 2, 20 * (i // 2))
        assign_port_positions(layout)
        tight = run_sta(layout, TimingConstraints(clock_period=0.05))
        loose = run_sta(layout, TimingConstraints(clock_period=50.0))
        assert tight.tns < 0
        assert loose.tns == 0.0

    def test_instance_slack_min_over_nets(self, misty_design):
        d = misty_design
        for asset in list(d.assets)[:5]:
            s = d.sta.instance_slack(d.layout, asset)
            inst = d.netlist.instance(asset)
            net_slacks = [
                d.sta.net_slack(n)
                for n in set(inst.connections.values())
                if n in d.sta.arrival and n in d.sta.required
            ]
            assert s == pytest.approx(min(net_slacks))


class TestLoopsAndErrors:
    def test_combinational_loop_detected(self, library, tech):
        nl = Netlist("loop", library)
        nl.add_instance("a", "INV_X1")
        nl.add_instance("b", "INV_X1")
        nl.add_net("x")
        nl.add_net("y")
        nl.connect("a", "A", "x")
        nl.connect("a", "ZN", "y")
        nl.connect("b", "A", "y")
        nl.connect("b", "ZN", "x")
        layout = Layout(nl, tech, num_rows=1, sites_per_row=30)
        layout.place("a", 0, 0)
        layout.place("b", 0, 10)
        with pytest.raises(TimingError):
            run_sta(layout, TimingConstraints(clock_period=1.0))

    def test_net_slack_unknown_net(self, small_layout):
        sta = run_sta(small_layout, TimingConstraints(clock_period=10.0))
        with pytest.raises(TimingError):
            sta.net_slack("ghost")


class TestResultProperties:
    def test_worst_endpoint(self, small_layout):
        sta = run_sta(small_layout, TimingConstraints(clock_period=0.05))
        worst = sta.worst_endpoint
        assert worst is not None
        assert worst.slack == pytest.approx(sta.wns)

    def test_required_defaults_to_period(self, small_layout):
        sta = run_sta(small_layout, TimingConstraints(clock_period=10.0))
        for net, req in sta.required.items():
            assert req <= 10.0 + 1e-9

    def test_full_design_tns_reproducible(self, misty_design):
        d = misty_design
        again = run_sta(d.layout, d.constraints, routing=d.routing)
        assert again.tns == pytest.approx(d.sta.tns)
        assert again.wns == pytest.approx(d.sta.wns)
