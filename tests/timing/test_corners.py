"""Tests for multi-corner (MMMC-style) analysis."""

import pytest

from repro.timing.corners import (
    DEFAULT_CORNERS,
    Corner,
    run_multi_corner_sta,
)


class TestCorners:
    def test_default_set_ordering(self):
        names = [c.name for c in DEFAULT_CORNERS]
        assert names == ["slow", "typical", "fast"]

    def test_slow_corner_is_worst(self, misty_design):
        d = misty_design
        result = run_multi_corner_sta(
            d.layout, d.constraints, routing=d.routing
        )
        tns = result.tns_by_corner()
        assert tns["slow"] <= tns["typical"] <= tns["fast"]
        assert result.worst_tns == tns["slow"]
        assert result.worst_corner == "slow" or tns["slow"] == tns["typical"]

    def test_typical_matches_single_corner(self, misty_design):
        d = misty_design
        result = run_multi_corner_sta(
            d.layout, d.constraints, routing=d.routing
        )
        assert result.results["typical"].tns == pytest.approx(d.sta.tns)

    def test_derates_scale_arrivals(self, misty_design):
        d = misty_design
        heavy = Corner("very_slow", cell_derate=2.0, wire_derate=2.0)
        result = run_multi_corner_sta(
            d.layout, d.constraints, corners=(heavy,), routing=d.routing
        )
        sta = result.results["very_slow"]
        # Arrival at every endpoint roughly doubles -> slack collapses.
        assert sta.tns <= d.sta.tns
        worst = sta.worst_endpoint
        base = d.sta.worst_endpoint
        assert worst.arrival > base.arrival * 1.5

    def test_tight_design_fails_slow_corner(self):
        """A design calibrated to barely miss typical must miss slow worse."""
        from repro.bench.designs import build_design

        d = build_design("openMSP430_2")
        result = run_multi_corner_sta(
            d.layout, d.constraints, routing=d.routing
        )
        assert result.tns_by_corner()["slow"] < d.sta.tns
