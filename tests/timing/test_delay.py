"""Tests for the delay calculator."""

import pytest

from repro.route.router import global_route
from repro.timing.delay import DelayCalculator, estimate_parasitics


class TestEstimates:
    def test_estimate_scales_with_length(self, small_layout):
        # inv0->inv1 (short) vs in->inv0 (port at boundary)
        r1, c1 = estimate_parasitics(small_layout, "n0")
        assert r1 > 0 and c1 > 0

    def test_zero_for_coincident_pins(self, library, tech):
        from repro.layout.layout import Layout
        from tests.conftest import make_inverter_chain

        nl = make_inverter_chain(library, length=2, name="co")
        layout = Layout(nl, tech, num_rows=1, sites_per_row=20)
        layout.place("inv0", 0, 0)
        layout.place("inv1", 0, 2)  # abutted: centres ~0.38 µm apart
        r, c = estimate_parasitics(layout, "n0")
        assert r < 1.0


class TestDelayCalculator:
    def test_net_load_includes_pins_and_wire(self, small_layout, library):
        dc = DelayCalculator(small_layout)
        net = small_layout.netlist.net("n0")
        load = dc.net_load(net)
        pin_cap = library.cell("INV_X1").pin("A").timing.capacitance
        assert load >= pin_cap

    def test_wire_delay_positive_and_monotone(self, small_layout):
        dc = DelayCalculator(small_layout)
        n0 = small_layout.netlist.net("n0")
        assert dc.wire_delay(n0) >= 0

    def test_arc_delay_uses_output_load(self, small_layout):
        dc = DelayCalculator(small_layout)
        d = dc.arc_delay("inv0", "A", "ZN")
        assert d > 0.012  # at least the intrinsic

    def test_missing_arc_zero(self, small_layout):
        dc = DelayCalculator(small_layout)
        assert dc.arc_delay("inv0", "ZN", "A") == 0.0

    def test_routed_beats_estimate_consistency(self, small_layout):
        routing = global_route(small_layout)
        dc = DelayCalculator(small_layout, routing)
        r, c = dc.net_parasitics("n0")
        assert r >= 0 and c >= 0

    def test_cache_invalidation(self, small_layout):
        dc = DelayCalculator(small_layout)
        before = dc.net_parasitics("n0")
        small_layout.move_in_row("inv1", 50)
        # cache still returns the stale value...
        assert dc.net_parasitics("n0") == before
        dc.invalidate("n0")
        after = dc.net_parasitics("n0")
        assert after != before
        small_layout.move_in_row("inv1", 13)  # restore for other tests
