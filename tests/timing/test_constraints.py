"""Tests for SDC-like constraints."""

import pytest

from repro.errors import TimingError
from repro.timing.constraints import TimingConstraints


class TestTimingConstraints:
    def test_defaults(self):
        c = TimingConstraints(clock_period=2.0)
        assert c.clock_port == "clk"
        assert c.ff_setup > 0

    def test_bad_period(self):
        with pytest.raises(TimingError):
            TimingConstraints(clock_period=0.0)

    def test_negative_delays_rejected(self):
        with pytest.raises(TimingError):
            TimingConstraints(clock_period=1.0, input_delay=-0.1)
        with pytest.raises(TimingError):
            TimingConstraints(clock_period=1.0, ff_setup=-0.1)

    def test_with_period(self):
        c = TimingConstraints(clock_period=2.0, input_delay=0.3)
        c2 = c.with_period(1.5)
        assert c2.clock_period == 1.5
        assert c2.input_delay == 0.3
