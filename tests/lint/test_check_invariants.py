"""Tests for ``GDSIIGuard(check_invariants=True)`` paranoid mode."""

import pytest

from repro.core.flow import GDSIIGuard
from repro.core.params import FlowConfig, ParameterSpace
from repro.errors import FlowError


def make_guard(tiny_design, **kwargs):
    d = tiny_design
    return GDSIIGuard(
        d["layout"],
        d["constraints"],
        d["assets"],
        baseline_routing=d["routing"],
        check_invariants=True,
        **kwargs,
    )


class TestParanoidPass:
    def test_cs_flow_clean(self, tiny_design):
        guard = make_guard(tiny_design)
        result = guard.run(ParameterSpace(10).default())
        assert result.feasible or result.drc_count >= 0  # flow completed
        assert guard.invariant_checks >= 2  # place op + route
        assert guard.invariant_violations == 0

    def test_lda_flow_clean(self, tiny_design):
        guard = make_guard(tiny_design)
        guard.run(FlowConfig("LDA", 8, 1, tuple([1.0] * 10)))
        assert guard.invariant_checks >= 2
        assert guard.invariant_violations == 0

    def test_full_recompute_path_clean(self, tiny_design):
        guard = make_guard(tiny_design, incremental=False)
        guard.run(ParameterSpace(10).default())
        assert guard.invariant_checks >= 2
        assert guard.invariant_violations == 0

    def test_disabled_by_default(self, tiny_design):
        d = tiny_design
        guard = GDSIIGuard(
            d["layout"], d["constraints"], d["assets"],
            baseline_routing=d["routing"],
        )
        guard.run(ParameterSpace(10).default())
        assert guard.invariant_checks == 0


def _breach_blockage(layout):
    """A corruption ``Layout.validate()`` cannot see: a hard blockage
    dropped on top of an already-placed cell.  Only the lint's blockage
    rule (L003) catches it."""
    from repro.layout.blockage import PlacementBlockage

    victim = next(iter(sorted(layout.placements)))
    layout.add_blockage(
        PlacementBlockage("injected", layout.cell_rect(victim), 0.0)
    )


class TestCorruptingOperator:
    def test_corruption_raises_flow_error(self, tiny_design, monkeypatch):
        original = GDSIIGuard._apply_placement_op

        def corrupting_op(self, layout, config):
            report = original(self, layout, config)
            _breach_blockage(layout)
            return report

        monkeypatch.setattr(GDSIIGuard, "_apply_placement_op", corrupting_op)
        guard = make_guard(tiny_design)
        with pytest.raises(FlowError, match=r"invariant violation.*L003"):
            guard.run(ParameterSpace(10).default())
        assert guard.invariant_violations >= 1

    def test_corruption_passes_without_paranoid_mode(
        self, tiny_design, monkeypatch
    ):
        # The same corruption sails through layout.validate() — which is
        # exactly the blind spot the paranoid mode exists to cover.
        original = GDSIIGuard._apply_placement_op
        calls = {"n": 0}

        def corrupting_op(self, layout, config):
            report = original(self, layout, config)
            calls["n"] += 1
            _breach_blockage(layout)
            return report

        monkeypatch.setattr(GDSIIGuard, "_apply_placement_op", corrupting_op)
        d = tiny_design
        guard = GDSIIGuard(
            d["layout"], d["constraints"], d["assets"],
            baseline_routing=d["routing"],
        )
        guard.run(ParameterSpace(10).default())
        assert calls["n"] == 1
