"""Mutation tests for the layout lint rules.

Each case corrupts a fresh small design in exactly one way and asserts
that exactly the expected rule id fires — and nothing else.  Cascade
suppression is what makes single-id attribution possible: structural
corruption would otherwise also fail the derived gap-accounting and
DEF-round-trip rules.
"""

import json

import pytest

from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout, Placement
from repro.layout.rows import CoreRow
from repro.lint import Severity, run_lint
from repro.place.global_place import assign_port_positions
from repro.route.router import global_route
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like

from tests.conftest import make_inverter_chain


def fresh_design():
    """A fresh 4-inverter chain on a 4x60 core (nothing shared)."""
    library = nangate45_library()
    tech = nangate45_like(num_layers=10)
    netlist = make_inverter_chain(library)
    layout = Layout(netlist, tech, num_rows=4, sites_per_row=60)
    for i in range(4):
        layout.place(f"inv{i}", i % 2, 5 + 8 * i)
    assign_port_positions(layout)
    return layout


def rule_ids(report):
    """Distinct rule ids in the report, via the JSON surface."""
    payload = json.loads(report.to_json())
    return {v["rule_id"] for v in payload["violations"]}


# --------------------------------------------------------------------- #
# the mutation catalog: (name, corrupt(layout) -> lint kwargs, expected)
# --------------------------------------------------------------------- #


def _overlap(layout):
    occ = layout.occupancy[0]
    first = occ.placements[0]
    second = occ.placements[1]
    new_start = first.end - 1
    occ.starts[1] = new_start
    second.start = new_start
    layout.placements[second.name] = Placement(row=0, start=new_start)
    return {}


def _index_desync(layout):
    layout.occupancy[0].starts[0] += 1
    return {}


def _ghost_entry(layout):
    layout.placements["phantom"] = Placement(row=0, start=50)
    return {}


def _out_of_row(layout):
    occ = layout.occupancy[0]
    last = occ.placements[-1]
    new_start = occ.row.num_sites  # fully past the row end
    occ.starts[-1] = new_start
    last.start = new_start
    layout.placements[last.name] = Placement(row=0, start=new_start)
    return {}


def _width_mismatch(layout):
    layout.occupancy[0].placements[0].width += 1
    return {}


def _hard_blockage_breach(layout):
    rect = layout.cell_rect("inv0")
    layout.add_blockage(PlacementBlockage("keepout", rect, 0.0))
    return {}


def _asset_unplaced(layout):
    layout.unplace("inv0")
    return {"assets": ["inv0"]}


def _frozen_moved(layout):
    ref = {"inv0": layout.placement("inv0")}
    layout.fixed.add("inv0")
    occ = layout.occupancy[0]
    occ.move("inv0", 50, start_hint=ref["inv0"].start)
    layout.placements["inv0"] = Placement(row=0, start=50)
    return {"reference_placements": ref}


def _row_geometry_desync(layout):
    old = layout.rows[0]
    layout.rows[0] = CoreRow(
        index=old.index, origin_x=old.origin_x, y=old.y,
        num_sites=old.num_sites + 10,
    )
    return {}


def _no_sinks(layout):
    net = layout.netlist.net("n0")
    net.sink_pins.clear()
    return {}


def _no_driver(layout):
    layout.netlist.net("n0").driver_pin = None
    return {}


def _multi_driven(layout):
    layout.netlist.net("n0").driver_port = "in"
    return {}


def _unconnected_pin(layout):
    del layout.netlist.instance("inv1").connections["A"]
    return {}


def _unparsable_blockage_name(layout):
    # A name with a space breaks DEF tokenization: the writer emits it
    # verbatim, the parser splits on whitespace — no longer a fixed point.
    from repro.geometry import Rect

    layout.add_blockage(
        PlacementBlockage("bad name", Rect(0.0, 0.0, 0.5, 0.5), 0.5)
    )
    return {}


MUTATIONS = [
    ("overlap", _overlap, "L001"),
    ("index-desync", _index_desync, "L001"),
    ("ghost-entry", _ghost_entry, "L001"),
    ("out-of-row", _out_of_row, "L002"),
    ("width-mismatch", _width_mismatch, "L002"),
    ("hard-blockage-breach", _hard_blockage_breach, "L003"),
    ("asset-unplaced", _asset_unplaced, "L004"),
    ("frozen-moved", _frozen_moved, "L004"),
    ("row-geometry-desync", _row_geometry_desync, "L005"),
    ("no-sinks", _no_sinks, "N001"),
    ("no-driver", _no_driver, "N001"),
    ("multi-driven", _multi_driven, "N002"),
    ("unconnected-pin", _unconnected_pin, "N002"),
    ("unparsable-blockage-name", _unparsable_blockage_name, "S001"),
]


class TestCleanDesign:
    def test_no_violations(self):
        report = run_lint(fresh_design())
        assert report.is_clean
        assert rule_ids(report) == set()

    def test_routing_rule_skipped_without_routing(self):
        report = run_lint(fresh_design())
        assert "R001" in report.rules_skipped
        assert "R001" not in report.rules_run

    def test_clean_with_routing_runs_all_rules(self):
        layout = fresh_design()
        routing = global_route(layout)
        report = run_lint(layout, routing=routing)
        assert report.is_clean
        assert set(report.rules_run) == {
            "L001", "L002", "L003", "L004", "L005",
            "N001", "N002", "R001", "S001",
        }

    def test_exit_code_zero(self):
        assert run_lint(fresh_design()).exit_code(Severity.WARNING) == 0


class TestMutations:
    @pytest.mark.parametrize(
        "name,corrupt,expected",
        MUTATIONS,
        ids=[m[0] for m in MUTATIONS],
    )
    def test_exactly_one_rule_fires(self, name, corrupt, expected):
        layout = fresh_design()
        kwargs = corrupt(layout)
        report = run_lint(layout, **kwargs)
        assert rule_ids(report) == {expected}, report.format_text(verbose=True)
        assert report.errors >= 1
        assert report.exit_code(Severity.ERROR) == 1

    def test_track_overflow_beyond_margin_is_error(self):
        layout = fresh_design()
        routing = global_route(layout)
        grid = routing.grid
        grid.usage[0, 0, 0] = grid.capacity[0, 0, 0] * 2.0 + 20.0
        report = run_lint(layout, routing=routing)
        assert rule_ids(report) == {"R001"}
        payload = json.loads(report.to_json())
        assert payload["violations"][0]["severity"] == "error"

    def test_soft_blockage_over_density_is_warning(self):
        layout = fresh_design()
        rect = layout.cell_rect("inv0")
        layout.add_blockage(PlacementBlockage("softcap", rect, 0.01))
        report = run_lint(layout)
        assert rule_ids(report) == {"L003"}
        assert report.errors == 0 and report.warnings >= 1


class TestCascadeSuppression:
    def test_overlap_suppresses_derived_rules(self):
        layout = fresh_design()
        _overlap(layout)
        report = run_lint(layout)
        assert "L005" in report.rules_skipped
        assert "S001" in report.rules_skipped
        assert "L001" in report.rules_skipped["L005"]

    def test_violation_payload_shape(self):
        layout = fresh_design()
        _overlap(layout)
        payload = json.loads(run_lint(layout).to_json())
        v = payload["violations"][0]
        assert v["rule_id"] == "L001"
        assert v["severity"] == "error"
        assert v["message"]
        assert v["hint"]
        assert isinstance(v["location"], dict)
