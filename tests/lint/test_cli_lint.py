"""Tests for ``repro lint`` — the CLI face of the rule engine."""

import json

from repro.cli import build_parser, main


class TestParser:
    def test_lint_subcommand_registered(self):
        parser = build_parser()
        args = parser.parse_args(["lint", "PRESENT", "--format", "json"])
        assert args.command == "lint"
        assert args.format == "json"

    def test_list_rules_needs_no_design(self):
        args = build_parser().parse_args(["lint", "--list-rules"])
        assert args.design is None and args.list_rules

    def test_rules_selector_repeatable(self):
        args = build_parser().parse_args(
            ["lint", "PRESENT", "--rules", "L001,L002", "--rules", "S001"]
        )
        assert args.rules == ["L001,L002", "S001"]


class TestListRules:
    def test_catalog_lists_every_rule(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("L001", "L002", "L003", "L004", "L005",
                        "N001", "N002", "R001", "S001"):
            assert rule_id in out


class TestLintDesign:
    def test_shipped_design_is_clean(self, capsys):
        assert main(["lint", "PRESENT", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subject"] == "PRESENT"
        assert payload["violations"] == []
        assert payload["counts"]["error"] == 0
        assert set(payload["rules_run"]) >= {"L001", "N001", "R001", "S001"}

    def test_rule_selection_narrows_run(self, capsys):
        assert main(["lint", "PRESENT", "--format", "json",
                     "--rules", "L001,N001"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["rules_run"]) == {"L001", "N001"}

    def test_text_output(self, capsys):
        assert main(["lint", "PRESENT"]) == 0
        out = capsys.readouterr().out
        assert "PRESENT" in out
